//! # bgl-bfs — facade crate
//!
//! One-stop re-export of the SC'05 BlueGene/L distributed BFS
//! reproduction:
//!
//! * [`torus`] (`bgl-torus`) — the 3D torus machine model;
//! * [`comm`] (`bgl-comm`) — rank runtimes and collectives;
//! * [`graph`] (`bgl-graph`) — distributed Poisson/R-MAT graphs;
//! * [`core`] (`bfs-core`) — the BFS algorithms and theory;
//! * [`trace`] (`bgl-trace`) — structured tracing: Chrome trace export,
//!   torus link heatmaps, critical-path analysis;
//! * [`server`] (`bgl-server`) — the batched query-serving layer
//!   (multi-source lane-masked BFS, admission queue, result cache).
//!
//! See the workspace README for a tour and `examples/` for runnable
//! entry points (`cargo run --release --example quickstart`).

#![forbid(unsafe_code)]

pub use bfs_core as core;
pub use bgl_comm as comm;
pub use bgl_graph as graph;
pub use bgl_server as server;
pub use bgl_torus as torus;
pub use bgl_trace as trace;

pub use bfs_core::{
    bfs1d, bfs2d, bidir, theory, validate, BfsConfig, DirectionMode, DirectionPolicy,
    ExpandStrategy, FoldStrategy, GroupShard, LevelDirection, ParityGroups, ResilientConfig,
    ValidationError, ValidationReport,
};
pub use bgl_comm::{
    ChaosSpec, CommError, FaultPlan, ProcessorGrid, SimWorld, WireFormat, WireMode, WirePolicy,
};
pub use bgl_graph::{DistGraph, GraphSpec};
pub use bgl_server::{BglServer, ServerConfig, WorkloadSpec};
pub use bgl_trace::{CriticalPath, LinkHeatmap, TraceDetail};
