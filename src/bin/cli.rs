//! `bgl-bfs` — command-line front end for the SC'05 distributed BFS
//! reproduction.
//!
//! ```text
//! bgl-bfs search --n 100000 --k 10 --rows 8 --cols 8 --source 0 [--target 99]
//! bgl-bfs path   --n 100000 --k 10 --rows 8 --cols 8 --source 0 --target 99
//! bgl-bfs serve  --n 60000 --k 16 --rows 8 --cols 8 --batch 16 --queries 64
//! bgl-bfs theory --n 40000000 --p 400
//! bgl-bfs memory --per-rank 100000 --k 10 --rows 128 --cols 256
//! bgl-bfs info
//! ```
//!
//! Each command accepts a fixed flag set; unknown flags and
//! contradictory combinations (for instance `--bidir` with fault
//! injection, or `--dead-at` without a `--dead-rank` to kill) are
//! rejected with a diagnostic and a non-zero exit instead of being
//! silently ignored.

use bgl_bfs::comm::{ChunkPolicy, WireMode, WirePolicy};
use bgl_bfs::core::{bfs2d, bidir, memory, multi, path, theory, validate, ComputeEngine};
use bgl_bfs::server::{ArrivalProcess, QueryMix};
use bgl_bfs::torus::MachineConfig;
use bgl_bfs::trace::write_artifacts;
use bgl_bfs::{
    BfsConfig, BglServer, DirectionMode, DirectionPolicy, DistGraph, FaultPlan, GraphSpec,
    ProcessorGrid, ResilientConfig, ServerConfig, SimWorld, TraceDetail, WorkloadSpec,
};
use std::collections::BTreeMap;
use std::path::Path;

const HELP: &str = "\
bgl-bfs — scalable distributed-parallel BFS (Yoo et al., SC'05) on a simulated BlueGene/L

USAGE: bgl-bfs <command> [--flag value]...

COMMANDS
  search   run a BFS (flags: --n --k --seed --rows --cols --source [--target] [--bidir])
           host execution: [--engine serial|rayon|auto] [--engine-threads N]
           (bit-identical results either way)
           direction: [--direction off|adaptive|bottom-up] — Beamer-style per-level
           top-down/bottom-up switching from allreduced frontier and unexplored-edge
           counts (levels are bit-identical to top-down; default off)
           per-level table: [--levels] — print the per-level summary (implied by
           --direction adaptive|bottom-up)
           wire codec: [--wire auto|raw|delta|bitmap] — adaptive payload compression for
           expand/fold exchanges; encode/decode time is charged through the cost model
           fault injection (non-bidir): [--drop-rate 0.1] [--dead-rank 3 [--dead-at 4]]
           [--fault-seed 7] — runs the checkpoint/recover engine and prints fault counters
           resilience: [--parity-group g] — XOR parity-group size for checkpointed
           delta logs (default 4; any single rank death per group is reconstructed)
           validation: [--validate] — Graph500-style check of the level labelling
           (rooted tree, tree edges exist, levels differ by <= 1); nonzero exit on failure
           tracing: [--trace] [--trace-out results/trace] [--trace-level span|event] —
           writes TRACE_chrome.json + TRACE_summary.json and prints the per-level
           critical path and the hottest torus links
  path     extract shortest paths (--n --k --seed --rows --cols --source)
           one walk: [--target T]; batched lane wave (up to 64 targets sharing
           each control round): [--targets T1,T2,...]; [--wire auto|raw|delta|bitmap]
  serve    run a Zipfian query workload through the batched query server
           graph: --n --k --seed --rows --cols
           server: [--batch B<=64] [--queue-cap Q] [--deadline TICKS] [--cache-cap C]
           [--engine serial|rayon|auto] [--wire auto|raw|delta|bitmap] [--validate]
           workload: [--queries N] [--hot POOL] [--theta T] [--workload-seed S]
           arrivals: [--arrivals PER_TICK] [--arrival-process fixed|poisson|bursty]
           [--burst F] [--arrival-seed S] — seeded open-loop streams for queue-depth
           and deadline-miss sweeps
           replay: [--arrival-record PATH] writes the tick schedule this run used;
           [--arrival-replay PATH] replays a recorded schedule verbatim (exactly
           reproduces the original run's SERVER_summary.json)
           output: [--summary-out SERVER_summary.json] — QPS, latency, batch
           occupancy, path-walk, and per-class cache stats from the simulated clock
  theory   print the §3.1 message-length analysis (--n --p [--kmax])
  memory   per-node memory feasibility (--per-rank --k --rows --cols [--chunk])
  info     machine presets
  help     this text
";

struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    map.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    map.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            } else {
                eprintln!("warning: ignoring {:?}", args[i]);
                i += 1;
            }
        }
        Flags(map)
    }

    fn u64(&self, key: &str, default: u64) -> u64 {
        self.0
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key}: bad integer {v:?}"))
            })
            .unwrap_or(default)
    }

    fn f64(&self, key: &str, default: f64) -> f64 {
        self.0
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key}: bad number {v:?}"))
            })
            .unwrap_or(default)
    }

    fn has(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }
}

/// Flags shared by every graph-building command.
const GRAPH_FLAGS: &[&str] = &["n", "k", "seed", "rows", "cols"];
/// Fault-injection flags (they select the resilient engine).
const FAULT_FLAGS: &[&str] = &[
    "drop-rate",
    "dead-rank",
    "dead-at",
    "fault-seed",
    "parity-group",
];

/// The flag set each command accepts. Anything outside the list is a
/// typo or a flag for a different command — reject it loudly rather
/// than silently computing something else than the user asked for.
fn allowed_flags(cmd: &str) -> Option<Vec<&'static str>> {
    let mut v: Vec<&str> = match cmd {
        "search" => [
            GRAPH_FLAGS,
            FAULT_FLAGS,
            &[
                "source",
                "target",
                "bidir",
                "engine",
                "engine-threads",
                "direction",
                "levels",
                "wire",
                "validate",
                "trace",
                "trace-out",
                "trace-level",
            ],
        ]
        .concat(),
        "path" => [GRAPH_FLAGS, &["source", "target", "targets", "wire"]].concat(),
        "serve" => [
            GRAPH_FLAGS,
            &[
                "batch",
                "queue-cap",
                "deadline",
                "cache-cap",
                "engine",
                "engine-threads",
                "wire",
                "validate",
                "queries",
                "hot",
                "theta",
                "workload-seed",
                "arrivals",
                "arrival-process",
                "burst",
                "arrival-seed",
                "arrival-replay",
                "arrival-record",
                "summary-out",
            ],
        ]
        .concat(),
        "theory" => vec!["n", "p", "kmax"],
        "memory" => vec!["per-rank", "k", "rows", "cols", "chunk"],
        "info" => vec![],
        _ => return None,
    };
    v.sort_unstable();
    Some(v)
}

/// First problem with this command's flags, if any: an unknown flag or
/// a contradictory combination. `None` means the invocation is clean.
fn flag_error(cmd: &str, flags: &Flags) -> Option<String> {
    let allowed = allowed_flags(cmd)?;
    let mut keys: Vec<&str> = flags.0.keys().map(String::as_str).collect();
    keys.sort_unstable();
    for key in keys {
        if !allowed.contains(&key) {
            return Some(format!(
                "--{key} is not a flag of `{cmd}` (it accepts: {})",
                allowed
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    if cmd == "path" && flags.has("target") && flags.has("targets") {
        return Some(
            "--target and --targets contradict: one names a single walk, the other a \
             batched lane wave — pick one"
                .to_string(),
        );
    }
    if cmd == "serve" {
        let process = flags.0.get("arrival-process").map(String::as_str);
        if flags.has("burst") && process != Some("bursty") {
            return Some(
                "--burst shapes the bursty arrival process; add --arrival-process bursty"
                    .to_string(),
            );
        }
        if flags.has("arrival-replay") && process.is_some() {
            return Some(
                "--arrival-replay replays a recorded schedule verbatim; it contradicts --arrival-process — pick one"
                    .to_string(),
            );
        }
        return None;
    }
    if cmd != "search" {
        return None;
    }
    // `search` has modes that cannot be combined.
    if flags.has("bidir") {
        if let Some(f) = FAULT_FLAGS.iter().find(|f| flags.has(f)) {
            return Some(format!(
                "--bidir runs the fault-free bi-directional engine; --{f} requires the \
                 resilient uni-directional search — drop one of them"
            ));
        }
        if flags.has("direction") {
            return Some(
                "--bidir and --direction contradict: direction optimization applies to the \
                 uni-directional search only"
                    .to_string(),
            );
        }
    }
    if flags.has("dead-at") && !flags.has("dead-rank") {
        return Some(
            "--dead-at names a death level but no --dead-rank to kill; add --dead-rank R"
                .to_string(),
        );
    }
    if flags.has("parity-group") && !flags.has("drop-rate") && !flags.has("dead-rank") {
        return Some(
            "--parity-group configures the resilient engine but no fault is injected; add \
             --drop-rate P or --dead-rank R"
                .to_string(),
        );
    }
    None
}

fn engine_from(flags: &Flags) -> ComputeEngine {
    if flags.has("engine-threads") {
        rayon::set_worker_threads(flags.u64("engine-threads", 0) as usize);
    }
    match flags.0.get("engine").map(String::as_str) {
        Some("serial") => ComputeEngine::Serial,
        Some("rayon") => ComputeEngine::Rayon,
        Some("auto") | None => ComputeEngine::Auto,
        Some(other) => panic!("--engine: {other:?} (expected serial, rayon, or auto)"),
    }
}

fn direction_from(flags: &Flags) -> DirectionPolicy {
    match flags.0.get("direction").map(String::as_str) {
        None | Some("off") | Some("top-down") => DirectionPolicy::top_down(),
        Some("adaptive") => DirectionPolicy::adaptive(),
        Some("bottom-up") => DirectionPolicy::bottom_up(),
        Some(other) => panic!("--direction: {other:?} (expected off, adaptive, or bottom-up)"),
    }
}

fn wire_policy_from(flags: &Flags) -> WirePolicy {
    match flags.0.get("wire") {
        None => WirePolicy::raw(),
        Some(s) => WirePolicy::with_mode(
            WireMode::parse(s)
                .unwrap_or_else(|| panic!("--wire: {s:?} (expected auto, raw, delta, or bitmap)")),
        ),
    }
}

/// `--trace` / `--trace-out` / `--trace-level` imply tracing; the level
/// defaults to full event detail.
fn trace_detail_from(flags: &Flags) -> Option<TraceDetail> {
    if !flags.has("trace") && !flags.has("trace-out") && !flags.has("trace-level") {
        return None;
    }
    Some(match flags.0.get("trace-level") {
        None => TraceDetail::default(),
        Some(s) => TraceDetail::parse(s)
            .unwrap_or_else(|| panic!("--trace-level: {s:?} (expected span or event)")),
    })
}

/// Drain the world's trace, write the on-disk artifacts, and print the
/// critical-path and link-hotspot tables.
fn emit_trace_artifacts(world: &mut SimWorld, flags: &Flags) {
    let Some(buf) = world.take_trace() else {
        return;
    };
    let default_dir = "results/trace".to_string();
    let dir = flags.0.get("trace-out").unwrap_or(&default_dir);
    let machine = *world.cost_model().machine();
    let report = write_artifacts(&buf, world.mapping(), &machine, Path::new(dir))
        .unwrap_or_else(|e| panic!("--trace-out {dir:?}: {e}"));
    println!(
        "trace: wrote {} and {}",
        report.chrome_path.display(),
        report.summary_path.display()
    );
    print!("{}", report.critical.render_table());
    if report.wire.sends > 0 && report.wire.wire_bytes < report.wire.logical_bytes() {
        println!(
            "trace wire: {:.2} MB logical -> {:.2} MB on the wire ({:.2}x) across {} sends",
            report.wire.logical_bytes() as f64 / 1e6,
            report.wire.wire_bytes as f64 / 1e6,
            report.wire.compression_ratio(),
            report.wire.sends
        );
    }
    if report.heatmap.sends() > 0 {
        println!("hottest links (of {} used):", report.heatmap.links_used());
        print!("{}", report.heatmap.render_table(5));
    }
    if report.dropped_events > 0 {
        println!(
            "trace: {} events overwritten by full rings (raise ring capacity for complete traces)",
            report.dropped_events
        );
    }
}

/// Graph500-style check of the final level labelling; exits nonzero on
/// failure. Applies to every engine path (plain and resilient alike) —
/// a recovered run must produce exactly as valid a labelling as a
/// fault-free one.
fn validate_or_exit(spec: &GraphSpec, levels: &[u32], source: u64) {
    match validate::validate_against_spec(spec, levels, source) {
        Ok(report) => println!(
            "validation OK: {} reached, depth {}, {} tree edges",
            report.reached, report.depth, report.tree_edges
        ),
        Err(e) => {
            eprintln!("error: BFS output failed Graph500-style validation: {e}");
            std::process::exit(1);
        }
    }
}

/// The per-level summary table (direction, frontier, message volumes,
/// probe counts, simulated time).
fn print_level_table(stats: &bgl_bfs::core::RunStats) {
    println!(
        "{:>5} {:>4} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "level", "dir", "frontier", "expand", "fold", "td probes", "bu probes", "sim ms"
    );
    for l in &stats.levels {
        println!(
            "{:>5} {:>4} {:>10} {:>12} {:>12} {:>12} {:>12} {:>10.3}",
            l.level,
            l.direction.label(),
            l.frontier,
            l.expand_received,
            l.fold_received,
            l.td_probes,
            l.bu_probes,
            l.sim_time * 1e3
        );
    }
}

fn grid_from(flags: &Flags) -> ProcessorGrid {
    ProcessorGrid::new(flags.u64("rows", 4) as usize, flags.u64("cols", 4) as usize)
}

fn spec_from(flags: &Flags) -> GraphSpec {
    GraphSpec::poisson(
        flags.u64("n", 100_000),
        flags.f64("k", 10.0),
        flags.u64("seed", 42),
    )
}

fn cmd_search(flags: &Flags) {
    let spec = spec_from(flags);
    let grid = grid_from(flags);
    let source = flags.u64("source", 0).min(spec.n - 1);
    println!(
        "G(n={}, k={}) on {}x{} — building…",
        spec.n,
        spec.avg_degree,
        grid.rows(),
        grid.cols()
    );
    let graph = DistGraph::build(spec, grid);

    let mut plan = FaultPlan::seeded(flags.u64("fault-seed", 7));
    if flags.has("drop-rate") {
        plan = plan.with_drop_prob(flags.f64("drop-rate", 0.0));
    }
    if flags.has("dead-rank") {
        plan = plan.kill_rank_at(
            flags.u64("dead-rank", 0) as usize % grid.len(),
            flags.u64("dead-at", 4),
        );
    }
    let faulty = plan.is_active();
    let trace = trace_detail_from(flags);
    let wire = wire_policy_from(flags);

    let mut world = SimWorld::bluegene(grid).with_wire_policy(wire);
    if let Some(detail) = trace {
        world.enable_trace(detail);
    }

    if flags.has("bidir") {
        // Contradictory fault flags were rejected before dispatch.
        let target = flags.u64("target", spec.n - 1).min(spec.n - 1);
        let r = bidir::run(
            &graph,
            &mut world,
            &BfsConfig::paper_optimized().with_engine(engine_from(flags)),
            source,
            target,
        );
        match r.distance {
            Some(d) => println!("bi-directional distance {source} → {target}: {d}"),
            None => println!("{source} and {target} are not connected"),
        }
        println!(
            "simulated {:.3} ms ({:.3} ms comm), {} vertices moved",
            r.stats.sim_time * 1e3,
            r.stats.comm_time * 1e3,
            r.stats.total_received()
        );
        emit_trace_artifacts(&mut world, flags);
        return;
    }

    let direction = direction_from(flags);
    let mut config = BfsConfig::paper_optimized()
        .with_engine(engine_from(flags))
        .with_direction(direction);
    if flags.has("target") {
        config = config.with_target(flags.u64("target", 0).min(spec.n - 1));
    }
    let r = if faulty {
        world = SimWorld::bluegene(grid)
            .with_fault_plan(plan)
            .with_wire_policy(wire);
        if let Some(detail) = trace {
            world.enable_trace(detail);
        }
        let resilient = ResilientConfig {
            parity_group_size: flags.u64("parity-group", 4) as usize,
            ..ResilientConfig::default()
        };
        let res = bfs2d::run_resilient(&graph, &mut world, &config, source, &resilient)
            .unwrap_or_else(|e| {
                eprintln!("error: search did not survive the fault plan: {e}");
                std::process::exit(1);
            });
        if res.recoveries > 0 {
            println!(
                "recovered {} rank death(s) ({:?}) in {:.3} ms of recovery time",
                res.recoveries,
                res.recovered_ranks,
                res.recovery_time * 1e3
            );
        }
        if res.degraded_restarts > 0 {
            println!(
                "degraded mode: {} full restart(s) from the last checkpoint \
                 (parity reconstruction unavailable)",
                res.degraded_restarts
            );
        }
        res.result
    } else {
        bfs2d::try_run(&graph, &mut world, &config, source).unwrap_or_else(|e| {
            eprintln!(
                "error: communication fault during BFS: {e} \
                 (inject faults via --drop-rate/--dead-rank to run the resilient engine)"
            );
            std::process::exit(1);
        })
    };
    println!(
        "reached {}/{} vertices in {} levels",
        r.stats.reached,
        spec.n,
        r.stats.num_levels()
    );
    if let Some(t) = config.target {
        match r.target_level {
            Some(l) => println!("target {t} found at level {l}"),
            None => println!("target {t} not reachable from {source}"),
        }
    }
    println!(
        "simulated {:.3} ms ({:.3} ms comm, {:.3} ms compute); expand/fold per level: {:.1} / {:.1} verts; redundancy {:.1}%",
        r.stats.sim_time * 1e3,
        r.stats.comm_time * 1e3,
        r.stats.compute_time * 1e3,
        r.stats.avg_expand_len_per_level(),
        r.stats.avg_fold_len_per_level(),
        r.stats.redundancy_ratio_percent()
    );
    if !wire.is_raw() {
        println!(
            "wire codec ({}): {:.2} MB logical -> {:.2} MB on the wire ({:.2}x), \
             {:.3} ms encode/decode",
            wire.mode.name(),
            r.stats.comm.total_logical_bytes() as f64 / 1e6,
            r.stats.comm.total_wire_bytes() as f64 / 1e6,
            r.stats.compression_ratio(),
            r.stats.codec_time * 1e3
        );
    }
    let so = r.stats.comm.setops;
    if so.list_unions + so.bitmap_unions > 0 {
        println!(
            "union-fold: {} list / {} bitmap merges ({:.0}% bitmap), {} densify switches; \
             scratch pool: {} reuses, high water {} verts",
            so.list_unions,
            so.bitmap_unions,
            r.stats.bitmap_union_fraction() * 100.0,
            so.densify_switches,
            so.pool_reuses,
            so.pool_high_water_verts
        );
    }
    if direction.mode != DirectionMode::TopDown {
        let (td, bu) = r.stats.direction_split();
        println!(
            "direction ({}): {td} top-down / {bu} bottom-up levels, {} hash probes total",
            match direction.mode {
                DirectionMode::Adaptive => "adaptive",
                DirectionMode::BottomUp => "bottom-up",
                DirectionMode::TopDown => unreachable!(),
            },
            r.stats.total_probes()
        );
    }
    if flags.has("levels") || direction.mode != DirectionMode::TopDown {
        print_level_table(&r.stats);
    }
    if flags.has("validate") {
        validate_or_exit(&spec, &r.levels, source);
    }
    let f = &r.stats.comm.faults;
    if faulty || f.any() {
        println!(
            "faults: {} drops, {} truncations, {} duplicates => {} retransmissions; \
             {} detour hops, {} recoveries",
            f.drops_injected,
            f.truncations_injected,
            f.duplicates_injected,
            f.retransmissions,
            f.detour_hops,
            f.recoveries
        );
    }
    emit_trace_artifacts(&mut world, flags);
}

fn cmd_path(flags: &Flags) {
    let spec = spec_from(flags);
    let grid = grid_from(flags);
    let source = flags.u64("source", 0).min(spec.n - 1);
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid).with_wire_policy(wire_policy_from(flags));
    let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), source);

    if let Some(list) = flags.0.get("targets") {
        // Batched lane wave: every target shares each per-hop control
        // round of the walk.
        let targets: Vec<u64> = list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("--targets: bad vertex {s:?}"))
                    .min(spec.n - 1)
            })
            .collect();
        assert!(
            !targets.is_empty() && targets.len() <= bgl_bfs::comm::MAX_LANES,
            "--targets takes 1..={} comma-separated vertices",
            bgl_bfs::comm::MAX_LANES
        );
        let batched = path::multi(&graph, &mut world, &r.levels, source, &targets);
        println!(
            "batched walk: {} lanes, {} hops, {} control rounds, {:.3} ms sim",
            targets.len(),
            batched.hops,
            batched.rounds,
            batched.sim_time * 1e3
        );
        for (t, p) in targets.iter().zip(&batched.paths) {
            match p {
                Some(p) => println!(
                    "  {t}: {} hops: {}",
                    p.len() - 1,
                    p.iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(" -> ")
                ),
                None => println!("  {t}: not reachable from {source}"),
            }
        }
        return;
    }

    let target = flags.u64("target", spec.n - 1).min(spec.n - 1);
    match path::extract_path(&graph, &mut world, &r.levels, source, target) {
        Some(p) => {
            println!("shortest path ({} hops):", p.len() - 1);
            println!(
                "  {}",
                p.iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
        }
        None => println!("{target} is not reachable from {source}"),
    }
}

fn cmd_serve(flags: &Flags) {
    let spec = spec_from(flags);
    let grid = grid_from(flags);
    let config = ServerConfig {
        batch_width: flags.u64("batch", 16) as usize,
        queue_capacity: flags.u64("queue-cap", 1024) as usize,
        deadline_ticks: flags.has("deadline").then(|| flags.u64("deadline", 8)),
        cache_capacity: flags.u64("cache-cap", 64) as usize,
        multi: multi::MultiConfig {
            engine: engine_from(flags),
            ..multi::MultiConfig::default()
        },
        validate_batches: flags.has("validate"),
    };
    let wspec = WorkloadSpec {
        queries: flags.u64("queries", 64) as usize,
        hot_sources: flags.u64("hot", 16) as usize,
        theta: flags.f64("theta", 1.0),
        mix: QueryMix::default(),
        seed: flags.u64("workload-seed", 99),
    };
    let per_tick = flags.u64("arrivals", 4).max(1) as usize;
    let mean = flags.f64("arrivals", per_tick as f64);
    let process = if let Some(path) = flags.0.get("arrival-replay") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("--arrival-replay {path:?}: {e}"));
        ArrivalProcess::replay_from_text(&text)
            .unwrap_or_else(|e| panic!("--arrival-replay {path:?}: {e}"))
    } else {
        match flags.0.get("arrival-process").map(String::as_str) {
            None | Some("fixed") => ArrivalProcess::Fixed { per_tick },
            Some("poisson") => ArrivalProcess::Poisson { mean },
            Some("bursty") => ArrivalProcess::Bursty {
                mean,
                burst: flags.f64("burst", 8.0),
            },
            Some(other) => {
                panic!("--arrival-process: {other:?} (expected fixed, poisson, or bursty)")
            }
        }
    };
    println!(
        "G(n={}, k={}) on {}x{} — serving {} Zipf(θ={}) queries, batch width {}, \
         arrivals {:?}…",
        spec.n,
        spec.avg_degree,
        grid.rows(),
        grid.cols(),
        wspec.queries,
        wspec.theta,
        config.batch_width,
        process
    );
    let workload = wspec.generate(spec.n);
    let schedule = process.schedule(workload.len(), flags.u64("arrival-seed", 7));
    if let Some(path) = flags.0.get("arrival-record") {
        std::fs::write(path, ArrivalProcess::schedule_to_text(&schedule))
            .unwrap_or_else(|e| panic!("--arrival-record {path:?}: {e}"));
        println!("recorded arrival schedule to {path}");
    }
    let graph = DistGraph::build(spec, grid);
    let world = SimWorld::bluegene(grid).with_wire_policy(wire_policy_from(flags));
    let mut srv = BglServer::new(graph, world, config);
    let mut pending = workload.into_iter();
    for count in schedule {
        for q in pending.by_ref().take(count) {
            if srv.submit(q).is_err() {
                eprintln!("warning: queue full, query rejected (raise --queue-cap)");
            }
        }
        srv.pump();
    }
    srv.run_to_completion();

    let s = srv.stats();
    println!(
        "served {} of {} queries in {} ticks: {} by engine batches, {} from cache, \
         {} expired, {} rejected",
        s.served_total(),
        s.submitted + s.rejected,
        srv.tick(),
        s.served_engine,
        s.served_cache,
        s.expired,
        s.rejected
    );
    println!(
        "batches: {} ({} validated), mean occupancy {:.2}, {} waves, engine {:.3} ms sim, \
         cache {:.3} ms sim",
        s.batches,
        s.validated_batches,
        s.occupancy_mean(),
        s.waves_total,
        s.engine_sim_time * 1e3,
        s.cache_sim_time * 1e3
    );
    println!(
        "path walks: {} waves, {} lanes (mean {:.2}), {} hops, {} rounds, {:.3} ms sim",
        s.path_walks,
        s.path_walk_lanes,
        s.path_walk_occupancy_mean(),
        s.path_walk_hops,
        s.path_walk_rounds,
        s.path_walk_sim_time * 1e3
    );
    println!(
        "qps (simulated): {:.1}; latency mean {:.2} ticks, max {}; queue depth mean {:.2}, max {}",
        s.qps(),
        s.latency_ticks_mean(),
        s.latency_ticks_max,
        s.queue_depth_mean(),
        s.queue_depth_max
    );
    let c = srv.cache();
    println!(
        "cache: {} hits / {} misses, {} evictions (capacity {})",
        c.hits,
        c.misses,
        c.evictions,
        c.capacity()
    );
    let out = flags
        .0
        .get("summary-out")
        .cloned()
        .unwrap_or_else(|| "SERVER_summary.json".to_string());
    std::fs::write(&out, srv.summary_json())
        .unwrap_or_else(|e| panic!("--summary-out {out:?}: {e}"));
    println!("wrote {out}");
}

fn cmd_theory(flags: &Flags) {
    let n = flags.u64("n", 40_000_000) as f64;
    let p = flags.u64("p", 400) as f64;
    let kmax = flags.f64("kmax", 1e4);
    println!(
        "§3.1 analysis for n = {n}, P = {p} (square mesh √P = {:.0}):\n",
        p.sqrt()
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "k", "1D fold", "2D expand", "2D fold", "worst n/P·k"
    );
    for k in [1.0, 5.0, 10.0, 20.0, 34.0, 50.0, 100.0, 200.0] {
        let rt = p.sqrt();
        println!(
            "{:>6} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            k,
            theory::expected_len_1d(n, k, p),
            theory::expected_len_2d_expand(n, k, p, rt),
            theory::expected_len_2d_fold(n, k, p, rt),
            theory::worst_case_len(n, k, p)
        );
    }
    match theory::crossover_degree(n, p, kmax) {
        Some(k) => println!(
            "\n1D/2D crossover degree: k = {k:.2} (the paper reports 34 at P = 400; \
             the exact root of its equation is ≈ 31.3)"
        ),
        None => println!("\nno 1D/2D crossover below k = {kmax}"),
    }
}

fn cmd_memory(flags: &Flags) {
    let grid = grid_from(flags);
    let per_rank = flags.u64("per-rank", 100_000);
    let k = flags.f64("k", 10.0);
    let n = per_rank * grid.len() as u64;
    let spec = GraphSpec::poisson(n, k, 0);
    let machine = MachineConfig::bluegene_l_half();
    let chunk = match flags.u64("chunk", 65536) {
        0 => ChunkPolicy::Unbounded,
        c => ChunkPolicy::fixed(c as usize),
    };
    let est = memory::estimate(&spec, grid, &machine, chunk);
    println!(
        "n = {n} (|V|/rank = {per_rank}, k = {k}) on {}x{} — per-node budget:",
        grid.rows(),
        grid.cols()
    );
    println!("  edge entries : {:>10.1} MB", est.edge_bytes / 1e6);
    println!("  column index : {:>10.1} MB", est.col_index_bytes / 1e6);
    println!("  row index    : {:>10.1} MB", est.row_index_bytes / 1e6);
    println!("  owned state  : {:>10.1} MB", est.owned_bytes / 1e6);
    println!("  buffers      : {:>10.1} MB", est.buffer_bytes / 1e6);
    println!("  fold bitmap  : {:>10.1} MB", est.bitmap_bytes / 1e6);
    println!(
        "  total        : {:>10.1} MB of {:.0} MB/node ({:.1}%) => {}",
        est.total() / 1e6,
        est.capacity_bytes / 1e6,
        est.utilization() * 100.0,
        if est.fits() { "FITS" } else { "DOES NOT FIT" }
    );
    let cap = memory::max_per_rank_vertices(k, grid, &machine, chunk);
    println!("  max |V|/rank at k = {k}: {cap}");
}

fn cmd_info() {
    for (name, m) in [
        (
            "BlueGene/L full (64x32x32)",
            MachineConfig::bluegene_l_full(),
        ),
        (
            "BlueGene/L half (32x32x32)",
            MachineConfig::bluegene_l_half(),
        ),
        ("MCR Linux cluster", MachineConfig::mcr_cluster()),
    ] {
        println!(
            "{name}: {} nodes, {} MB/node, link {:.0} MB/s, α = {:.1} µs, hash {:.0} Mprobe/s",
            m.node_count(),
            m.memory_per_node / (1024 * 1024),
            m.link_bandwidth / 1e6,
            m.software_overhead * 1e6,
            m.hash_rate / 1e6
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        print!("{HELP}");
        return;
    };
    let flags = Flags::parse(&args[1..]);
    if let Some(problem) = flag_error(cmd, &flags) {
        eprintln!("error: {problem}");
        std::process::exit(2);
    }
    match cmd.as_str() {
        "search" => cmd_search(&flags),
        "path" => cmd_path(&flags),
        "serve" => cmd_serve(&flags),
        "theory" => cmd_theory(&flags),
        "memory" => cmd_memory(&flags),
        "info" => cmd_info(),
        "help" | "--help" | "-h" => print!("{HELP}"),
        other => {
            eprintln!("unknown command {other:?}\n");
            print!("{HELP}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &str) -> Flags {
        Flags::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn parses_key_value_pairs() {
        let f = flags("--n 500 --k 12.5 --bidir");
        assert_eq!(f.u64("n", 0), 500);
        assert!((f.f64("k", 0.0) - 12.5).abs() < 1e-12);
        assert!(f.has("bidir"));
        assert!(!f.has("target"));
    }

    #[test]
    fn defaults_when_missing() {
        let f = flags("");
        assert_eq!(f.u64("rows", 4), 4);
        assert_eq!(f.f64("k", 10.0), 10.0);
    }

    #[test]
    fn grid_and_spec_construction() {
        let f = flags("--rows 2 --cols 8 --n 1000 --k 4 --seed 9");
        let g = grid_from(&f);
        assert_eq!((g.rows(), g.cols()), (2, 8));
        let spec = spec_from(&f);
        assert_eq!(spec.n, 1000);
        assert_eq!(spec.seed, 9);
    }

    #[test]
    #[should_panic(expected = "bad integer")]
    fn bad_integer_rejected() {
        flags("--n abc").u64("n", 0);
    }

    #[test]
    fn direction_flag_parses() {
        assert_eq!(direction_from(&flags("")), DirectionPolicy::top_down());
        assert_eq!(
            direction_from(&flags("--direction off")),
            DirectionPolicy::top_down()
        );
        assert_eq!(
            direction_from(&flags("--direction adaptive")),
            DirectionPolicy::adaptive()
        );
        assert_eq!(
            direction_from(&flags("--direction bottom-up")),
            DirectionPolicy::bottom_up()
        );
    }

    #[test]
    #[should_panic(expected = "--direction")]
    fn bad_direction_rejected() {
        direction_from(&flags("--direction sideways"));
    }

    #[test]
    fn clean_invocations_pass_flag_validation() {
        // The CI smoke invocations, among others, must stay accepted.
        for (cmd, line) in [
            (
                "search",
                "--n 30000 --k 8 --rows 2 --cols 4 --drop-rate 0.1 --dead-rank 3 --dead-at 4 \
                 --parity-group 4 --direction adaptive --validate",
            ),
            (
                "search",
                "--n 50000 --k 8 --rows 4 --cols 4 --trace --trace-out /tmp/t --wire auto",
            ),
            ("search", "--source 0 --target 99 --bidir --engine rayon"),
            ("path", "--n 1000 --source 0 --target 99"),
            ("path", "--n 1000 --source 0 --targets 5,9,99 --wire delta"),
            (
                "serve",
                "--n 8000 --batch 8 --queries 16 --cache-cap 8 --deadline 6 --summary-out /tmp/s",
            ),
            (
                "serve",
                "--n 8000 --queries 32 --arrivals 3 --arrival-process poisson --arrival-seed 5",
            ),
            (
                "serve",
                "--n 8000 --queries 32 --arrival-process bursty --burst 10 --arrival-seed 3",
            ),
            ("theory", "--n 40000000 --p 400 --kmax 1e4"),
            ("memory", "--per-rank 100000 --k 10 --chunk 0"),
            ("info", ""),
            ("definitely-not-a-command", "--whatever x"),
        ] {
            assert_eq!(flag_error(cmd, &flags(line)), None, "{cmd} {line}");
        }
    }

    #[test]
    fn unknown_flags_are_rejected_per_command() {
        // A search flag is not a path/theory flag, and typos don't pass.
        for (cmd, line, mention) in [
            ("search", "--n 100 --sorce 5", "--sorce"),
            ("path", "--n 100 --drop-rate 0.1", "--drop-rate"),
            ("path", "--trace", "--trace"),
            ("serve", "--n 100 --direction adaptive", "--direction"),
            ("theory", "--rows 4", "--rows"),
            ("info", "--n 100", "--n"),
        ] {
            let e = flag_error(cmd, &flags(line)).expect(cmd);
            assert!(e.contains(mention), "{cmd}: {e}");
        }
    }

    #[test]
    fn contradictory_search_combinations_are_rejected() {
        for (line, mention) in [
            ("--bidir --drop-rate 0.1", "--bidir"),
            ("--bidir --dead-rank 3", "--bidir"),
            ("--bidir --parity-group 4", "--bidir"),
            ("--bidir --direction adaptive", "--direction"),
            ("--dead-at 4", "--dead-rank"),
            ("--parity-group 4", "--parity-group"),
        ] {
            let e = flag_error("search", &flags(line)).expect(line);
            assert!(e.contains(mention), "{line}: {e}");
        }
        // The same flags in working combinations stay accepted.
        for line in [
            "--dead-rank 3 --dead-at 4",
            "--parity-group 4 --drop-rate 0.05",
            "--bidir --target 9",
        ] {
            assert_eq!(flag_error("search", &flags(line)), None, "{line}");
        }
    }

    #[test]
    fn contradictory_path_and_serve_combinations_are_rejected() {
        let e = flag_error("path", &flags("--target 5 --targets 1,2")).expect("path");
        assert!(e.contains("--targets"), "{e}");
        let e = flag_error("serve", &flags("--burst 10")).expect("serve");
        assert!(e.contains("--burst"), "{e}");
        let e = flag_error("serve", &flags("--burst 10 --arrival-process poisson")).expect("serve");
        assert!(e.contains("--burst"), "{e}");
        // --burst is fine once the process actually is bursty.
        assert_eq!(
            flag_error("serve", &flags("--burst 10 --arrival-process bursty")),
            None
        );
        // Replaying a recorded schedule contradicts picking a generator.
        let e = flag_error(
            "serve",
            &flags("--arrival-replay sched.txt --arrival-process poisson"),
        )
        .expect("serve");
        assert!(e.contains("--arrival-replay"), "{e}");
        for line in [
            "--arrival-replay sched.txt",
            "--arrival-record sched.txt --arrival-process poisson",
        ] {
            assert_eq!(flag_error("serve", &flags(line)), None, "{line}");
        }
    }
}
