//! Vendored minimal stand-in for `rand` (offline build).
//!
//! Implements exactly the surface this workspace uses: the `RngCore` /
//! `SeedableRng` trait pair, `Rng::gen::<f64>()`, and
//! `Rng::gen_range(low..high)` for unsigned integer ranges. Generators
//! live in `rand_chacha` (also vendored). The streams are deterministic
//! but not bit-compatible with the real crates — nothing in the repo
//! depends on the upstream stream values, only on determinism.

/// Core random-number generation: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable uniformly over their "standard" domain via [`Rng::gen`]
/// (mirrors rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64·span
                // and irrelevant for the simulation workloads here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}
impl_uint_range!(u64, u32, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so high bits move too.
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
        }
        for _ in 0..100 {
            assert_eq!(r.gen_range(5usize..6), 5);
        }
    }
}
