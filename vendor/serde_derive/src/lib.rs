//! Vendored no-op stand-in for `serde_derive`.
//!
//! The workspace builds offline (no registry access), so the external
//! crates it names are vendored as minimal in-repo implementations under
//! `vendor/`. Nothing in this repository serializes data — the derives
//! exist only so types can declare serializability for downstream users —
//! so the derive macros here validly expand to nothing. If a future PR
//! starts actually serializing, replace this with the real crate (or emit
//! real impls here).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
