//! Vendored ChaCha8 random generator (offline build).
//!
//! A genuine ChaCha stream cipher core with 8 double-rounds, exposed
//! through the vendored `rand` traits. Deterministic and high-quality;
//! not bit-compatible with the upstream `rand_chacha` stream (nothing in
//! this repository depends on the upstream values, only on determinism).

use rand::{RngCore, SeedableRng};

/// The ChaCha8 generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Build from a 256-bit key (eight little-endian words).
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // Words 12..16: block counter + nonce, all zero at start.
        Self {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // ChaCha8 = 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, s) in w.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.buf = w;
        self.idx = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64,
        // the same expansion rand_core uses for seed_from_u64.
        let mut s = state;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in 0..4 {
            let v = next();
            key[2 * pair] = v as u32;
            key[2 * pair + 1] = (v >> 32) as u32;
        }
        Self::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let expect = 1000 * 32;
        assert!((ones as i64 - expect as i64).abs() < 2000, "ones={ones}");
    }
}
