//! Vendored minimal benchmark harness (offline build).
//!
//! Mirrors the `criterion` API shapes the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput` — and reports a simple mean wall-clock time per
//! iteration. No statistics, warm-up, or HTML reports: enough to run
//! `cargo bench` and compare numbers across changes.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box` under criterion's historical name).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`: either a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Convert to the printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, recording the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples (used here as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            iters: self.sample_size as u64,
            mean_ns: 0.0,
        };
        f(&mut b);
        let mut line = format!("{}/{id}: {}", self.name, fmt_ns(b.mean_ns));
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (b.mean_ns / 1e9);
                line.push_str(&format!("  ({per_sec:.0} elem/s)"));
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (b.mean_ns / 1e9);
                line.push_str(&format!("  ({:.1} MB/s)", per_sec / 1e6));
            }
            None => {}
        }
        println!("{line}");
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (separator line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
