//! Vendored sequential stand-in for `rayon` (offline build).
//!
//! Mirrors the rayon combinator shapes this workspace uses —
//! `into_par_iter()`, `map`, `fold(identity, f)`, `reduce(identity, op)`,
//! `collect` — executing them sequentially on the calling thread. The
//! rayon fold/reduce contract (fold yields per-split partial accumulators,
//! reduce combines them) degenerates to a single partial accumulator,
//! which `reduce` still combines with the identity, so call sites behave
//! identically up to ordering (and rayon itself never guarantees split
//! boundaries).

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<F, T>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> T,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Rayon-style fold: produce partial accumulators (here, exactly one).
    pub fn fold<T, Id, F>(self, identity: Id, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        Id: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let acc = self.inner.fold(identity(), fold_op);
        ParIter {
            inner: std::iter::once(acc),
        }
    }

    /// Rayon-style reduce: combine all items starting from the identity.
    pub fn reduce<Id, F>(self, identity: Id, op: F) -> I::Item
    where
        Id: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Filter items by a predicate.
    pub fn filter<P>(self, predicate: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(predicate),
        }
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Run a side effect per item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }
}

/// Conversion into a "parallel" iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Wrap this collection's iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<I: IntoIterator> IntoParallelIterator for I {}

pub mod prelude {
    //! Rayon-style prelude.
    pub use crate::{IntoParallelIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let buckets = (0u64..100)
            .into_par_iter()
            .fold(
                || vec![0u64; 4],
                |mut acc, i| {
                    acc[(i % 4) as usize] += i;
                    acc
                },
            )
            .reduce(
                || vec![0u64; 4],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(buckets.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn map_collect() {
        let v: Vec<u64> = vec![1u64, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![2, 4, 6]);
    }
}
