//! Vendored sequential stand-in for `rayon` (offline build).
//!
//! Mirrors the rayon combinator shapes this workspace uses —
//! `into_par_iter()`, `map`, `fold(identity, f)`, `reduce(identity, op)`,
//! `collect` — executing them sequentially on the calling thread. The
//! rayon fold/reduce contract (fold yields per-split partial accumulators,
//! reduce combines them) degenerates to a single partial accumulator,
//! which `reduce` still combines with the identity, so call sites behave
//! identically up to ordering (and rayon itself never guarantees split
//! boundaries).

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<F, T>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> T,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Rayon-style fold: produce partial accumulators (here, exactly one).
    pub fn fold<T, Id, F>(self, identity: Id, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        Id: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let acc = self.inner.fold(identity(), fold_op);
        ParIter {
            inner: std::iter::once(acc),
        }
    }

    /// Rayon-style reduce: combine all items starting from the identity.
    pub fn reduce<Id, F>(self, identity: Id, op: F) -> I::Item
    where
        Id: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    /// Filter items by a predicate.
    pub fn filter<P>(self, predicate: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(predicate),
        }
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }

    /// Run a side effect per item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }
}

/// Conversion into a "parallel" iterator.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Wrap this collection's iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<I: IntoIterator> IntoParallelIterator for I {}

pub mod prelude {
    //! Rayon-style prelude.
    pub use crate::{IntoParallelIterator, ParIter, ParallelSliceMut};
}

/// Explicit worker-thread override (0 = use available parallelism).
/// Real rayon sizes its global pool from `RAYON_NUM_THREADS`; this
/// stand-in exposes the same knob programmatically so benchmarks and
/// the CLI can force slice parallelism wider (or narrower) than the
/// host's reported core count.
static WORKER_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Override the number of worker threads used for slice parallelism.
/// `0` restores the default (one worker per available core).
pub fn set_worker_threads(n: usize) {
    WORKER_OVERRIDE.store(n, std::sync::atomic::Ordering::Relaxed);
}

/// The worker-thread count currently in effect.
pub fn current_num_threads() -> usize {
    thread_count()
}

/// Worker threads to use for slice parallelism (override, else all
/// available cores).
fn thread_count() -> usize {
    match WORKER_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Run `f` over every element of `slice`, splitting the slice into one
/// contiguous chunk per worker thread (scoped threads; no pool). The
/// result vector preserves input order: chunk boundaries are positional
/// and chunk results are concatenated in order, so the output is
/// *deterministic* — identical to the sequential map — regardless of
/// thread scheduling.
fn par_map_slices<T, U, R, F>(slice: &mut [T], ctx: &[U], f: &F) -> Vec<R>
where
    T: Send,
    U: Sync,
    R: Send,
    F: Fn(&mut T, &U) -> R + Sync,
{
    assert_eq!(slice.len(), ctx.len());
    let len = slice.len();
    let workers = thread_count().min(len);
    if workers <= 1 {
        return slice.iter_mut().zip(ctx).map(|(t, u)| f(t, u)).collect();
    }
    let chunk = len.div_ceil(workers);
    let mut out = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (ts, us) in slice.chunks_mut(chunk).zip(ctx.chunks(chunk)) {
            handles.push(scope.spawn(move || {
                ts.iter_mut()
                    .zip(us)
                    .map(|(t, u)| f(t, u))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            out.extend(h.join().expect("parallel slice worker panicked"));
        }
    });
    out
}

/// Parallel mutable-slice iterator (order-preserving results).
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Map every element through `f` in parallel; results come back in
    /// input order.
    pub fn map<R, F>(self, f: F) -> ParSliceMutMap<'a, T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        ParSliceMutMap {
            slice: self.slice,
            f,
        }
    }

    /// Pair every element with the same-index element of a shared
    /// slice (rayon's `zip` over an equal-length context).
    pub fn zip<'b, U: Sync>(self, ctx: &'b [U]) -> ParSliceMutZip<'a, 'b, T, U> {
        assert_eq!(self.slice.len(), ctx.len());
        ParSliceMutZip {
            slice: self.slice,
            ctx,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let unit: Vec<()> = vec![(); self.slice.len()];
        let _ = par_map_slices(self.slice, &unit, &|t, _u: &()| f(t));
    }
}

/// A pending parallel map over a mutable slice.
pub struct ParSliceMutMap<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<T: Send, F> ParSliceMutMap<'_, T, F> {
    /// Execute the map and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FromIterator<R>,
    {
        let unit: Vec<()> = vec![(); self.slice.len()];
        let f = self.f;
        par_map_slices(self.slice, &unit, &|t, _u: &()| f(t))
            .into_iter()
            .collect()
    }
}

/// A pending parallel zip of a mutable slice with a shared slice.
pub struct ParSliceMutZip<'a, 'b, T, U> {
    slice: &'a mut [T],
    ctx: &'b [U],
}

impl<T: Send, U: Sync> ParSliceMutZip<'_, '_, T, U> {
    /// Map every `(mut element, context)` pair; results in input order.
    pub fn map_collect<R, C, F>(self, f: F) -> C
    where
        R: Send,
        F: Fn(&mut T, &U) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_slices(self.slice, self.ctx, &f)
            .into_iter()
            .collect()
    }

    /// Run `f` on every `(mut element, context)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T, &U) + Sync,
    {
        let _ = par_map_slices(self.slice, self.ctx, &|t, u| f(t, u));
    }
}

/// Rayon's `par_iter_mut` entry point for slices (and, via deref,
/// `Vec`).
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator over mutable references.
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }
}

/// Run two closures, potentially in parallel, returning both results
/// (rayon's `join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let buckets = (0u64..100)
            .into_par_iter()
            .fold(
                || vec![0u64; 4],
                |mut acc, i| {
                    acc[(i % 4) as usize] += i;
                    acc
                },
            )
            .reduce(
                || vec![0u64; 4],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(buckets.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn map_collect() {
        let v: Vec<u64> = vec![1u64, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_mut_map_preserves_order() {
        let mut v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter_mut().map(|x| *x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_for_each_mutates_in_place() {
        let mut v: Vec<u64> = (0..257).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, (1..258).collect::<Vec<_>>());
    }

    #[test]
    fn zip_pairs_by_index() {
        let mut v: Vec<u64> = vec![10, 20, 30, 40, 50];
        let ctx: Vec<u64> = vec![1, 2, 3, 4, 5];
        let sums: Vec<u64> = v.par_iter_mut().zip(&ctx).map_collect(|a, b| {
            *a += *b;
            *a
        });
        assert_eq!(sums, vec![11, 22, 33, 44, 55]);
        assert_eq!(v, vec![11, 22, 33, 44, 55]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = crate::join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<u64> = Vec::new();
        let out: Vec<u64> = v.par_iter_mut().map(|x| *x).collect();
        assert!(out.is_empty());
        v.par_iter_mut().for_each(|x| *x += 1);
    }
}
