//! Vendored minimal stand-in for `serde` (offline build).
//!
//! Provides the `Serialize`/`Deserialize` trait names plus the matching
//! no-op derive macros so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The repository
//! never serializes anything, so the traits carry no methods.

/// Marker trait mirroring `serde::Serialize` (no-op in the vendored stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no-op in the vendored stub).
pub trait Deserialize<'de> {}

// The derive macros share the trait names, exactly as in real serde:
// `use serde::Serialize` imports both the trait and the derive.
pub use serde_derive::{Deserialize, Serialize};
