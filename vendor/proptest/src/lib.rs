//! Vendored minimal property-testing framework (offline build).
//!
//! Implements the subset of the `proptest` surface this workspace uses:
//! the `proptest!` macro with optional `#![proptest_config(...)]`,
//! range/tuple/`Just`/`any`/`prop_oneof!`/collection strategies, the
//! `prop_map`/`prop_flat_map` combinators, and panicking
//! `prop_assert*` macros. Cases are drawn from a deterministic RNG (no
//! shrinking): a failing case always reproduces under the same build, and
//! the failure message carries the case index.

pub mod test_runner {
    //! Runner configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a property.
        pub fn for_case(case: u64) -> Self {
            Self {
                state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5eed_5eed_5eed_5eed,
            }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then a strategy from it, then its value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Choose uniformly among `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_signed_range!(i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);
    impl_tuple!(A, B, C, D, E, F, G);
    impl_tuple!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy behind [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the whole domain.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary_sample(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_sample(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary_sample(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary_sample(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The `proptest!` macro: runs each enclosed `#[test] fn` over many
/// sampled cases. No shrinking; the panic message names the failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest: property {} failed at case {}/{}",
                        stringify!($name), __case, __cfg.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_body!(($cfg) $($rest)*);
    };
}

/// Panicking property assertion.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Panicking property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Panicking property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! Everything the `proptest::prelude::*` idiom expects in scope.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 10u64..20,
            b in 1usize..=4,
            x in 0.0f64..1.0,
            flag in any::<bool>(),
        ) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
            let _ = flag;
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u64..5, 0..8),
            pair in (1u32..4, 1u32..4).prop_map(|(p, q)| p + q),
            pick in prop_oneof![Just(1u8), Just(2u8)],
            n in (1usize..5).prop_flat_map(|k| prop::collection::vec(Just(k), k..=k)),
        ) {
            prop_assert!(v.len() < 8 && v.iter().all(|&e| e < 5));
            prop_assert!((2..=6).contains(&pair));
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(n.len(), n[0]);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1000, 0.0f64..1.0);
        let mut r1 = crate::test_runner::TestRng::for_case(5);
        let mut r2 = crate::test_runner::TestRng::for_case(5);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
