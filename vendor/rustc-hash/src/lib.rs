//! Vendored FxHash (offline build): the multiply-xor hash used by rustc,
//! plus the `FxHashMap`/`FxHashSet` aliases. Deterministic (no per-process
//! random state), which the repo's reproducibility tests rely on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A deterministic `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_is_deterministic() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&40), Some(&80));
        let mut keys: Vec<_> = m.keys().copied().collect();
        keys.sort_unstable();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn hasher_distinguishes_values() {
        let h = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_ne!(h(1), h(2));
        assert_ne!(h(0), h(1 << 40));
    }
}
