//! Engine cross-validation demo: the same distributed BFS executed by
//! (a) the deterministic superstep simulator and (b) a real
//! one-thread-per-rank message-passing runtime, producing identical
//! labels.
//!
//! ```sh
//! cargo run --release --example threaded_vs_sim
//! ```

use bgl_bfs::core::{bfs2d, threaded_run, UNREACHED};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};
use std::time::Instant;

fn main() {
    let spec = GraphSpec::poisson(50_000, 8.0, 99);
    let grid = ProcessorGrid::new(4, 4);
    println!(
        "G(n={}, k={}) on a {}x{} grid — 16 ranks\n",
        spec.n,
        spec.avg_degree,
        grid.rows(),
        grid.cols()
    );
    let graph = DistGraph::build(spec, grid);

    let t0 = Instant::now();
    let mut world = SimWorld::bluegene(grid);
    let sim = bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 0);
    let sim_wall = t0.elapsed();

    let t0 = Instant::now();
    let threaded = threaded_run::run_threaded(&graph, 0, true);
    let threaded_wall = t0.elapsed();

    assert_eq!(sim.levels, threaded, "engines must agree exactly");
    let reached = threaded.iter().filter(|&&l| l != UNREACHED).count();
    println!("both engines labeled {reached} vertices identically ✓");
    println!(
        "superstep simulator : {:>8.1?} wall ({:.3} simulated ms on BG/L)",
        sim_wall,
        sim.stats.sim_time * 1e3
    );
    println!("threaded SPMD (16 OS threads): {threaded_wall:>8.1?} wall");
    println!(
        "\nthe simulator executes ranks in one address space and *models* time; \
         the threaded runtime really passes messages between threads. Identical \
         output is the cross-check that the simulation substrate is faithful."
    );
}
