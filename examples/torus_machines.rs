//! Machine-model tour: the BlueGene/L torus, task mappings, and the MCR
//! cluster comparison (§4.1 and Figure 1).
//!
//! Shows (a) the raw machine models, (b) how the Figure 1 folded-planes
//! task mapping keeps expand/fold groups physically compact compared to
//! naive mappings, and (c) the same BFS run costed on BlueGene/L vs the
//! MCR Linux cluster — the paper's "conventional platform" comparison.
//!
//! ```sh
//! cargo run --release --example torus_machines
//! ```

use bgl_bfs::comm::ChunkPolicy;
use bgl_bfs::core::bfs2d;
use bgl_bfs::torus::{
    mean_hop_distance, LogicalArray, MachineConfig, TaskMapping, TaskMappingKind,
};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

fn main() {
    // (a) the machines.
    for (name, m) in [
        ("BlueGene/L (full)", MachineConfig::bluegene_l_full()),
        (
            "BlueGene/L (half, the paper's partition)",
            MachineConfig::bluegene_l_half(),
        ),
        ("MCR Linux cluster", MachineConfig::mcr_cluster()),
    ] {
        let hops = match m.kind {
            bgl_bfs::torus::MachineKind::Torus3D => mean_hop_distance(m.dims),
            bgl_bfs::torus::MachineKind::Flat => 1.0,
        };
        println!(
            "{name}: {} nodes, {} MiB/node, {:.0} MB/s per link, mean hop distance {:.1}",
            m.node_count(),
            m.memory_per_node / (1024 * 1024),
            m.link_bandwidth / 1e6,
            hops
        );
    }

    // (b) task mappings for a 16x16 logical processor array.
    let logical = LogicalArray::new(16, 16);
    let dims = TaskMapping::paper_torus_for(logical);
    println!(
        "\nmapping a 16x16 logical array onto a {}x{}x{} torus (Figure 1):",
        dims.x, dims.y, dims.z
    );
    println!(
        "{:>15} {:>22} {:>22}",
        "mapping", "mean expand ring hops", "mean fold ring hops"
    );
    for (name, kind) in [
        ("folded planes", TaskMappingKind::FoldedPlanes),
        ("row major", TaskMappingKind::RowMajor),
        ("scrambled", TaskMappingKind::Scrambled),
    ] {
        let m = TaskMapping::new(kind, logical, dims);
        println!(
            "{:>15} {:>22.1} {:>22.1}",
            name,
            m.mean_expand_ring_cost(),
            m.mean_fold_ring_cost()
        );
    }

    // (c) the same search costed on both machines.
    let spec = GraphSpec::poisson(64_000, 10.0, 11);
    let grid = ProcessorGrid::new(8, 8);
    let graph = DistGraph::build(spec, grid);
    println!("\nsame BFS (n=64000, k=10, 8x8 grid) on both machines:");
    for (name, machine) in [
        (
            "BlueGene/L",
            MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(64)),
        ),
        ("MCR cluster", MachineConfig::mcr_cluster()),
    ] {
        let mut world = SimWorld::new(
            grid,
            machine,
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::Unbounded,
        );
        let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);
        println!(
            "  {name:<12}: {:.3} ms simulated ({:.3} ms comm, {:.3} ms compute)",
            r.stats.sim_time * 1e3,
            r.stats.comm_time * 1e3,
            r.stats.compute_time * 1e3
        );
    }
    println!(
        "\nthe MCR model has faster per-node compute but higher per-message latency — \
         the trade the paper explored by running on both platforms."
    );
}
