//! Trace a BFS on a simulated BlueGene/L partition and analyze it:
//! per-level critical path (which collective phase and rank bound each
//! level) plus the five hottest torus links.
//!
//! ```sh
//! cargo run --release --example trace_critical_path
//! ```
//!
//! The same artifacts are written to `results/trace_example/` —
//! `TRACE_chrome.json` loads in `chrome://tracing` or Perfetto, and
//! `TRACE_summary.json` is the machine-readable critical path.

use bgl_bfs::core::bfs2d;
use bgl_bfs::trace::write_artifacts;
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld, TraceDetail};
use std::path::Path;

fn main() {
    // The paper's degree-10 workload at laptop scale, on an 8x8
    // processor mesh mapped onto a BlueGene/L torus partition.
    let spec = GraphSpec::poisson(50_000, 10.0, 42);
    let grid = ProcessorGrid::new(8, 8);
    println!(
        "tracing BFS over G(n={}, k={}) on a {}x{} mesh…",
        spec.n,
        spec.avg_degree,
        grid.rows(),
        grid.cols()
    );
    let graph = DistGraph::build(spec, grid);
    let mut world = SimWorld::bluegene(grid);

    // Event-level detail records every point-to-point send, which is
    // what the link heatmap needs; span detail is cheaper when only the
    // critical path matters.
    world.enable_trace(TraceDetail::Event);
    let result = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);
    println!(
        "reached {} vertices in {} levels ({:.3} ms simulated)\n",
        result.stats.reached,
        result.stats.num_levels(),
        result.stats.sim_time * 1e3
    );

    let buf = world.take_trace().expect("tracing was enabled");
    let machine = *world.cost_model().machine();
    let report = write_artifacts(
        &buf,
        world.mapping(),
        &machine,
        Path::new("results/trace_example"),
    )
    .expect("write trace artifacts");

    // Which phase bounds each level? Early sparse levels are latency
    // bound (the termination allreduce); the frontier-peak levels are
    // bound by the absorb phase's hash pass on the bottleneck rank.
    print!("{}", report.critical.render_table());

    // Where did the bytes go on the physical torus? Dimension-ordered
    // routes concentrate fold traffic on row-neighbor links.
    println!(
        "\nhottest links ({} distinct links carried traffic, {} sends replayed):",
        report.heatmap.links_used(),
        report.heatmap.sends()
    );
    print!("{}", report.heatmap.render_table(5));

    println!(
        "\nwrote {} (load in chrome://tracing) and {}",
        report.chrome_path.display(),
        report.summary_path.display()
    );
}
