//! Small-world semantic graphs and the BFS frontier.
//!
//! The paper motivates distributed BFS with semantic graphs, which in
//! practice are small-world networks: highly clustered, with short
//! global paths created by a few long-range links. This example sweeps
//! the Watts–Strogatz rewiring probability and shows how graph
//! structure reshapes the search the paper's machinery performs:
//!
//! * a pure lattice has diameter O(n/k) — hundreds of shallow levels,
//!   tiny frontiers, communication dominated by per-level latency;
//! * a few percent rewiring collapses the diameter ("six degrees"),
//!   concentrating the volume into a handful of explosive levels — the
//!   regime the paper's Figures 4.b/6 characterize;
//! * locality also changes *where* messages go: lattice edges stay near
//!   the diagonal of the adjacency matrix, so fold traffic is mostly
//!   rank-local, while rewired edges spray across the processor row.
//!
//! ```sh
//! cargo run --release --example small_world
//! ```

use bgl_bfs::core::bfs2d;
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

fn main() {
    let n = 50_000u64;
    let k = 8.0;
    let grid = ProcessorGrid::new(4, 4);
    println!(
        "Watts–Strogatz sweep: n = {n}, k = {k}, {}x{} grid\n",
        grid.rows(),
        grid.cols()
    );
    println!(
        "{:>8} {:>8} {:>12} {:>14} {:>14} {:>12}",
        "rewire", "levels", "peak front", "fold verts", "local folds%", "sim time"
    );

    for rewire in [0.0, 0.001, 0.01, 0.1, 1.0] {
        let spec = GraphSpec::small_world(n, k, rewire, 7);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);

        let peak_frontier = r.stats.levels.iter().map(|l| l.frontier).max().unwrap_or(0);
        let fold_wire = r
            .stats
            .comm
            .class(bgl_bfs::comm::OpClass::Fold)
            .received_verts;
        // Locality: how many discovered neighbors were owned by the
        // discovering rank itself (never hit the wire)? Estimate from
        // reached edges vs wire volume.
        let reached_entries: u64 = graph
            .ranks
            .iter()
            .map(|rg| rg.edges.num_entries() as u64)
            .sum();
        let local_pct = 100.0 * (1.0 - fold_wire as f64 / reached_entries.max(1) as f64);

        println!(
            "{:>8} {:>8} {:>12} {:>14} {:>13.1}% {:>10.3}ms",
            rewire,
            r.stats.num_levels(),
            peak_frontier,
            fold_wire,
            local_pct.max(0.0),
            r.stats.sim_time * 1e3
        );
    }

    println!(
        "\nat rewire = 0 the search crawls the ring (levels ≈ n/k, all traffic \
         rank-local); a trickle of long-range links collapses the level count by \
         orders of magnitude while pushing fold traffic onto the wire — the \
         communication regime the paper's collectives are built for."
    );
}
