//! Topology sweep: how should you factor P = R × C?
//!
//! The paper's Table 1 shows that the processor-mesh shape trades
//! expand volume (grows with R) against fold volume (grows with C), and
//! that 1D layouts pay heavily in collective time. This example sweeps
//! every factorization of P for a fixed graph and prints the metrics,
//! plus the §3.1 analytic prediction next to the measurement.
//!
//! ```sh
//! cargo run --release --example topology_sweep
//! ```

use bgl_bfs::core::{bfs2d, theory};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

fn main() {
    let p = 64usize;
    let n = 64_000u64;
    let k = 16.0;
    let spec = GraphSpec::poisson(n, k, 3);

    println!("sweeping factorizations of P = {p} for G(n={n}, k={k}):\n");
    println!(
        "{:>7} {:>11} {:>11} {:>12} {:>12} {:>12} {:>12}",
        "R x C", "exec", "comm", "expand/lvl", "(analytic)", "fold/lvl", "(analytic)"
    );

    let mut best: Option<(f64, usize, usize)> = None;
    for r in 1..=p {
        if !p.is_multiple_of(r) {
            continue;
        }
        let c = p / r;
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let res = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 1);

        // §3.1 expected lengths are totals over a whole-frontier sweep;
        // divide by the executed level count for a per-level analogue.
        let levels = res.stats.num_levels().max(1) as f64;
        let exp_expand = theory::expected_len_2d_expand(n as f64, k, p as f64, r as f64) / levels;
        let exp_fold = theory::expected_len_2d_fold(n as f64, k, p as f64, c as f64) / levels;

        println!(
            "{:>7} {:>9.3}ms {:>9.3}ms {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            format!("{r}x{c}"),
            res.stats.sim_time * 1e3,
            res.stats.comm_time * 1e3,
            res.stats.avg_expand_len_per_level(),
            exp_expand,
            res.stats.avg_fold_len_per_level(),
            exp_fold
        );
        if best.map(|(t, _, _)| res.stats.sim_time < t).unwrap_or(true) {
            best = Some((res.stats.sim_time, r, c));
        }
    }

    let (t, r, c) = best.unwrap();
    println!(
        "\nbest topology: {r}x{c} at {:.3} ms simulated — balanced meshes minimize the \
         larger of the two collective groups, as the paper's O(√P) argument predicts.",
        t * 1e3
    );
    if let Some(kc) = theory::crossover_degree(n as f64, p as f64, 1e4) {
        println!(
            "analytic 1D/2D crossover degree at P={p}: k ≈ {kc:.1} (this graph has k={k}, \
             so {} should win on volume).",
            if k > kc { "2D" } else { "1D" }
        );
    }
}
