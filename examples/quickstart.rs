//! Quickstart: build a distributed Poisson random graph, run the
//! paper's 2D-partitioned BFS on a simulated BlueGene/L partition, and
//! print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bgl_bfs::core::bfs2d;
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

fn main() {
    // A Poisson random graph: 100k vertices, average degree 10 — the
    // paper's degree-10 workload at laptop scale.
    let spec = GraphSpec::poisson(100_000, 10.0, 42);

    // 64 processes in the paper's 2D layout: an 8x8 processor mesh.
    let grid = ProcessorGrid::new(8, 8);
    println!(
        "building G(n={}, k={}) distributed over a {}x{} processor mesh…",
        spec.n,
        spec.avg_degree,
        grid.rows(),
        grid.cols()
    );
    let graph = DistGraph::build(spec, grid);
    println!(
        "  {} adjacency entries stored, max rank footprint {:.1} MiB",
        graph.total_entries(),
        graph.max_rank_bytes() as f64 / (1024.0 * 1024.0)
    );

    // A simulated BlueGene/L partition sized for the grid, with the
    // paper's folded-planes task mapping.
    let mut world = SimWorld::bluegene(grid);

    // The paper's optimized configuration: targeted expand, two-phase
    // union-fold, sent-neighbors cache.
    let result = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);

    println!("\nBFS from vertex 0:");
    println!("  reached        : {} / {}", result.stats.reached, spec.n);
    println!("  levels         : {}", result.stats.num_levels());
    println!(
        "  simulated time : {:.3} ms  (comm {:.3} ms, compute {:.3} ms)",
        result.stats.sim_time * 1e3,
        result.stats.comm_time * 1e3,
        result.stats.compute_time * 1e3
    );
    println!(
        "  volume         : expand {} verts, fold {} verts, {} duplicates unioned away ({:.1}%)",
        result
            .stats
            .comm
            .class(bgl_bfs::comm::OpClass::Expand)
            .received_verts,
        result
            .stats
            .comm
            .class(bgl_bfs::comm::OpClass::Fold)
            .received_verts,
        result.stats.comm.total_dups_eliminated(),
        result.stats.redundancy_ratio_percent()
    );

    println!("\nper-level frontier / message volume:");
    for l in &result.stats.levels {
        println!(
            "  level {:>2}: frontier {:>7}, expand {:>8}, fold {:>8}",
            l.level, l.frontier, l.expand_received, l.fold_received
        );
    }
}
