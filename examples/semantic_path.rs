//! Semantic-graph relationship search — the paper's motivating
//! application ("the nature of the relationship between two vertices in
//! a semantic graph ... can be determined by the shortest path between
//! them using BFS", §1).
//!
//! Two synthetic "entities" are related through a large random semantic
//! graph; we find their relationship distance three ways and compare
//! the work:
//!
//! 1. uni-directional distributed BFS, full traversal;
//! 2. uni-directional BFS that stops at the target;
//! 3. bi-directional BFS (§2.3).
//!
//! ```sh
//! cargo run --release --example semantic_path
//! ```

use bgl_bfs::core::{bfs2d, bidir};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

fn main() {
    // A semantic graph: 200k entities, ~12 relationships each.
    let spec = GraphSpec::poisson(200_000, 12.0, 7);
    let grid = ProcessorGrid::new(8, 8);
    let graph = DistGraph::build(spec, grid);

    let entity_a = 12_345u64;
    let entity_b = 181_818u64;
    println!(
        "how are entity {entity_a} and entity {entity_b} related in a \
         {}-vertex semantic graph?\n",
        spec.n
    );

    // 1. Full traversal (answers distance to *every* entity).
    let mut world = SimWorld::bluegene(grid);
    let full = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), entity_a);
    let d_full = full.levels[entity_b as usize];
    println!(
        "full traversal       : distance {d_full}, {:>9} verts moved, {:.3} ms simulated",
        full.stats.total_received(),
        full.stats.sim_time * 1e3
    );

    // 2. Early-exit uni-directional search.
    let mut world = SimWorld::bluegene(grid);
    let uni = bfs2d::run(
        &graph,
        &mut world,
        &BfsConfig::paper_optimized().with_target(entity_b),
        entity_a,
    );
    println!(
        "uni-directional      : distance {}, {:>9} verts moved, {:.3} ms simulated",
        uni.target_level.expect("entities are connected"),
        uni.stats.total_received(),
        uni.stats.sim_time * 1e3
    );

    // 3. Bi-directional search from both entities.
    let mut world = SimWorld::bluegene(grid);
    let bi = bidir::run(
        &graph,
        &mut world,
        &BfsConfig::paper_optimized(),
        entity_a,
        entity_b,
    );
    println!(
        "bi-directional (§2.3): distance {}, {:>9} verts moved, {:.3} ms simulated",
        bi.distance.expect("entities are connected"),
        bi.stats.total_received(),
        bi.stats.sim_time * 1e3
    );

    assert_eq!(Some(d_full), uni.target_level);
    assert_eq!(Some(d_full), bi.distance);

    let saving =
        100.0 * (1.0 - bi.stats.total_received() as f64 / uni.stats.total_received() as f64);
    println!(
        "\nbi-directional search moved {saving:.1}% less volume than the \
         uni-directional search (paper: \"orders of magnitude smaller\" per \
         processor in the worst case)."
    );
}
