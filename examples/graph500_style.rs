//! Graph500-style benchmark kernel on the simulated machine.
//!
//! The paper's 2D BFS is a direct ancestor of the Graph500 reference
//! implementations. This example runs the benchmark's shape: build one
//! graph, run BFS from a set of pseudo-random sources, validate each
//! search against the sequential oracle, and report TEPS (traversed
//! edges per second — here per *simulated* BlueGene/L second).
//!
//! Both the benchmark's R-MAT workload and the paper's Poisson workload
//! are run, showing how the skewed degrees hurt the 2D partition's load
//! balance.
//!
//! ```sh
//! cargo run --release --example graph500_style
//! ```

use bgl_bfs::core::{bfs2d, reference};
use bgl_bfs::graph::{degrees, DegreeStats};
use bgl_bfs::{BfsConfig, DistGraph, GraphSpec, ProcessorGrid, SimWorld};

fn run_kernel(name: &str, spec: GraphSpec, grid: ProcessorGrid, num_sources: u64) {
    println!(
        "— {name}: n = {}, k = {}, grid {}x{}",
        spec.n,
        spec.avg_degree,
        grid.rows(),
        grid.cols()
    );
    let graph = DistGraph::build(spec, grid);
    let adj = bgl_bfs::graph::dist::adjacency(&spec);
    let deg = DegreeStats::from_degrees(&degrees(&graph));
    println!(
        "  degrees: mean {:.1}, max {}, dispersion {:.1}",
        deg.mean,
        deg.max,
        deg.dispersion()
    );

    let mut teps_values = Vec::new();
    for i in 0..num_sources {
        let source = (i * 2 + 1) * spec.n / (2 * num_sources);
        let mut world = SimWorld::bluegene(grid);
        let r = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), source);

        // Validation pass (Graph500 requires it).
        let expect = reference::bfs_levels(&adj, source);
        assert_eq!(r.levels, expect, "validation failed for source {source}");

        // Edges traversed = sum of degrees of reached vertices (each
        // adjacency entry scanned once thanks to the sent cache).
        let edges: u64 = r
            .levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l != reference::UNREACHED)
            .map(|(v, _)| adj[v].len() as u64)
            .sum();
        teps_values.push(r.stats.teps(edges));
    }
    teps_values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = teps_values.first().unwrap();
    let med = teps_values[teps_values.len() / 2];
    let max = teps_values.last().unwrap();
    println!(
        "  simulated TEPS over {num_sources} sources: min {:.2e}, median {med:.2e}, max {:.2e}\n",
        min, max
    );
}

fn main() {
    let grid = ProcessorGrid::new(8, 8);
    println!("Graph500-style kernel on a simulated 64-node BlueGene/L partition\n");
    run_kernel(
        "Poisson (the paper's workload)",
        GraphSpec::poisson(1 << 16, 16.0, 42),
        grid,
        8,
    );
    run_kernel(
        "R-MAT scale 16 (Graph500 workload)",
        GraphSpec::rmat(1 << 16, 16.0, 42),
        grid,
        8,
    );
    println!(
        "R-MAT's skewed degrees concentrate edges on a few block rows, so the same \
         2D partition balances worse — exactly the gap later work (CombBLAS, \
         direction-optimizing BFS) addressed."
    );
}
