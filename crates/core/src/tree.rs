//! BFS tree construction: Algorithm 2 with parent tracking.
//!
//! The paper's BFS labels vertices with levels only — its messages are
//! bare vertex indices. Descendant systems (notably Graph500, which
//! grew out of this algorithm) require the **parent array**: for each
//! reached vertex, a neighbor one level closer to the source. This
//! module extends the 2D fold with `(vertex, parent)` pairs:
//!
//! * expand is unchanged (frontier vertices to the processor-column);
//! * discovery emits pairs — the discovering frontier vertex is the
//!   proposed parent;
//! * the fold is a direct targeted all-to-all of pairs (en-route union
//!   would need a keyed reduction; the per-vertex tie-break happens at
//!   the owner, which keeps the smallest proposed parent so results are
//!   deterministic and engine-independent);
//! * absorb labels the vertex and records the winning parent.
//!
//! Message volume doubles relative to the levels-only BFS (two words
//! per discovered vertex) — the cost Graph500 implementations actually
//! pay, measurable here via the usual statistics.

use crate::config::BfsConfig;
use crate::reference::UNREACHED;
use crate::stats::{LevelStats, RunStats};
use bgl_comm::collectives::{alltoall::alltoallv, Groups};
use bgl_comm::{CommError, OpClass, SimWorld, Vert};
use bgl_graph::{DistGraph, RankGraph, TwoDPartition, Vertex};

/// Parent label meaning "no parent" (unreached, or the source itself
/// uses its own id).
pub const NO_PARENT: u64 = u64::MAX;

/// Result of a tree-building BFS.
#[derive(Debug, Clone)]
pub struct TreeResult {
    /// Global level labels.
    pub levels: Vec<u32>,
    /// Global parent labels; `parent[source] == source`,
    /// [`NO_PARENT`] where unreached.
    pub parents: Vec<u64>,
    /// Run statistics.
    pub stats: RunStats,
}

struct TreeRankState<'g> {
    rg: &'g RankGraph,
    partition: TwoDPartition,
    levels: Vec<u32>,
    parents: Vec<u64>,
    frontier: Vec<Vertex>,
    sent: Vec<bool>,
    probes: u64,
}

impl<'g> TreeRankState<'g> {
    fn new(rg: &'g RankGraph, partition: TwoDPartition, use_sent: bool) -> Self {
        Self {
            rg,
            partition,
            levels: vec![UNREACHED; rg.owned_len()],
            parents: vec![NO_PARENT; rg.owned_len()],
            frontier: Vec::new(),
            sent: if use_sent {
                vec![false; rg.edges.num_row_ids()]
            } else {
                Vec::new()
            },
            probes: 0,
        }
    }

    /// Discovery emitting `(u, parent)` pairs per destination grid
    /// column, flat-encoded `[u0, p0, u1, p1, …]`.
    fn discover_pairs(&mut self, fbar_lists: &[&[Vert]], cols: usize) -> Vec<Vec<Vert>> {
        let mut blocks: Vec<Vec<Vert>> = vec![Vec::new(); cols];
        for list in fbar_lists {
            for &v in *list {
                self.probes += 1;
                let Some(ci) = self.rg.edges.col_local(v) else {
                    continue;
                };
                for &u in self.rg.edges.neighbors_by_local(ci) {
                    self.probes += 1;
                    if !self.sent.is_empty() {
                        let rl = self
                            .rg
                            .edges
                            .row_local(u)
                            .expect("edge-list vertex must be row-indexed") // bgl-lint: allow(r1, reason = "CSR construction row-indexes every edge endpoint; a miss is a partitioning bug")
                            as usize;
                        if self.sent[rl] {
                            continue;
                        }
                        self.sent[rl] = true;
                    }
                    let block = &mut blocks[self.partition.block_col_of(u)];
                    block.push(u);
                    block.push(v);
                }
            }
        }
        blocks
    }

    /// Absorb `(u, parent)` pairs; smallest proposed parent wins ties
    /// within a level.
    fn absorb_pairs(&mut self, lists: &[&[Vert]], next_level: u32) {
        let mut fresh: Vec<Vertex> = Vec::new();
        for list in lists {
            debug_assert_eq!(list.len() % 2, 0, "pair payload must have even length");
            for pair in list.chunks_exact(2) {
                let (u, parent) = (pair[0], pair[1]);
                self.probes += 1;
                let off = self
                    .rg
                    .owned_local(u)
                    .expect("fold delivered a vertex to a non-owner"); // bgl-lint: allow(r1, reason = "fold routes by block_col_of, so delivery to a non-owner is a partitioning bug")
                if self.levels[off] == UNREACHED {
                    self.levels[off] = next_level;
                    self.parents[off] = parent;
                    fresh.push(u);
                } else if self.levels[off] == next_level && parent < self.parents[off] {
                    // Same-level duplicate from another discoverer:
                    // deterministic min-parent tie-break.
                    self.parents[off] = parent;
                }
            }
        }
        fresh.sort_unstable();
        fresh.dedup();
        self.frontier = fresh;
    }

    fn expand_sends(&self, grid: bgl_comm::ProcessorGrid) -> Vec<(usize, Vec<Vert>)> {
        let (_, j) = grid.position_of(self.rg.rank);
        let mut per_row: Vec<Vec<Vert>> = vec![Vec::new(); grid.rows()];
        for &v in &self.frontier {
            let off = (v - self.rg.owned.start) as usize;
            for &i2 in &self.rg.expand_targets[off] {
                per_row[i2 as usize].push(v);
            }
        }
        per_row
            .into_iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(i2, l)| (grid.rank_of(i2, j), l))
            .collect()
    }
}

/// Run a tree-building BFS from `source`. Only the `sent_neighbors` and
/// `max_levels` fields of `config` apply (the fold is always the direct
/// targeted all-to-all — see module docs).
///
/// Panics on a communication fault — tree construction is meant for
/// fault-free worlds; use [`try_run_tree`] to handle faults.
pub fn run_tree(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> TreeResult {
    try_run_tree(graph, world, config, source).unwrap_or_else(|e| {
        // bgl-lint: allow(r1, reason = "documented infallible convenience wrapper; fault-injecting callers use try_run_tree")
        panic!("communication fault during tree construction: {e} (use try_run_tree)")
    })
}

/// [`run_tree`] with communication faults surfaced as typed errors.
pub fn try_run_tree(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> Result<TreeResult, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert!(source < graph.spec.n, "source out of range");
    let p = grid.len();
    let row_groups = Groups::rows_of(grid);
    let col_groups = Groups::cols_of(grid);

    let mut states: Vec<TreeRankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| TreeRankState::new(rg, graph.partition, config.sent_neighbors))
        .collect();
    {
        let owner = graph.partition.owner_of(source);
        let st = &mut states[owner];
        // bgl-lint: allow(r1, reason = "st is states[owner_of(source)], so the owner lookup cannot miss")
        let off = st.rg.owned_local(source).unwrap();
        st.levels[off] = 0;
        st.parents[off] = source;
        st.frontier = vec![source];
    }

    let mut level_records = Vec::new();
    let mut level: u32 = 0;
    loop {
        if config.max_levels > 0 && level >= config.max_levels {
            break;
        }
        let time_at_start = world.time();
        let comm_at_start = world.comm_time();
        let codec_at_start = world.codec_time();
        let comm_snapshot = world.stats.clone();

        let sizes: Vec<u64> = states.iter().map(|s| s.frontier.len() as u64).collect();
        let global_frontier = world.allreduce_sum(&sizes);
        if global_frontier == 0 {
            break;
        }

        // Expand (targeted, unchanged).
        let sends: Vec<Vec<(usize, Vec<Vert>)>> =
            states.iter().map(|s| s.expand_sends(grid)).collect();
        let fbar: Vec<Vec<Vec<Vert>>> = alltoallv(world, OpClass::Expand, &col_groups, sends)?
            .into_iter()
            .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
            .collect();

        // Discover pairs + fold them directly.
        let blocks: Vec<Vec<Vec<Vert>>> = states
            .iter_mut()
            .zip(&fbar)
            .map(|(s, lists)| {
                let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
                s.discover_pairs(&refs, grid.cols())
            })
            .collect();
        let fold_sends: Vec<Vec<(usize, Vec<Vert>)>> = blocks
            .into_iter()
            .enumerate()
            .map(|(rank, bs)| {
                let i = grid.row_of(rank);
                bs.into_iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(m, b)| (grid.rank_of(i, m), b))
                    .collect()
            })
            .collect();
        let nbar: Vec<Vec<Vec<Vert>>> = alltoallv(world, OpClass::Fold, &row_groups, fold_sends)?
            .into_iter()
            .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
            .collect();

        for (s, lists) in states.iter_mut().zip(&nbar) {
            let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
            s.absorb_pairs(&refs, level + 1);
        }
        let probes: Vec<u64> = states
            .iter_mut()
            .map(|s| std::mem::take(&mut s.probes))
            .collect();
        world.hash_phase(&probes);

        let delta = world.stats.minus(&comm_snapshot);
        level_records.push(LevelStats {
            level,
            frontier: global_frontier,
            expand_received: delta.class(OpClass::Expand).received_verts,
            fold_received: delta.class(OpClass::Fold).received_verts,
            dups_eliminated: delta.total_dups_eliminated(),
            sim_time: world.time() - time_at_start,
            comm_time: world.comm_time() - comm_at_start,
            list_unions: delta.setops.list_unions,
            bitmap_unions: delta.setops.bitmap_unions,
            densify_switches: delta.setops.densify_switches,
            logical_bytes: delta.total_logical_bytes(),
            wire_bytes: delta.total_wire_bytes(),
            codec_time: world.codec_time() - codec_at_start,
            // The BFS-tree engine is top-down only.
            ..LevelStats::default()
        });
        level += 1;
    }

    let n = graph.spec.n as usize;
    let mut levels = vec![UNREACHED; n];
    let mut parents = vec![NO_PARENT; n];
    let mut reached = 0u64;
    for st in &states {
        let start = st.rg.owned.start as usize;
        levels[start..start + st.levels.len()].copy_from_slice(&st.levels);
        parents[start..start + st.parents.len()].copy_from_slice(&st.parents);
        reached += st.levels.iter().filter(|&&l| l != UNREACHED).count() as u64;
    }
    Ok(TreeResult {
        levels,
        parents,
        stats: RunStats {
            levels: level_records,
            sim_time: world.time(),
            comm_time: world.comm_time(),
            compute_time: world.compute_time(),
            codec_time: world.codec_time(),
            reached,
            comm: world.stats.clone(),
            p,
        },
    })
}

/// Graph500-style tree validation: levels are BFS distances, every
/// non-source reached vertex's parent is a neighbor exactly one level
/// up, and the source is its own parent.
pub fn validate_tree(
    adj: &[Vec<Vertex>],
    source: Vertex,
    levels: &[u32],
    parents: &[u64],
) -> Result<(), String> {
    if levels[source as usize] != 0 {
        return Err("source level is not 0".into());
    }
    if parents[source as usize] != source {
        return Err("source is not its own parent".into());
    }
    for v in 0..levels.len() {
        let (l, p) = (levels[v], parents[v]);
        match (l, p) {
            (UNREACHED, NO_PARENT) => {}
            (UNREACHED, _) => return Err(format!("unreached vertex {v} has a parent")),
            (_, NO_PARENT) => return Err(format!("reached vertex {v} lacks a parent")),
            (0, _) => {
                if v as Vertex != source {
                    return Err(format!("non-source vertex {v} at level 0"));
                }
            }
            (l, p) => {
                if levels[p as usize] != l - 1 {
                    return Err(format!(
                        "vertex {v} (level {l}) has parent {p} at level {}",
                        levels[p as usize]
                    ));
                }
                if !adj[v].contains(&p) {
                    return Err(format!("parent {p} of {v} is not a neighbor"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bgl_comm::ProcessorGrid;
    use bgl_graph::GraphSpec;

    fn run_case(n: u64, k: f64, seed: u64, r: usize, c: usize, source: Vertex) {
        let spec = GraphSpec::poisson(n, k, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_graph::dist::adjacency(&spec);
        let mut world = SimWorld::bluegene(grid);
        let tree = run_tree(&graph, &mut world, &BfsConfig::default(), source);
        assert_eq!(
            tree.levels,
            reference::bfs_levels(&adj, source),
            "levels must match oracle"
        );
        validate_tree(&adj, source, &tree.levels, &tree.parents)
            .unwrap_or_else(|e| panic!("invalid tree ({r}x{c}): {e}"));
    }

    #[test]
    fn trees_valid_across_grids() {
        for (r, c) in [(1, 1), (1, 4), (4, 1), (2, 3), (3, 3)] {
            run_case(400, 6.0, 17, r, c, 0);
        }
    }

    #[test]
    fn trees_valid_on_sparse_graph() {
        run_case(500, 2.0, 23, 2, 2, 7);
    }

    #[test]
    fn trees_valid_without_sent_cache() {
        let spec = GraphSpec::poisson(300, 8.0, 5);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_graph::dist::adjacency(&spec);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            sent_neighbors: false,
            ..BfsConfig::default()
        };
        let tree = run_tree(&graph, &mut world, &config, 0);
        validate_tree(&adj, 0, &tree.levels, &tree.parents).unwrap();
    }

    #[test]
    fn parent_choice_is_deterministic_min() {
        // Running twice gives identical parents; parents are minimal
        // among same-level neighbors actually adjacent to the vertex.
        let spec = GraphSpec::poisson(300, 12.0, 9);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut w1 = SimWorld::bluegene(grid);
        let a = run_tree(&graph, &mut w1, &BfsConfig::default(), 1);
        let mut w2 = SimWorld::bluegene(grid);
        let b = run_tree(&graph, &mut w2, &BfsConfig::default(), 1);
        assert_eq!(a.parents, b.parents);
    }

    #[test]
    fn pair_messages_double_fold_volume() {
        let spec = GraphSpec::poisson(600, 8.0, 3);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);

        let mut w_tree = SimWorld::bluegene(grid);
        let tree = run_tree(&graph, &mut w_tree, &BfsConfig::default(), 0);
        let mut w_plain = SimWorld::bluegene(grid);
        let plain = crate::bfs2d::run(&graph, &mut w_plain, &BfsConfig::baseline_alltoall(), 0);

        assert_eq!(tree.levels, plain.levels);
        let f_tree = tree.stats.comm.class(OpClass::Fold).received_verts;
        let f_plain = plain.stats.comm.class(OpClass::Fold).received_verts;
        assert_eq!(f_tree, 2 * f_plain, "pairs are exactly two words each");
    }

    #[test]
    fn validate_tree_rejects_corruption() {
        let spec = GraphSpec::poisson(200, 6.0, 2);
        let grid = ProcessorGrid::new(1, 2);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_graph::dist::adjacency(&spec);
        let mut world = SimWorld::bluegene(grid);
        let tree = run_tree(&graph, &mut world, &BfsConfig::default(), 0);
        validate_tree(&adj, 0, &tree.levels, &tree.parents).unwrap();

        // Corrupt a parent pointer.
        let victim = (0..200usize)
            .find(|&v| tree.levels[v] >= 2 && tree.levels[v] != UNREACHED)
            .unwrap();
        let mut bad = tree.parents.clone();
        bad[victim] = 0; // level-0 source is not one level up from level>=2
        assert!(validate_tree(&adj, 0, &tree.levels, &bad).is_err());

        // Corrupt a level.
        let mut bad_levels = tree.levels.clone();
        bad_levels[victim] = 0;
        assert!(validate_tree(&adj, 0, &bad_levels, &tree.parents).is_err());
    }
}
