//! The 2D BFS on the real multi-threaded SPMD runtime.
//!
//! One OS thread per rank drives the *same* per-rank state machine as
//! the superstep simulator (targeted expand, direct all-to-all fold),
//! with genuine concurrent message passing. Exists to validate the
//! simulator against a real parallel execution and to power examples
//! that want actual parallelism; no cost model applies.

use crate::reference::UNREACHED;
use crate::state::RankState;
use bgl_comm::threaded::ThreadedWorld;
use bgl_comm::Vert;
use bgl_graph::{DistGraph, Vertex};

/// Run a BFS from `source` using one thread per rank. Returns the global
/// level array.
pub fn run_threaded(graph: &DistGraph, source: Vertex, use_sent: bool) -> Vec<u32> {
    let grid = graph.grid();
    assert!(source < graph.spec.n);

    let per_rank = ThreadedWorld::run(grid, |ctx| {
        let rank = ctx.rank();
        let mut st = RankState::new(&graph.ranks[rank], graph.partition, use_sent);
        st.init_source(source);

        let mut level: u32 = 0;
        loop {
            let global_frontier = ctx.allreduce_sum(st.frontier_len());
            if global_frontier == 0 {
                break;
            }
            // Expand (targeted) — one world round.
            let sends: Vec<(usize, Vec<Vert>)> = st.expand_sends_targeted();
            let fbar = ctx.exchange(sends);
            let fbar_refs: Vec<&[Vert]> =
                fbar.iter().map(|(_, pl)| pl.as_slice()).collect();
            // Discover + fold (direct all-to-all) — one world round.
            let blocks = st.discover(&fbar_refs);
            let i = grid.row_of(rank);
            let sends: Vec<(usize, Vec<Vert>)> = blocks
                .into_iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .map(|(m, b)| (grid.rank_of(i, m), b))
                .collect();
            let nbar = ctx.exchange(sends);
            let nbar_refs: Vec<&[Vert]> =
                nbar.iter().map(|(_, pl)| pl.as_slice()).collect();
            st.absorb(&nbar_refs, level + 1);
            level += 1;
        }
        (st.rank_graph().owned.start, st.levels)
    });

    let mut levels = vec![UNREACHED; graph.spec.n as usize];
    for (start, local) in per_rank {
        let s = start as usize;
        levels[s..s + local.len()].copy_from_slice(&local);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BfsConfig;
    use crate::reference;
    use bgl_comm::{ProcessorGrid, SimWorld};
    use bgl_graph::GraphSpec;

    #[test]
    fn threaded_matches_oracle() {
        let spec = GraphSpec::poisson(300, 6.0, 61);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        for (r, c) in [(1, 1), (2, 2), (2, 3), (4, 2)] {
            let graph = DistGraph::build(spec, ProcessorGrid::new(r, c));
            let got = run_threaded(&graph, 0, true);
            assert_eq!(got, expect, "grid {r}x{c}");
        }
    }

    #[test]
    fn threaded_matches_simulator() {
        // Engine cross-validation: identical level labels from the real
        // message-passing runtime and the superstep simulator.
        let spec = GraphSpec::poisson(500, 5.0, 71);
        let grid = ProcessorGrid::new(3, 3);
        let graph = DistGraph::build(spec, grid);
        let threaded = run_threaded(&graph, 7, true);
        let mut world = SimWorld::bluegene(grid);
        let sim = crate::bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 7);
        assert_eq!(threaded, sim.levels);
    }

    #[test]
    fn threaded_without_sent_cache() {
        let spec = GraphSpec::poisson(200, 5.0, 81);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 3);
        let graph = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        assert_eq!(run_threaded(&graph, 3, false), expect);
    }
}
