//! The 2D BFS on the real multi-threaded SPMD runtime.
//!
//! One OS thread per rank drives the *same* per-rank state machine as
//! the superstep simulator (targeted expand, direct all-to-all fold),
//! with genuine concurrent message passing. Exists to validate the
//! simulator against a real parallel execution and to power examples
//! that want actual parallelism; no cost model applies.
//!
//! [`run_threaded_with_faults`] drives the same loop under a
//! [`FaultPlan`]: lossy exchanges retransmit (counted per rank in
//! [`FaultStats`]), and a scheduled rank death aborts every rank at the
//! same superstep with a typed [`CommError`]. Because both runtimes
//! derive faults from the same pure hash of `(seed, class, round, from,
//! to)`, a run here injects the *same* fault schedule as the simulator —
//! the cross-runtime determinism the fault tests assert.

use crate::config::{DirectionMode, DirectionPolicy};
use crate::reference::UNREACHED;
use crate::state::RankState;
use crate::stats::LevelDirection;
use bgl_comm::threaded::ThreadedWorld;
use bgl_comm::{
    CommError, FaultPlan, FaultStats, OpClass, Phase, Vert, VertSet, VsetPolicy, WireCount,
    WirePolicy,
};
use bgl_graph::{DistGraph, Vertex};
use bgl_trace::{TraceBuffer, TraceDetail, DEFAULT_RING_CAPACITY};

/// What one rank of a faulty threaded run produced.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// First global vertex owned by this rank.
    pub owned_start: Vertex,
    /// Level labels for the owned range.
    pub levels: Vec<u32>,
    /// Faults this rank observed on its outgoing messages.
    pub faults: FaultStats,
    /// Wire-buffer allocations saved by the rank's scratch pool.
    pub scratch_reuses: u64,
    /// Sender-side expand byte accounting (logical vs post-codec wire
    /// bytes; identical with the codec off).
    pub expand_wire: WireCount,
    /// Sender-side fold byte accounting.
    pub fold_wire: WireCount,
    /// The direction each executed level ran. Derived from globally
    /// allreduced counts, so every rank's vector is identical — and
    /// must equal the simulator's per-level record for the same
    /// configuration.
    pub directions: Vec<LevelDirection>,
    /// This rank's trace recorder (only for traced runs).
    pub trace: Option<TraceBuffer>,
}

/// A traced threaded run: the global level labels plus one merged trace
/// buffer (every rank's recorder assembled onto its own track).
#[derive(Debug, Clone)]
pub struct TracedThreadedRun {
    /// Global level labels, as [`run_threaded`] returns.
    pub levels: Vec<u32>,
    /// The merged trace: rank `r`'s events on track `r`.
    pub buffer: TraceBuffer,
}

/// Run a BFS from `source` using one thread per rank. Returns the global
/// level array.
pub fn run_threaded(graph: &DistGraph, source: Vertex, use_sent: bool) -> Vec<u32> {
    let per_rank = run_threaded_with_faults(graph, source, use_sent, FaultPlan::none());
    let mut levels = vec![UNREACHED; graph.spec.n as usize];
    for out in per_rank {
        // bgl-lint: allow(r1, reason = "FaultPlan::none() means no rank can die or time out, so every per-rank result is Ok")
        let out = out.expect("fault-free threaded run cannot fail");
        let s = out.owned_start as usize;
        levels[s..s + out.levels.len()].copy_from_slice(&out.levels);
    }
    levels
}

/// [`run_threaded`] with per-rank tracing enabled (fault-free). Each
/// rank records wall-clock spans for the same collective phases the
/// simulator traces — termination, expand, discover, fold, absorb and
/// the whole level — so the two runtimes' traces are comparable span
/// set against span set.
pub fn run_threaded_traced(
    graph: &DistGraph,
    source: Vertex,
    use_sent: bool,
    detail: TraceDetail,
) -> TracedThreadedRun {
    let per_rank = run_threaded_inner(
        graph,
        source,
        use_sent,
        FaultPlan::none(),
        WirePolicy::raw(),
        Some(detail),
        DirectionPolicy::top_down(),
    );
    let p = graph.grid().len();
    let mut buffer = TraceBuffer::new(p, DEFAULT_RING_CAPACITY);
    let mut levels = vec![UNREACHED; graph.spec.n as usize];
    for (rank, out) in per_rank.into_iter().enumerate() {
        // bgl-lint: allow(r1, reason = "FaultPlan::none() means no rank can die or time out, so every per-rank result is Ok")
        let out = out.expect("fault-free threaded run cannot fail");
        let s = out.owned_start as usize;
        levels[s..s + out.levels.len()].copy_from_slice(&out.levels);
        if let Some(buf) = &out.trace {
            buffer.absorb_rank(rank, buf);
        }
    }
    TracedThreadedRun { levels, buffer }
}

/// [`run_threaded`] under a deterministic [`FaultPlan`]. Each rank
/// reports its own outcome: the labels it computed plus its fault
/// counters, or the typed error that aborted it.
pub fn run_threaded_with_faults(
    graph: &DistGraph,
    source: Vertex,
    use_sent: bool,
    plan: FaultPlan,
) -> Vec<Result<RankOutcome, CommError>> {
    run_threaded_inner(
        graph,
        source,
        use_sent,
        plan,
        WirePolicy::raw(),
        None,
        DirectionPolicy::top_down(),
    )
}

/// [`run_threaded_with_faults`] with a wire-codec policy: every rank
/// encodes its expand/fold payloads to the same adaptive wire frames
/// the simulator charges to its cost model, and reports its sender-side
/// logical/wire byte counters in the [`RankOutcome`]. Composes with
/// fault plans — retransmitted messages carry the same encoded frames.
pub fn run_threaded_with_wire(
    graph: &DistGraph,
    source: Vertex,
    use_sent: bool,
    plan: FaultPlan,
    wire: WirePolicy,
) -> Vec<Result<RankOutcome, CommError>> {
    run_threaded_inner(
        graph,
        source,
        use_sent,
        plan,
        wire,
        None,
        DirectionPolicy::top_down(),
    )
}

/// [`run_threaded_with_wire`] plus a [`DirectionPolicy`]: levels pick
/// top-down or bottom-up from the same 3-word allreduce and integer
/// thresholds as the simulator, so the per-level direction vector (and
/// the level labels) must match the simulator's bit for bit. Bottom-up
/// levels replace the targeted expand with a neighbour-only frontier
/// ring over the processor column — the threaded mirror of
/// `bgl_comm::collectives::frontier`, with the same
/// empty-pieces-are-not-sent convention so fault schedules stay
/// aligned across runtimes.
pub fn run_threaded_direction(
    graph: &DistGraph,
    source: Vertex,
    use_sent: bool,
    plan: FaultPlan,
    wire: WirePolicy,
    direction: DirectionPolicy,
) -> Vec<Result<RankOutcome, CommError>> {
    run_threaded_inner(graph, source, use_sent, plan, wire, None, direction)
}

#[allow(clippy::too_many_arguments)]
fn run_threaded_inner(
    graph: &DistGraph,
    source: Vertex,
    use_sent: bool,
    plan: FaultPlan,
    wire: WirePolicy,
    trace: Option<TraceDetail>,
    direction: DirectionPolicy,
) -> Vec<Result<RankOutcome, CommError>> {
    let grid = graph.grid();
    assert!(source < graph.spec.n);

    ThreadedWorld::run_with(grid, plan, |ctx| -> Result<RankOutcome, CommError> {
        let rank = ctx.rank();
        ctx.set_wire_policy(wire);
        if let Some(detail) = trace {
            ctx.enable_trace(detail);
        }
        let mut st = RankState::new(&graph.ranks[rank], graph.partition, use_sent);
        st.init_source(source);
        let mut directions: Vec<LevelDirection> = Vec::new();

        let mut level: u32 = 0;
        loop {
            let t_level = ctx.trace_now();
            // Termination allreduce; widened to 3 words when direction
            // optimization is on (same single control round).
            let (global_frontier, bottom_up) = if direction.mode == DirectionMode::TopDown {
                (ctx.allreduce_sum(st.frontier_len())?, false)
            } else {
                let (gf, mf, mu) =
                    ctx.allreduce_sum3(st.frontier_len(), st.frontier_degree(), st.unexplored())?;
                let bu = direction.wants_bottom_up(gf, mf, mu, graph.spec.n, grid.rows() as u64);
                (gf, bu)
            };
            ctx.trace_span(Phase::Termination, level, t_level);
            if global_frontier == 0 {
                break;
            }
            let blocks = if bottom_up {
                // Frontier gather: (R-1)-step neighbour ring within the
                // processor column, unioning pieces into a hybrid set.
                // Empty pieces are not sent — absence of a message is
                // the empty piece, exactly as in the simulator.
                let t_gather = ctx.trace_now();
                let (i, j) = grid.position_of(rank);
                let succ = grid.rank_of((i + 1) % grid.rows(), j);
                let policy = VsetPolicy::hybrid();
                let mut gathered = VertSet::from_sorted(st.frontier.clone());
                let mut piece: Vec<Vert> = st.frontier.clone();
                for _ in 0..grid.rows().saturating_sub(1) {
                    let sends = if piece.is_empty() {
                        Vec::new()
                    } else {
                        vec![(succ, piece.clone())]
                    };
                    let mut inbox = ctx.exchange(OpClass::Expand, sends)?;
                    debug_assert!(inbox.len() <= 1, "ring delivers at most one piece");
                    if let Some((_, pl)) = inbox.pop() {
                        let dups = gathered.union_in(&pl, &policy);
                        debug_assert_eq!(dups, 0, "owned frontiers are disjoint");
                        piece = pl;
                    } else {
                        piece.clear();
                    }
                }
                ctx.trace_span(Phase::Gather, level, t_gather);
                let t_discover = ctx.trace_now();
                let blocks = st.discover_bottom_up(&gathered);
                ctx.trace_span(Phase::Discover, level, t_discover);
                blocks
            } else {
                // Expand (targeted) — one world round.
                let t_expand = ctx.trace_now();
                let sends: Vec<(usize, Vec<Vert>)> = st.expand_sends_targeted();
                let fbar = ctx.exchange(OpClass::Expand, sends)?;
                ctx.trace_span(Phase::Expand, level, t_expand);
                let t_discover = ctx.trace_now();
                let fbar_refs: Vec<&[Vert]> = fbar.iter().map(|(_, pl)| pl.as_slice()).collect();
                let blocks = st.discover(&fbar_refs);
                drop(fbar_refs);
                ctx.trace_span(Phase::Discover, level, t_discover);
                for (_, pl) in fbar {
                    ctx.scratch_put(pl);
                }
                blocks
            };
            directions.push(if bottom_up {
                LevelDirection::BottomUp
            } else {
                LevelDirection::TopDown
            });
            // Fold (direct all-to-all) — one world round.
            let t_fold = ctx.trace_now();
            let i = grid.row_of(rank);
            let sends: Vec<(usize, Vec<Vert>)> = blocks
                .into_iter()
                .enumerate()
                .filter(|(_, b)| !b.is_empty())
                .map(|(m, b)| (grid.rank_of(i, m), b))
                .collect();
            let nbar = ctx.exchange(OpClass::Fold, sends)?;
            ctx.trace_span(Phase::Fold, level, t_fold);
            let t_absorb = ctx.trace_now();
            let nbar_refs: Vec<&[Vert]> = nbar.iter().map(|(_, pl)| pl.as_slice()).collect();
            st.absorb(&nbar_refs, level + 1);
            drop(nbar_refs);
            for (_, pl) in nbar {
                ctx.scratch_put(pl);
            }
            ctx.trace_span(Phase::Absorb, level, t_absorb);
            ctx.trace_span(Phase::Level, level, t_level);
            level += 1;
        }
        Ok(RankOutcome {
            owned_start: st.rank_graph().owned.start,
            levels: st.levels,
            scratch_reuses: ctx.scratch_reuses(),
            expand_wire: ctx.wire_count(OpClass::Expand),
            fold_wire: ctx.wire_count(OpClass::Fold),
            directions,
            faults: ctx.faults,
            trace: ctx.take_trace(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BfsConfig;
    use crate::reference;
    use bgl_comm::{ProcessorGrid, SimWorld};
    use bgl_graph::GraphSpec;

    #[test]
    fn threaded_matches_oracle() {
        let spec = GraphSpec::poisson(300, 6.0, 61);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        for (r, c) in [(1, 1), (2, 2), (2, 3), (4, 2)] {
            let graph = DistGraph::build(spec, ProcessorGrid::new(r, c));
            let got = run_threaded(&graph, 0, true);
            assert_eq!(got, expect, "grid {r}x{c}");
        }
    }

    #[test]
    fn threaded_matches_simulator() {
        // Engine cross-validation: identical level labels from the real
        // message-passing runtime and the superstep simulator.
        let spec = GraphSpec::poisson(500, 5.0, 71);
        let grid = ProcessorGrid::new(3, 3);
        let graph = DistGraph::build(spec, grid);
        let threaded = run_threaded(&graph, 7, true);
        let mut world = SimWorld::bluegene(grid);
        let sim = crate::bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 7);
        assert_eq!(threaded, sim.levels);
    }

    #[test]
    fn threaded_ranks_reuse_scratch_buffers() {
        // A multi-level run must recycle received wire buffers through
        // the per-rank pool instead of allocating fresh ones each round.
        let spec = GraphSpec::poisson(400, 6.0, 51);
        let graph = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        let outs = run_threaded_with_faults(&graph, 0, true, FaultPlan::none());
        let total: u64 = outs
            .into_iter()
            .map(|o| o.expect("fault-free").scratch_reuses)
            .sum();
        assert!(total > 0, "expected pooled buffer reuse across levels");
    }

    #[test]
    fn threaded_without_sent_cache() {
        let spec = GraphSpec::poisson(200, 5.0, 81);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 3);
        let graph = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        assert_eq!(run_threaded(&graph, 3, false), expect);
    }

    #[test]
    fn lossy_threaded_matches_oracle_and_sim_fault_schedule() {
        // Identical (seed, FaultPlan) must produce the same fault
        // schedule — and therefore the same retransmission counters —
        // in the threaded runtime and the simulator, and the lossy run
        // must still produce oracle-exact levels in both.
        let spec = GraphSpec::poisson(300, 6.0, 91);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(17)
            .with_drop_prob(0.2)
            .with_truncate_prob(0.05)
            .with_duplicate_prob(0.05);

        let outs = run_threaded_with_faults(&graph, 0, true, plan.clone());
        let mut levels = vec![UNREACHED; graph.spec.n as usize];
        let mut total = FaultStats::default();
        for out in outs {
            let out = out.expect("message faults are transparent");
            let s = out.owned_start as usize;
            levels[s..s + out.levels.len()].copy_from_slice(&out.levels);
            total.drops_injected += out.faults.drops_injected;
            total.truncations_injected += out.faults.truncations_injected;
            total.duplicates_injected += out.faults.duplicates_injected;
            total.retransmissions += out.faults.retransmissions;
        }
        assert_eq!(levels, expect);
        assert!(total.retransmissions > 0);

        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let sim =
            crate::bfs2d::try_run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 0).unwrap();
        assert_eq!(sim.levels, expect);
        let sf = &sim.stats.comm.faults;
        assert_eq!(total.drops_injected, sf.drops_injected);
        assert_eq!(total.truncations_injected, sf.truncations_injected);
        assert_eq!(total.duplicates_injected, sf.duplicates_injected);
        assert_eq!(total.retransmissions, sf.retransmissions);
    }

    #[test]
    fn wire_threaded_matches_simulator_byte_for_byte() {
        // Same graph, same source, same adaptive codec policy: the
        // threaded runtime's summed sender-side logical/wire bytes must
        // equal the simulator's per-class totals exactly (the codec
        // choice is a pure function of each payload), and the labels
        // must still match the oracle.
        let spec = GraphSpec::poisson(400, 6.0, 33);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);

        let outs = run_threaded_with_wire(&graph, 0, true, FaultPlan::none(), WirePolicy::auto());
        let mut levels = vec![UNREACHED; graph.spec.n as usize];
        let mut expand = WireCount::default();
        let mut fold = WireCount::default();
        for out in outs {
            let out = out.expect("fault-free");
            let s = out.owned_start as usize;
            levels[s..s + out.levels.len()].copy_from_slice(&out.levels);
            expand.logical_bytes += out.expand_wire.logical_bytes;
            expand.wire_bytes += out.expand_wire.wire_bytes;
            fold.logical_bytes += out.fold_wire.logical_bytes;
            fold.wire_bytes += out.fold_wire.wire_bytes;
        }
        assert_eq!(levels, expect);

        let mut world = SimWorld::bluegene(grid).with_wire_policy(WirePolicy::auto());
        let sim = crate::bfs2d::run(&graph, &mut world, &BfsConfig::baseline_alltoall(), 0);
        assert_eq!(sim.levels, expect);
        let se = sim.stats.comm.class(OpClass::Expand);
        let sf = sim.stats.comm.class(OpClass::Fold);
        assert_eq!(expand.logical_bytes, se.logical_bytes);
        assert_eq!(expand.wire_bytes, se.wire_bytes);
        assert_eq!(fold.logical_bytes, sf.logical_bytes);
        assert_eq!(fold.wire_bytes, sf.wire_bytes);
        assert!(
            expand.wire_bytes + fold.wire_bytes < expand.logical_bytes + fold.logical_bytes,
            "the codec should pay on BFS traffic"
        );
    }

    #[test]
    fn threaded_direction_matches_simulator_choice_for_choice() {
        // The per-level direction is a pure function of globally
        // allreduced integers, so the threaded runtime and the
        // simulator must make the identical choice at every level —
        // and land on identical labels.
        let spec = GraphSpec::poisson(500, 8.0, 71);
        let grid = ProcessorGrid::new(3, 2);
        let graph = DistGraph::build(spec, grid);
        let config = BfsConfig {
            direction: crate::config::DirectionPolicy::adaptive(),
            ..BfsConfig::baseline_alltoall()
        };
        let mut world = SimWorld::bluegene(grid);
        let sim = crate::bfs2d::run(&graph, &mut world, &config, 0);
        let sim_dirs: Vec<LevelDirection> = sim.stats.levels.iter().map(|l| l.direction).collect();
        assert!(
            sim_dirs.contains(&LevelDirection::BottomUp),
            "expected at least one bottom-up level"
        );

        let outs = run_threaded_direction(
            &graph,
            0,
            true,
            FaultPlan::none(),
            WirePolicy::raw(),
            config.direction,
        );
        let mut levels = vec![UNREACHED; graph.spec.n as usize];
        for out in outs {
            let out = out.expect("fault-free");
            assert_eq!(out.directions, sim_dirs, "per-level direction vector");
            let s = out.owned_start as usize;
            levels[s..s + out.levels.len()].copy_from_slice(&out.levels);
        }
        assert_eq!(levels, sim.levels);
    }

    #[test]
    fn threaded_rank_death_aborts_all_ranks() {
        let spec = GraphSpec::poisson(200, 5.0, 21);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(9).kill_rank_at(2, 3);
        let outs = run_threaded_with_faults(&graph, 0, true, plan);
        assert_eq!(outs.len(), 4);
        for out in outs {
            assert_eq!(out.unwrap_err(), CommError::RankDead { rank: 2 });
        }
    }
}
