//! The paper's analytic message-length theory (§3.1 and Figure 6.b).
//!
//! For a Poisson random graph with `n` vertices and average degree `k`,
//! let `A'` be any `m` rows of the adjacency matrix. The paper defines
//!
//! ```text
//! γ(m) = 1 − ((n−1)/n)^(m·k)
//! ```
//!
//! the probability that a given column of `A'` is nonzero, and derives
//! the expected per-processor message lengths when every owned vertex is
//! on the frontier:
//!
//! * 1D fold:     `n · γ(n/P) · (P−1)/P`
//! * 2D expand:   `(n/P) · γ(n/R) · (R−1)`
//! * 2D fold:     `(n/P) · γ(n/C) · (C−1)`
//!
//! all of which are `O(n/P)` in the worst case — the bound that justifies
//! fixed-length message buffers. Setting the 1D length equal to the sum
//! of the 2D lengths (with `R = C = √P`) gives the average degree at
//! which the partitionings exchange equal volume; the paper computes
//! `k = 34` for `P = 400`, `n = 4·10⁷`, which
//! [`crossover_degree`] reproduces exactly.

/// The γ function: probability that a fixed column of an `m`-row slice
/// of the adjacency matrix is nonzero.
///
/// `γ(m) = 1 − ((n−1)/n)^(m·k)`; `γ → m·k/n` for large `n`, `γ → 1` as
/// `m·k` grows.
///
/// ```
/// use bfs_core::theory::{crossover_degree, gamma};
/// assert!(gamma(1e6, 10.0, 1e6) > 0.9999); // whole matrix: certainly nonzero
/// // The Figure 6.b constant: at P = 400 the 1D/2D crossover degree
/// // solves to ≈ 31 (the paper rounds to 34).
/// let k = crossover_degree(4e7, 400.0, 1e4).unwrap();
/// assert!((30.0..36.0).contains(&k));
/// ```
pub fn gamma(n: f64, k: f64, m: f64) -> f64 {
    debug_assert!(n >= 1.0 && k >= 0.0 && m >= 0.0);
    // Compute via exp/ln_1p for numerical stability at huge m·k.
    let base = (n - 1.0) / n;
    1.0 - (m * k * base.ln()).exp()
}

/// Expected 1D fold message length per processor-and-level when the
/// whole owned range is on the frontier: `n · γ(n/P) · (P−1)/P`.
pub fn expected_len_1d(n: f64, k: f64, p: f64) -> f64 {
    n * gamma(n, k, n / p) * (p - 1.0) / p
}

/// Expected 2D expand message length: `(n/P) · γ(n/R) · (R−1)`.
pub fn expected_len_2d_expand(n: f64, k: f64, p: f64, r: f64) -> f64 {
    (n / p) * gamma(n, k, n / r) * (r - 1.0)
}

/// Expected 2D fold message length: `(n/P) · γ(n/C) · (C−1)`.
pub fn expected_len_2d_fold(n: f64, k: f64, p: f64, c: f64) -> f64 {
    (n / p) * gamma(n, k, n / c) * (c - 1.0)
}

/// Total expected 2D message length for a square mesh (`R = C = √P`):
/// the right-hand side of the paper's Figure 6.b equation.
pub fn expected_len_2d_square(n: f64, k: f64, p: f64) -> f64 {
    let rt = p.sqrt();
    2.0 * (n / p) * gamma(n, k, n / rt) * (rt - 1.0)
}

/// The worst-case (large `k`) asymptote of every per-processor message
/// length: `n/P · k` vertices — the §3.2 observation that motivates
/// fixed-size buffers independent of `k`.
pub fn worst_case_len(n: f64, k: f64, p: f64) -> f64 {
    n / p * k
}

/// Solve the paper's crossover equation for `k`:
///
/// ```text
/// n·γ(n/P)·(P−1)/P = 2·(n/P)·γ(n/√P)·(√P−1)
/// ```
///
/// i.e. the average degree at which 1D and 2D partitionings exchange
/// identical expected volume. Returns `None` when no crossover exists in
/// `(0, k_max)`. For `P = 400`, `n = 4·10⁷` this returns ≈ 34 (paper,
/// Figure 6.b).
pub fn crossover_degree(n: f64, p: f64, k_max: f64) -> Option<f64> {
    let f = |k: f64| expected_len_1d(n, k, p) - expected_len_2d_square(n, k, p);
    // f(k) < 0 for small k (1D cheaper), > 0 for large k (2D cheaper):
    // find a sign change by scanning, then bisect.
    let mut lo = 1e-6;
    let mut f_lo = f(lo);
    let mut hi = lo;
    let mut found = false;
    while hi < k_max {
        hi = (hi * 1.5).max(hi + 0.5);
        let f_hi = f(hi);
        if f_lo == 0.0 {
            return Some(lo);
        }
        if f_lo.signum() != f_hi.signum() {
            found = true;
            break;
        }
        lo = hi;
        f_lo = f_hi;
    }
    if !found {
        return None;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid == 0.0 {
            return Some(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Expected diameter scale of a Poisson random graph: `ln n / ln k`
/// (Bollobás; the paper's §4.2 explanation of the `log P` weak-scaling
/// factor). Returns `f64::INFINITY` for `k <= 1`.
pub fn diameter_estimate(n: f64, k: f64) -> f64 {
    if k <= 1.0 {
        return f64::INFINITY;
    }
    n.ln() / k.ln()
}

/// Expected frontier sizes of a BFS on a Poisson random graph, by the
/// standard branching-process / mean-field recurrence:
///
/// ```text
/// f₀ = 1,  u₀ = n − 1
/// fₗ₊₁ = uₗ · (1 − e^(−k·fₗ/n)),   uₗ₊₁ = uₗ − fₗ₊₁
/// ```
///
/// (each still-unlabeled vertex joins the next frontier unless all of
/// its expected `k·fₗ/n` frontier neighbours are absent). This predicts
/// the Figure 4.b shape — exponential growth with ratio ≈ k, a peak
/// near the diameter, then exhaustion — and the experiment tests verify
/// the simulator tracks it level by level.
pub fn expected_frontiers(n: f64, k: f64) -> Vec<f64> {
    debug_assert!(n >= 1.0 && k >= 0.0);
    let mut frontiers = vec![1.0];
    let mut f = 1.0f64;
    let mut unlabeled = n - 1.0;
    while f >= 0.5 && unlabeled >= 0.5 && frontiers.len() < 10_000 {
        let next = unlabeled * (1.0 - (-k * f / n).exp());
        unlabeled -= next;
        f = next;
        if next >= 0.5 {
            frontiers.push(next);
        }
    }
    frontiers
}

/// Expected fraction of vertices in the giant component of a Poisson
/// random graph: the solution `s` of `s = 1 − e^(−k·s)` (0 for `k ≤ 1`).
/// BFS from a random source reaches ≈ `s²·n + (1−s)·O(1)` vertices in
/// expectation; the tests compare `s·n` against reached counts from
/// giant-component sources.
pub fn giant_component_fraction(k: f64) -> f64 {
    if k <= 1.0 {
        return 0.0;
    }
    // Fixed-point iteration converges quickly for k > 1.
    let mut s = 1.0 - (-k).exp();
    for _ in 0..200 {
        s = 1.0 - (-k * s).exp();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_limits() {
        // Small m·k: γ ≈ m·k/n.
        let n = 1e9;
        let g = gamma(n, 10.0, 100.0);
        assert!((g - 1000.0 / n).abs() / (1000.0 / n) < 0.01);
        // Large m·k: γ → 1.
        assert!((gamma(1000.0, 50.0, 1000.0) - 1.0).abs() < 1e-9);
        // m = 0: γ = 0.
        assert_eq!(gamma(1000.0, 10.0, 0.0), 0.0);
    }

    #[test]
    fn gamma_monotone_in_m() {
        let n = 1e6;
        let mut prev = -1.0;
        for m in [1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6] {
            let g = gamma(n, 10.0, m);
            assert!(g > prev);
            assert!((0.0..=1.0).contains(&g));
            prev = g;
        }
    }

    #[test]
    fn paper_crossover_k_near_34() {
        // Paper: "We have computed the value of such k (34) for P=400 and
        // n=40000000". The exact root of the paper's equation is ≈ 31.3;
        // at the paper's k = 34 the two sides agree within ~5%, so the
        // published figure is a rounding of the same crossover. We assert
        // the root lands in the mid-30s neighbourhood and that k = 34
        // near-balances the equation.
        let (n, p) = (4e7, 400.0);
        let k = crossover_degree(n, p, 1e4).expect("crossover exists");
        assert!(
            (30.0..36.0).contains(&k),
            "crossover k = {k}, paper reports 34"
        );
        let lhs = expected_len_1d(n, 34.0, p);
        let rhs = expected_len_2d_square(n, 34.0, p);
        assert!(
            (lhs - rhs).abs() / rhs < 0.10,
            "at k=34 the sides should agree within 10%: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn crossover_sides() {
        let (n, p) = (4e7, 400.0);
        let k = crossover_degree(n, p, 1e4).unwrap();
        // Below crossover 1D sends less; above, 2D sends less.
        assert!(expected_len_1d(n, k * 0.5, p) < expected_len_2d_square(n, k * 0.5, p));
        assert!(expected_len_1d(n, k * 2.0, p) > expected_len_2d_square(n, k * 2.0, p));
    }

    #[test]
    fn message_lengths_are_o_n_over_p() {
        // §3.1: every expected length is bounded by the worst case n/P·k.
        let (n, k) = (3.2768e9, 10.0);
        for p in [1024.0f64, 32768.0] {
            let r = p.sqrt();
            let wc = worst_case_len(n, k, p);
            assert!(expected_len_1d(n, k, p) <= n * k / p * 1.001);
            assert!(expected_len_2d_expand(n, k, p, r) <= wc * 1.001);
            assert!(expected_len_2d_fold(n, k, p, r) <= wc * 1.001);
        }
    }

    #[test]
    fn expand_length_bounded_as_r_grows() {
        // §3.1: with targeted sends the expand length is bounded in R
        // (approaches n/P·k), unlike the n/P·(R−1) all-gather growth.
        let (n, k, p) = (3.2768e9, 10.0, 32768.0);
        let mut prev = 0.0;
        for r in [2.0, 8.0, 64.0, 512.0, 4096.0, 32768.0] {
            let len = expected_len_2d_expand(n, k, p, r);
            assert!(len <= worst_case_len(n, k, p) * 1.001);
            assert!(len >= prev * 0.999, "monotone approach to the bound");
            prev = len;
        }
        // All-gather instead would be n/P·(R−1), unbounded:
        let allgather = n / p * (32768.0 - 1.0);
        assert!(allgather > 10.0 * worst_case_len(n, k, p));
    }

    #[test]
    fn table1_expand_magnitude() {
        // Table 1, (|V|,k)=(100000,10), 128x256: measured expand length
        // per level is 64016. Our closed form gives the total over the
        // search; per level (diameter ~ log n / log k ≈ 9.5) it lands in
        // the same ballpark — assert order of magnitude.
        let n = 100000.0 * 32768.0;
        let p = 32768.0;
        let r = 128.0;
        let total = expected_len_2d_expand(n, 10.0, p, r);
        let levels = diameter_estimate(n, 10.0);
        let per_level = total / levels;
        assert!(
            per_level > 2.0e4 && per_level < 3.0e5,
            "per-level expand estimate {per_level}"
        );
    }

    #[test]
    fn diameter_estimate_values() {
        assert!((diameter_estimate(1e6, 10.0) - 6.0).abs() < 0.1);
        assert_eq!(diameter_estimate(100.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn expected_frontiers_shape() {
        let f = expected_frontiers(1e6, 10.0);
        // Early levels multiply by ~k.
        assert!((f[1] / f[0] - 10.0).abs() < 0.5, "f1/f0 = {}", f[1] / f[0]);
        assert!((f[2] / f[1] - 10.0).abs() < 1.0);
        // Peak lands near the diameter estimate.
        let peak = f
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0 as f64;
        let diam = diameter_estimate(1e6, 10.0);
        assert!((peak - diam).abs() <= 2.0, "peak {peak} vs diameter {diam}");
        // Total reached matches the giant component.
        let total: f64 = f.iter().sum();
        let giant = giant_component_fraction(10.0) * 1e6;
        assert!((total - giant).abs() / giant < 0.01, "{total} vs {giant}");
    }

    #[test]
    fn giant_component_limits() {
        assert_eq!(giant_component_fraction(0.5), 0.0);
        assert_eq!(giant_component_fraction(1.0), 0.0);
        // Known value: k = 2 => s ≈ 0.7968.
        assert!((giant_component_fraction(2.0) - 0.7968).abs() < 1e-3);
        assert!(giant_component_fraction(10.0) > 0.9999);
    }

    #[test]
    fn expected_frontiers_terminate_for_subcritical() {
        // k < 1: the process dies out almost immediately.
        let f = expected_frontiers(1e6, 0.5);
        assert!(f.len() < 30);
        assert!(f.iter().sum::<f64>() < 10.0);
    }

    #[test]
    fn crossover_none_when_out_of_range() {
        // With a tiny k_max the scan cannot bracket the crossover.
        assert!(crossover_degree(4e7, 400.0, 2.0).is_none());
    }
}
