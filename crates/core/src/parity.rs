//! XOR parity-group checkpoints for multi-failure recovery.
//!
//! PR 1's resilience mirrored each rank's label deltas to a single buddy
//! `(rank + 1) % p` — one extra copy, so a rank and its buddy dying in
//! the same level lost the history irrecoverably. This module replaces
//! the mirror with **parity groups**: ranks are grouped into blocks of
//! `g` consecutive ranks, and each group maintains one XOR parity shard
//! over its members' append-only encoded delta logs. Any *one* death per
//! group is reconstructed exactly:
//!
//! ```text
//! log(dead) = shard ⊕ log(m₁) ⊕ log(m₂) ⊕ … ⊕ log(m_{g-1})
//! ```
//!
//! where the survivor logs come over the (faulty, retried) control
//! network and the shard comes from the last checkpoint. Storage
//! overhead is `1/g` of the mirrored state instead of a full copy, the
//! classic RAID-5 trade, and a former buddy pair dying together is
//! survivable whenever the two ranks land in different groups — or in
//! the same group only if degraded-mode restart is allowed.
//!
//! Logs are XOR-aligned at word 0: the shard's word `i` is the XOR of
//! every member's `i`-th log word, with shorter logs implicitly
//! zero-padded. [`GroupShard::absorb`] appends one encoded delta entry
//! (`[level, count, verts...]`, the exact wire framing of the recovery
//! payload) at the member's current length, so absorbing entries in
//! order makes the member's contribution equal its flattened log —
//! reconstruction then XORs survivor logs back out and truncates to the
//! dead member's recorded length.

use bgl_comm::Vert;

/// The static layout of parity groups over `p` ranks: blocks of `g`
/// consecutive ranks, with the remainder merged into the last group so
/// no group is ever smaller than `g` (a singleton group would have no
/// survivors to reconstruct from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityGroups {
    g: usize,
    p: usize,
    count: usize,
}

impl ParityGroups {
    /// Group `p` ranks into blocks of `group_size` (clamped to ≥ 2)
    /// consecutive ranks. With `p < 2 * group_size` there is a single
    /// group covering every rank.
    pub fn new(group_size: usize, p: usize) -> Self {
        let g = group_size.max(2);
        Self {
            g,
            p,
            count: (p / g).max(1),
        }
    }

    /// The nominal group size `g` (the last group may be larger).
    pub fn group_size(&self) -> usize {
        self.g
    }

    /// Number of groups.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Which group `rank` belongs to.
    pub fn group_of(&self, rank: usize) -> usize {
        (rank / self.g).min(self.count - 1)
    }

    /// The ranks of `group`, as a contiguous range.
    pub fn members(&self, group: usize) -> std::ops::Range<usize> {
        let start = group * self.g;
        let end = if group + 1 == self.count {
            self.p
        } else {
            start + self.g
        };
        start..end
    }

    /// `rank`'s index within its group (the member slot its log occupies
    /// in the group's [`GroupShard`]).
    pub fn member_index(&self, rank: usize) -> usize {
        rank - self.members(self.group_of(rank)).start
    }

    /// The other members of `rank`'s group, in rank order.
    pub fn peers(&self, rank: usize) -> impl Iterator<Item = usize> + '_ {
        self.members(self.group_of(rank))
            .filter(move |&r| r != rank)
    }
}

/// One group's XOR parity shard: the running XOR of its members'
/// append-only encoded delta logs (zero-padded to the longest), plus
/// each member's current log length in words.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GroupShard {
    words: Vec<Vert>,
    member_lens: Vec<usize>,
}

impl GroupShard {
    /// An empty shard for a group of `members` ranks.
    pub fn new(members: usize) -> Self {
        Self {
            words: Vec::new(),
            member_lens: vec![0; members],
        }
    }

    /// XOR one encoded delta entry (`[level, count, verts...]`) into
    /// `member`'s log at its current append position. Entries absorbed
    /// in order make the member's total contribution equal its
    /// flattened log, i.e. `encode_deltas` of its delta history.
    pub fn absorb(&mut self, member: usize, entry: &[Vert]) {
        let at = self.member_lens[member];
        let end = at + entry.len();
        if self.words.len() < end {
            self.words.resize(end, 0);
        }
        for (w, &e) in self.words[at..end].iter_mut().zip(entry) {
            *w ^= e;
        }
        self.member_lens[member] = end;
    }

    /// `member`'s current log length in words.
    pub fn member_len(&self, member: usize) -> usize {
        self.member_lens[member]
    }

    /// The raw parity words (what a checkpoint persists and recovery
    /// ships to the revived rank).
    pub fn words(&self) -> &[Vert] {
        &self.words
    }

    /// Reconstruct `member`'s full encoded log from this shard plus
    /// every *other* member's log (`survivors` maps member index →
    /// encoded log). Panics if a survivor log's length disagrees with
    /// the length this shard recorded for it — that would mean the
    /// survivor's history and the shard are from different checkpoints.
    pub fn reconstruct(&self, member: usize, survivors: &[(usize, &[Vert])]) -> Vec<Vert> {
        let mut out = self.words.clone();
        let mut seen = 1usize; // the dead member itself
        for &(m, log) in survivors {
            assert_ne!(m, member, "the dead member cannot survive itself");
            assert_eq!(
                log.len(),
                self.member_lens[m],
                "survivor {m}'s log length disagrees with the shard"
            );
            for (w, &e) in out.iter_mut().zip(log) {
                *w ^= e;
            }
            seen += 1;
        }
        assert_eq!(
            seen,
            self.member_lens.len(),
            "reconstruction needs every surviving member's log"
        );
        out.truncate(self.member_lens[member]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cover_all_ranks_without_singletons() {
        for p in 2..40 {
            for g in 2..8 {
                let pg = ParityGroups::new(g, p);
                let mut covered = vec![false; p];
                for group in 0..pg.count() {
                    let m = pg.members(group);
                    assert!(
                        m.len() >= 2.min(p),
                        "group {group} too small for p={p} g={g}"
                    );
                    for r in m {
                        assert!(!covered[r], "rank {r} in two groups");
                        covered[r] = true;
                        assert_eq!(pg.group_of(r), group);
                    }
                }
                assert!(
                    covered.iter().all(|&c| c),
                    "p={p} g={g} leaves ranks uncovered"
                );
            }
        }
    }

    #[test]
    fn last_group_absorbs_remainder() {
        let pg = ParityGroups::new(3, 8);
        assert_eq!(pg.count(), 2);
        assert_eq!(pg.members(0), 0..3);
        assert_eq!(pg.members(1), 3..8);
        assert_eq!(pg.group_of(7), 1);
        assert_eq!(pg.member_index(5), 2);
        assert_eq!(pg.peers(4).collect::<Vec<_>>(), vec![3, 5, 6, 7]);
    }

    #[test]
    fn shard_reconstructs_any_single_member() {
        // Three members with logs of different lengths, absorbed as
        // interleaved entries (the order groups see them level by level).
        let logs: [Vec<Vert>; 3] = [
            vec![0, 1, 7, 1, 2, 99],
            vec![0, 2, 8, 9],
            vec![1, 3, 10, 11, 12, 2, 1, 13],
        ];
        let mut shard = GroupShard::new(3);
        // Absorb in entry-sized chunks, interleaved across members.
        shard.absorb(0, &logs[0][..3]);
        shard.absorb(1, &logs[1][..]);
        shard.absorb(2, &logs[2][..5]);
        shard.absorb(0, &logs[0][3..]);
        shard.absorb(2, &logs[2][5..]);
        for dead in 0..3 {
            let survivors: Vec<(usize, &[Vert])> = (0..3)
                .filter(|&m| m != dead)
                .map(|m| (m, logs[m].as_slice()))
                .collect();
            assert_eq!(
                shard.reconstruct(dead, &survivors),
                logs[dead],
                "member {dead}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "disagrees with the shard")]
    fn stale_survivor_log_is_rejected() {
        let mut shard = GroupShard::new(2);
        shard.absorb(0, &[0, 1, 5]);
        shard.absorb(1, &[0, 1, 6]);
        // Survivor 1 offers a log longer than the shard recorded.
        let long: Vec<Vert> = vec![0, 1, 6, 1, 1, 7];
        shard.reconstruct(0, &[(1, long.as_slice())]);
    }
}
