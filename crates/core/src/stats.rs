//! Per-run and per-level BFS statistics — the quantities the paper's
//! evaluation section plots and tabulates.

use bgl_comm::{CommStats, OpClass};
use serde::{Deserialize, Serialize};

/// Which traversal direction a level actually ran (the
/// direction-optimizing engine's per-level choice; pure top-down runs
/// record `TopDown` everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LevelDirection {
    /// Expand → discover → fold (the paper's algorithm).
    #[default]
    TopDown,
    /// Frontier gather → bottom-up discover → fold.
    BottomUp,
}

impl LevelDirection {
    /// Short label for tables (`td` / `bu`).
    pub fn label(self) -> &'static str {
        match self {
            LevelDirection::TopDown => "td",
            LevelDirection::BottomUp => "bu",
        }
    }
}

/// Statistics for one BFS level (one iteration of the main loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LevelStats {
    /// The level index `l` (frontier at distance `l` was expanded).
    pub level: u32,
    /// Global frontier size at this level.
    pub frontier: u64,
    /// Vertices received in expand messages, summed over ranks
    /// (Figure 6 / Table 1 expand volume).
    pub expand_received: u64,
    /// Vertices received in fold messages, summed over ranks
    /// (Figure 4.b / Figure 6 fold volume).
    pub fold_received: u64,
    /// Duplicates eliminated by union operations this level (Figure 7
    /// numerator).
    pub dups_eliminated: u64,
    /// Simulated seconds this level took.
    pub sim_time: f64,
    /// Communication component of `sim_time`.
    pub comm_time: f64,
    /// Union-fold merges this level that ran on the sorted-list
    /// representation.
    #[serde(default)]
    pub list_unions: u64,
    /// Union-fold merges this level that ran on the bitmap
    /// representation (word-wise OR).
    #[serde(default)]
    pub bitmap_unions: u64,
    /// List→bitmap densification switches this level (the accumulator
    /// crossed the density threshold).
    #[serde(default)]
    pub densify_switches: u64,
    /// Uncompressed payload bytes sent this level (all classes,
    /// excluding self-sends).
    #[serde(default)]
    pub logical_bytes: u64,
    /// Bytes actually placed on the wire this level after the codec
    /// (equals `logical_bytes` with the codec off).
    #[serde(default)]
    pub wire_bytes: u64,
    /// Simulated seconds this level spent encoding/decoding wire
    /// frames (a component of compute time; 0 with the codec off).
    #[serde(default)]
    pub codec_time: f64,
    /// The direction this level ran (always `TopDown` without the
    /// direction-optimizing engine).
    #[serde(default)]
    pub direction: LevelDirection,
    /// Hash probes charged on this level when it ran top-down
    /// (discover + absorb, summed over ranks; 0 on bottom-up levels).
    #[serde(default)]
    pub td_probes: u64,
    /// Hash probes charged on this level when it ran bottom-up
    /// (frontier membership tests + absorb, summed over ranks; 0 on
    /// top-down levels).
    #[serde(default)]
    pub bu_probes: u64,
}

/// Statistics for one whole BFS run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Per-level records, in level order.
    pub levels: Vec<LevelStats>,
    /// Total simulated seconds.
    pub sim_time: f64,
    /// Communication component of `sim_time`.
    pub comm_time: f64,
    /// Computation component of `sim_time`.
    pub compute_time: f64,
    /// Wire-codec component of `compute_time` (0 with the codec off).
    #[serde(default)]
    pub codec_time: f64,
    /// Number of vertices reached (labeled), including the source.
    pub reached: u64,
    /// Final cumulative communication statistics.
    pub comm: CommStats,
    /// Number of ranks.
    pub p: usize,
}

impl RunStats {
    /// Number of levels executed.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Table 1 metric: average expand message volume received per
    /// processor per level (vertices).
    pub fn avg_expand_len_per_level(&self) -> f64 {
        self.avg_len_per_level(OpClass::Expand)
    }

    /// Table 1 metric: average fold message volume received per
    /// processor per level (vertices).
    pub fn avg_fold_len_per_level(&self) -> f64 {
        self.avg_len_per_level(OpClass::Fold)
    }

    fn avg_len_per_level(&self, class: OpClass) -> f64 {
        if self.levels.is_empty() || self.p == 0 {
            return 0.0;
        }
        self.comm.class(class).received_verts as f64 / self.p as f64 / self.levels.len() as f64
    }

    /// Figure 7 metric: the redundancy ratio in percent.
    pub fn redundancy_ratio_percent(&self) -> f64 {
        self.comm.redundancy_ratio_percent()
    }

    /// Fraction of union-fold merges that ran on the bitmap
    /// representation (0 when no unions ran — e.g. direct all-to-all
    /// folds).
    pub fn bitmap_union_fraction(&self) -> f64 {
        let s = self.comm.setops;
        let total = s.list_unions + s.bitmap_unions;
        if total == 0 {
            0.0
        } else {
            s.bitmap_unions as f64 / total as f64
        }
    }

    /// Total message volume received (all classes), in vertices.
    pub fn total_received(&self) -> u64 {
        self.comm.total_received()
    }

    /// Wire compression ratio `logical / wire` over the whole run (1.0
    /// with the codec off).
    pub fn compression_ratio(&self) -> f64 {
        self.comm.compression_ratio()
    }

    /// How many levels ran top-down and bottom-up, respectively.
    pub fn direction_split(&self) -> (usize, usize) {
        let bu = self
            .levels
            .iter()
            .filter(|l| l.direction == LevelDirection::BottomUp)
            .count();
        (self.levels.len() - bu, bu)
    }

    /// Total hash probes charged over the run, both directions. This is
    /// the work metric the direction-optimizing engine minimizes (the
    /// paper profiles BFS as hash-dominated).
    pub fn total_probes(&self) -> u64 {
        self.levels.iter().map(|l| l.td_probes + l.bu_probes).sum()
    }

    /// Traversed edges per simulated second (the Graph500 metric), given
    /// the number of edges the search touched. Returns 0 for a zero-time
    /// run (e.g. single rank with modelled-free local work).
    pub fn teps(&self, edges_traversed: u64) -> f64 {
        if self.sim_time <= 0.0 {
            0.0
        } else {
            edges_traversed as f64 / self.sim_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(levels: usize, p: usize, expand: u64, fold: u64) -> RunStats {
        let mut comm = CommStats::new(p);
        for _ in 0..expand {
            comm.note_message(OpClass::Expand, 0, 1, 1);
        }
        for _ in 0..fold {
            comm.note_message(OpClass::Fold, 0, 1, 1);
        }
        RunStats {
            levels: (0..levels)
                .map(|l| LevelStats {
                    level: l as u32,
                    frontier: 1,
                    expand_received: 0,
                    fold_received: 0,
                    dups_eliminated: 0,
                    sim_time: 0.0,
                    comm_time: 0.0,
                    list_unions: 0,
                    bitmap_unions: 0,
                    densify_switches: 0,
                    logical_bytes: 0,
                    wire_bytes: 0,
                    codec_time: 0.0,
                    direction: LevelDirection::TopDown,
                    td_probes: 0,
                    bu_probes: 0,
                })
                .collect(),
            sim_time: 0.0,
            comm_time: 0.0,
            compute_time: 0.0,
            codec_time: 0.0,
            reached: 1,
            comm,
            p,
        }
    }

    #[test]
    fn per_level_averages() {
        let s = mk(4, 2, 80, 160);
        assert!((s.avg_expand_len_per_level() - 10.0).abs() < 1e-12);
        assert!((s.avg_fold_len_per_level() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_zero() {
        let s = mk(0, 2, 0, 0);
        assert_eq!(s.avg_expand_len_per_level(), 0.0);
        assert_eq!(s.num_levels(), 0);
    }
}
