//! Graph500-style end-to-end result validation.
//!
//! The Graph500 benchmark (and Buluç & Madduri's distributed-memory BFS
//! work) requires every run to *prove* its output is a BFS tree, not
//! just compare against a second traversal: at scale, a bug in the
//! traversal can be mirrored by the same bug in the checker. This
//! module validates a level labelling against the raw adjacency
//! structure, independently of any BFS implementation:
//!
//! 1. the source is labeled level 0 and nothing else is;
//! 2. every edge connects levels differing by at most one, and never
//!    connects a reached vertex to an unreached one — so unreached
//!    vertices are *truly disconnected* from the source component;
//! 3. every reached non-source vertex has a neighbor exactly one level
//!    up (its parent), and the tree edge `parent(v) → v` exists in the
//!    graph by construction;
//! 4. following parents from any reached vertex walks exactly
//!    `level(v)` steps to the source — the parent tree is rooted at the
//!    source and cycle-free (a cycle could never decrease the level at
//!    every step).
//!
//! Resilient-path tests run this after recovery, the chaos sweep runs
//! it on every configuration, and the CLI exposes it as `--validate`.

use crate::reference::UNREACHED;
use bgl_graph::{GraphSpec, Vertex};
use std::fmt;

/// A proof obligation the labelling failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// The source vertex is not labeled level 0.
    SourceLevel {
        /// The level the source actually carries.
        found: u32,
    },
    /// A vertex other than the source is labeled level 0.
    ExtraRoot {
        /// The offending vertex.
        vertex: Vertex,
    },
    /// An edge connects levels more than one apart.
    LevelJump {
        /// One endpoint.
        u: Vertex,
        /// The other endpoint.
        v: Vertex,
        /// `u`'s level.
        lu: u32,
        /// `v`'s level.
        lv: u32,
    },
    /// An edge connects a reached vertex to an unreached one — the
    /// "unreached" vertex is actually connected to the source component.
    UnreachedNeighbor {
        /// The reached endpoint.
        reached: Vertex,
        /// The endpoint wrongly labeled unreached.
        unreached: Vertex,
    },
    /// A reached non-source vertex has no neighbor one level up.
    NoParent {
        /// The orphan vertex.
        vertex: Vertex,
        /// Its level.
        level: u32,
    },
    /// Walking parents from a vertex did not reach the source in
    /// exactly `level` steps (a cycle or a broken chain).
    BrokenParentChain {
        /// The vertex whose chain failed.
        vertex: Vertex,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidationError::SourceLevel { found } => {
                write!(f, "source is labeled level {found}, expected 0")
            }
            ValidationError::ExtraRoot { vertex } => {
                write!(f, "non-source vertex {vertex} is labeled level 0")
            }
            ValidationError::LevelJump { u, v, lu, lv } => {
                write!(f, "edge ({u}, {v}) jumps levels {lu} -> {lv}")
            }
            ValidationError::UnreachedNeighbor { reached, unreached } => write!(
                f,
                "vertex {unreached} is labeled unreached but neighbors reached vertex {reached}"
            ),
            ValidationError::NoParent { vertex, level } => write!(
                f,
                "vertex {vertex} at level {level} has no neighbor at level {}",
                level - 1
            ),
            ValidationError::BrokenParentChain { vertex } => {
                write!(
                    f,
                    "parent chain from vertex {vertex} does not reach the source"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// What a successful validation measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationReport {
    /// Vertices reached from the source (including the source).
    pub reached: u64,
    /// The deepest level in the labelling (0 for a lone source).
    pub depth: u32,
    /// Tree edges checked (`reached - 1`: one parent per non-source
    /// reached vertex).
    pub tree_edges: u64,
}

/// Validate `levels` as a BFS labelling of `adj` from `source`. See
/// the module docs for the four invariants checked. `adj` must be the
/// full (undirected) adjacency structure; `levels[v] == u32::MAX`
/// means unreached.
pub fn validate_levels(
    adj: &[Vec<Vertex>],
    levels: &[u32],
    source: Vertex,
) -> Result<ValidationReport, ValidationError> {
    assert_eq!(adj.len(), levels.len(), "levels must cover every vertex");
    let s = source as usize;
    if levels[s] != 0 {
        return Err(ValidationError::SourceLevel { found: levels[s] });
    }

    // Invariants 1–2 plus parent derivation for invariant 3: one pass
    // over the edges. `parent[v]` is the smallest neighbor one level up
    // — any such neighbor proves the tree edge exists in the graph.
    let mut parent: Vec<Option<Vertex>> = vec![None; adj.len()];
    let mut reached = 0u64;
    let mut depth = 0u32;
    for (vi, list) in adj.iter().enumerate() {
        let lv = levels[vi];
        if lv == UNREACHED {
            for &u in list {
                if levels[u as usize] != UNREACHED {
                    return Err(ValidationError::UnreachedNeighbor {
                        reached: u,
                        unreached: vi as Vertex,
                    });
                }
            }
            continue;
        }
        if lv == 0 && vi != s {
            return Err(ValidationError::ExtraRoot {
                vertex: vi as Vertex,
            });
        }
        reached += 1;
        depth = depth.max(lv);
        for &u in list {
            let lu = levels[u as usize];
            if lu == UNREACHED {
                return Err(ValidationError::UnreachedNeighbor {
                    reached: vi as Vertex,
                    unreached: u,
                });
            }
            if lu.abs_diff(lv) > 1 {
                return Err(ValidationError::LevelJump {
                    u: vi as Vertex,
                    v: u,
                    lu: lv,
                    lv: lu,
                });
            }
            if lu + 1 == lv && parent[vi].is_none_or(|p| u < p) {
                parent[vi] = Some(u);
            }
        }
        if lv > 0 && parent[vi].is_none() {
            return Err(ValidationError::NoParent {
                vertex: vi as Vertex,
                level: lv,
            });
        }
    }

    // Invariant 4: every parent chain reaches the source in exactly
    // `level` steps. Each hop goes to a strictly smaller level, so a
    // chain of `level` hops can only terminate at level 0 == source;
    // walking each vertex once is O(reached * depth) worst case but the
    // early exit below (stop at any vertex whose chain was already
    // verified) makes it linear in practice.
    let mut verified = vec![false; adj.len()];
    verified[s] = true;
    for vi in 0..adj.len() {
        if levels[vi] == UNREACHED || verified[vi] {
            continue;
        }
        let mut at = vi;
        let mut steps = levels[vi];
        let mut trail = Vec::new();
        while !verified[at] {
            trail.push(at);
            match parent[at] {
                Some(pv) if steps > 0 => {
                    at = pv as usize;
                    steps -= 1;
                }
                _ => {
                    return Err(ValidationError::BrokenParentChain {
                        vertex: vi as Vertex,
                    })
                }
            }
        }
        // The walk stopped at an already-verified vertex; the steps
        // spent must equal the level drop, or the chain length lied.
        if steps != levels[at] {
            return Err(ValidationError::BrokenParentChain {
                vertex: vi as Vertex,
            });
        }
        for t in trail {
            verified[t] = true;
        }
    }

    Ok(ValidationReport {
        reached,
        depth,
        tree_edges: reached - 1,
    })
}

/// [`validate_levels`] against the adjacency structure regenerated from
/// a [`GraphSpec`] — the form tests and the CLI use, since the
/// generated graph is a pure function of its spec.
pub fn validate_against_spec(
    spec: &GraphSpec,
    levels: &[u32],
    source: Vertex,
) -> Result<ValidationReport, ValidationError> {
    validate_levels(&bgl_graph::dist::adjacency(spec), levels, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn path(n: usize) -> Vec<Vec<Vertex>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i as Vertex - 1);
                }
                if i + 1 < n {
                    v.push(i as Vertex + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn accepts_reference_bfs_on_generated_graphs() {
        for seed in [3, 17, 99] {
            let spec = GraphSpec::poisson(400, 3.0, seed);
            let adj = bgl_graph::dist::adjacency(&spec);
            let levels = reference::bfs_levels(&adj, 5);
            let report = validate_levels(&adj, &levels, 5).unwrap();
            assert_eq!(
                report.reached,
                levels.iter().filter(|&&l| l != UNREACHED).count() as u64
            );
            assert_eq!(report.tree_edges, report.reached - 1);
            assert_eq!(
                report.depth,
                levels
                    .iter()
                    .filter(|&&l| l != UNREACHED)
                    .max()
                    .copied()
                    .unwrap()
            );
            assert!(validate_against_spec(&spec, &levels, 5).is_ok());
        }
    }

    #[test]
    fn rejects_wrong_source_level() {
        let adj = path(3);
        assert_eq!(
            validate_levels(&adj, &[1, 1, 2], 0),
            Err(ValidationError::SourceLevel { found: 1 })
        );
    }

    #[test]
    fn rejects_second_root() {
        let adj = path(3);
        assert_eq!(
            validate_levels(&adj, &[0, 1, 0], 0),
            Err(ValidationError::ExtraRoot { vertex: 2 })
        );
    }

    #[test]
    fn rejects_level_jump() {
        let adj = path(3);
        let err = validate_levels(&adj, &[0, 1, 3], 0).unwrap_err();
        assert!(matches!(err, ValidationError::LevelJump { .. }), "{err}");
    }

    #[test]
    fn rejects_falsely_unreached_vertex() {
        let adj = path(3);
        let err = validate_levels(&adj, &[0, 1, UNREACHED], 0).unwrap_err();
        assert_eq!(
            err,
            ValidationError::UnreachedNeighbor {
                reached: 1,
                unreached: 2
            }
        );
    }

    #[test]
    fn rejects_orphan_level() {
        // Vertices 2 and 3 form their own component but claim level 2:
        // neither has a neighbor one level up, so the parent derivation
        // must fail (this is exactly the forged labelling a buggy
        // recovery could produce).
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let err = validate_levels(&adj, &[0, 1, 2, 2], 0).unwrap_err();
        assert_eq!(
            err,
            ValidationError::NoParent {
                vertex: 2,
                level: 2
            }
        );
    }

    #[test]
    fn truly_disconnected_components_pass() {
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let report = validate_levels(&adj, &[0, 1, UNREACHED, UNREACHED], 0).unwrap();
        assert_eq!(report.reached, 2);
        assert_eq!(report.depth, 1);
    }
}
