//! Per-rank compute execution engine for the superstep simulator.
//!
//! The simulator is *logically* serial — one address space executes
//! every rank's compute phase between collectives — which makes large
//! grids host-bound: an R×C sweep runs R·C expand/discover/absorb
//! passes back to back. Those passes are independent (each touches only
//! its own `RankState` plus shared read-only inputs), so
//! [`ComputeEngine::Rayon`] fans them out across worker threads via the
//! vendored rayon's order-preserving slice parallelism.
//!
//! **Determinism argument.** Results are collected positionally (chunk
//! boundaries are fixed by index, chunk outputs concatenated in input
//! order), every closure is a pure function of its own rank's state, and
//! *all* simulated-time accounting stays in the serial collective layer
//! as order-independent max/sum reductions over per-rank arrays.
//! Nothing about thread scheduling can reorder, split, or re-associate
//! any floating-point reduction, so level labels, statistics, and all
//! three simulated clocks are bit-identical to [`ComputeEngine::Serial`]
//! (asserted by `tests/engine_equivalence.rs`).

use rayon::ParallelSliceMut;
use serde::{Deserialize, Serialize};

/// Ranks below which [`ComputeEngine::Auto`] stays serial: thread spawn
/// overhead beats the win on small grids.
const AUTO_PARALLEL_THRESHOLD: usize = 32;

/// How per-rank compute closures are executed between collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ComputeEngine {
    /// One rank after another on the calling thread (the seed
    /// behaviour).
    Serial,
    /// Scoped worker threads over contiguous rank chunks (vendored
    /// rayon); bit-identical results, lower host wall-clock.
    Rayon,
    /// [`ComputeEngine::Rayon`] for grids of at least 32 ranks,
    /// [`ComputeEngine::Serial`] below.
    #[default]
    Auto,
}

impl ComputeEngine {
    /// Whether `p` ranks should be fanned out across threads. Public so
    /// the BFS driver can apply the same decision to the communication
    /// layer's parallel exchange precompute.
    pub fn parallel(self, p: usize) -> bool {
        match self {
            ComputeEngine::Serial => false,
            ComputeEngine::Rayon => p > 1,
            ComputeEngine::Auto => p >= AUTO_PARALLEL_THRESHOLD,
        }
    }

    /// Map `f` over every rank's state, returning results in rank
    /// order.
    pub fn map_mut<T, R, F>(self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        if self.parallel(items.len()) {
            items.par_iter_mut().map(f).collect()
        } else {
            items.iter_mut().map(f).collect()
        }
    }

    /// Map `f` over every `(rank state, per-rank context)` pair,
    /// returning results in rank order. `items` and `ctx` must have the
    /// same length.
    pub fn zip_map<T, U, R, F>(self, items: &mut [T], ctx: &[U], f: F) -> Vec<R>
    where
        T: Send,
        U: Sync,
        R: Send,
        F: Fn(&mut T, &U) -> R + Sync,
    {
        assert_eq!(items.len(), ctx.len());
        if self.parallel(items.len()) {
            items.par_iter_mut().zip(ctx).map_collect(f)
        } else {
            items.iter_mut().zip(ctx).map(|(t, u)| f(t, u)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_engines_agree_and_preserve_order() {
        let mk = || (0u64..500).collect::<Vec<_>>();
        let run = |e: ComputeEngine| {
            let mut v = mk();
            let out: Vec<u64> = e.map_mut(&mut v, |x| {
                *x += 1;
                *x * 3
            });
            (v, out)
        };
        let serial = run(ComputeEngine::Serial);
        let rayon = run(ComputeEngine::Rayon);
        let auto = run(ComputeEngine::Auto);
        assert_eq!(serial, rayon);
        assert_eq!(serial, auto);
    }

    #[test]
    fn zip_map_agrees_across_engines() {
        let ctx: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let run = |e: ComputeEngine| {
            let mut v = vec![1u64; 100];
            let out: Vec<u64> = e.zip_map(&mut v, &ctx, |x, c| {
                *x += c;
                *x
            });
            (v, out)
        };
        assert_eq!(run(ComputeEngine::Serial), run(ComputeEngine::Rayon));
    }

    #[test]
    fn auto_threshold() {
        assert!(!ComputeEngine::Auto.parallel(4));
        assert!(ComputeEngine::Auto.parallel(64));
        assert!(!ComputeEngine::Serial.parallel(1024));
        assert!(ComputeEngine::Rayon.parallel(2));
        assert!(!ComputeEngine::Rayon.parallel(1));
    }
}
