//! Distributed level-synchronized BFS with 2D partitioning — the
//! paper's Algorithm 2, on the superstep simulator.
//!
//! Each level runs the five phases of the paper's main loop:
//!
//! 1. frontier formation + global termination check (steps 3–6);
//! 2. **expand** over processor-columns (steps 7–11), by the configured
//!    [`crate::config::ExpandStrategy`];
//! 3. local neighbor discovery over partial edge lists (step 12), with
//!    the sent-neighbors cache;
//! 4. **fold** over processor-rows (steps 13–18), by the configured
//!    [`crate::config::FoldStrategy`];
//! 5. absorb: label unlabeled owned vertices (steps 19–21).
//!
//! Compute time is charged per level from the hash-probe counts; all
//! message accounting happens inside the communication layer.
//!
//! ## Fault tolerance
//!
//! Three entry points share one engine:
//!
//! * [`run`] — the historical panicking API for fault-free worlds;
//! * [`try_run`] — the same run with communication faults surfaced as
//!   typed [`CommError`]s instead of panics;
//! * [`run_resilient`] — level-synchronous **checkpoint/recover**. Every
//!   [`ResilientConfig::checkpoint_every`] levels the per-rank states are
//!   checkpointed, and after every absorb each rank mirrors its freshly
//!   labeled vertices to a buddy rank over the (reliable, fault-exempt)
//!   control network. When an exchange reports [`CommError::RankDead`],
//!   a spare node is brought in ([`SimWorld::revive`]), the dead rank's
//!   graph cells are **regenerated from the graph seed** (the same
//!   property that makes construction grid-independent), its labels are
//!   replayed from the buddy's mirrored deltas, survivors roll back to
//!   the checkpoint, and the search resumes. Recovery is exact: the
//!   recovered run produces bit-identical level labels to a fault-free
//!   run, because absorb only ever labels unreached vertices.

use crate::config::{BfsConfig, ExpandStrategy, FoldStrategy};
use crate::state::{gather_levels, RankState};
use crate::stats::{LevelStats, RunStats};
use bgl_comm::collectives::{
    allgather::allgather_ring,
    alltoall::alltoallv,
    reduce_scatter::reduce_scatter_union_ring,
    two_phase::{two_phase_expand, two_phase_fold},
    Groups,
};
use bgl_comm::{CommError, EventKind, OpClass, Phase, SimWorld, Vert, VertSet};
use bgl_graph::{DistGraph, Vertex};

/// The outcome of one distributed BFS run.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Global level labels ([`crate::reference::UNREACHED`] where
    /// unreached).
    pub levels: Vec<u32>,
    /// Run statistics (times, volumes, per-level records).
    pub stats: RunStats,
    /// Level of the target, when one was configured and reached.
    pub target_level: Option<u32>,
}

/// Configuration of the checkpoint/recover protocol used by
/// [`run_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientConfig {
    /// Checkpoint the per-rank states every this many levels (minimum 1:
    /// a checkpoint at the start of every level).
    pub checkpoint_every: u32,
    /// Give up (returning the underlying [`CommError::RankDead`]) after
    /// this many recoveries in one run.
    pub max_recoveries: u32,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 1,
            max_recoveries: 8,
        }
    }
}

/// A [`BfsResult`] plus the recovery log of a [`run_resilient`] run.
#[derive(Debug, Clone)]
pub struct ResilientBfsResult {
    /// The search result — bit-identical levels to a fault-free run.
    pub result: BfsResult,
    /// Number of rank deaths recovered from.
    pub recoveries: u32,
    /// The ranks that died and were rebuilt, in recovery order.
    pub recovered_ranks: Vec<usize>,
    /// Simulated time spent inside recovery itself (graph regeneration
    /// handoff + mirrored-label transfer); the replayed levels show up
    /// in the ordinary sim time instead.
    pub recovery_time: f64,
}

/// Per-rank fold output: either one payload list per sender (direct
/// all-to-all — duplicate elimination happens at the receiver, one probe
/// per *occurrence*) or a single union set per rank (the union-fold
/// collectives, one probe per *element*).
pub(crate) enum FoldOut {
    /// One received list per sending row peer.
    PerSender(Vec<Vec<Vec<Vert>>>),
    /// One deduplicated union set per rank.
    Union(Vec<VertSet>),
}

/// What one level of the main loop decided.
enum LevelOutcome {
    /// Global frontier empty: traversal complete.
    Exhausted,
    /// The configured target was labeled this level.
    TargetFound,
    /// Proceed to the next level.
    Advance,
}

/// Run Algorithm 2 from `source` on `graph` under `config`, inside
/// `world`. The world's grid must match the graph's.
///
/// Panics if the world reports a communication fault; use [`try_run`] or
/// [`run_resilient`] when a [`bgl_comm::FaultPlan`] is active.
pub fn run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> BfsResult {
    try_run(graph, world, config, source)
        .expect("communication fault during BFS (use try_run/run_resilient with a FaultPlan)")
}

/// [`run`] with communication faults surfaced as typed errors. Under a
/// plan of message faults only (drops/truncations/duplicates) the
/// retransmission protocol is transparent — the result equals a
/// fault-free run, just slower; a rank death surfaces as
/// [`CommError::RankDead`].
pub fn try_run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> Result<BfsResult, CommError> {
    engine(graph, world, config, source, None).map(|r| r.result)
}

/// Fault-tolerant BFS: [`try_run`] plus checkpoint/recover for rank
/// deaths, per `resilience`. See the module docs for the protocol.
pub fn run_resilient(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
    resilience: &ResilientConfig,
) -> Result<ResilientBfsResult, CommError> {
    engine(graph, world, config, source, Some(resilience))
}

/// One level of the paper's main loop over all simulated ranks. Pushes
/// this level's [`LevelStats`] and sets `target_level` before reporting
/// [`LevelOutcome::TargetFound`].
#[allow(clippy::too_many_arguments)]
fn level_pass(
    world: &mut SimWorld,
    config: &BfsConfig,
    states: &mut [RankState<'_>],
    row_groups: &Groups,
    col_groups: &Groups,
    level: u32,
    level_records: &mut Vec<LevelStats>,
    target_level: &mut Option<u32>,
) -> Result<LevelOutcome, CommError> {
    let grid = world.grid();
    let time_at_start = world.time();
    let comm_at_start = world.comm_time();
    let codec_at_start = world.codec_time();
    let comm_snapshot = world.stats.clone();

    // -- 1. termination check on global frontier size.
    let frontier_sizes: Vec<u64> = states.iter().map(|s| s.frontier_len()).collect();
    let global_frontier = world.allreduce_sum(&frontier_sizes);
    world.trace_span(Phase::Termination, level, time_at_start);
    if global_frontier == 0 {
        return Ok(LevelOutcome::Exhausted);
    }

    // -- 2. expand.
    let t_expand = world.time();
    let fbar: Vec<Vec<Vec<Vert>>> = match config.expand {
        ExpandStrategy::Targeted => {
            let sends: Vec<Vec<(usize, Vec<Vert>)>> = config
                .engine
                .map_mut(states, RankState::expand_sends_targeted);
            alltoallv(world, OpClass::Expand, col_groups, sends)?
                .into_iter()
                .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                .collect()
        }
        ExpandStrategy::AllGatherRing => {
            let contributions: Vec<Vec<Vert>> = states.iter().map(|s| s.frontier.clone()).collect();
            allgather_ring(world, OpClass::Expand, col_groups, contributions)?
                .into_iter()
                .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                .collect()
        }
        ExpandStrategy::TwoPhaseRing => {
            let contributions: Vec<Vec<Vert>> = states.iter().map(|s| s.frontier.clone()).collect();
            two_phase_expand(world, OpClass::Expand, col_groups, contributions)?
                .into_iter()
                .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                .collect()
        }
    };

    world.trace_span(Phase::Expand, level, t_expand);

    // -- 3. local discovery. Zero-duration span in the simulator: the
    // probe costs are charged in the absorb phase's hash pass.
    let t_discover = world.time();
    let blocks: Vec<Vec<Vec<Vert>>> = config.engine.zip_map(states, &fbar, |s, lists| {
        let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
        s.discover(&refs)
    });
    drop(fbar);
    world.trace_span(Phase::Discover, level, t_discover);

    // -- 4. fold.
    let t_fold = world.time();
    let nbar: FoldOut = match config.fold {
        FoldStrategy::DirectAllToAll => {
            let sends: Vec<Vec<(usize, Vec<Vert>)>> = blocks
                .into_iter()
                .enumerate()
                .map(|(rank, bs)| {
                    let i = grid.row_of(rank);
                    bs.into_iter()
                        .enumerate()
                        .filter(|(_, b)| !b.is_empty())
                        .map(|(m, b)| (grid.rank_of(i, m), b))
                        .collect()
                })
                .collect();
            FoldOut::PerSender(
                alltoallv(world, OpClass::Fold, row_groups, sends)?
                    .into_iter()
                    .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                    .collect(),
            )
        }
        FoldStrategy::ReduceScatterUnion => FoldOut::Union(reduce_scatter_union_ring(
            world,
            OpClass::Fold,
            row_groups,
            blocks,
        )?),
        FoldStrategy::TwoPhaseRing => {
            FoldOut::Union(two_phase_fold(world, OpClass::Fold, row_groups, blocks)?)
        }
    };

    world.trace_span(Phase::Fold, level, t_fold);

    // -- 5. absorb + compute charge.
    let t_absorb = world.time();
    match &nbar {
        FoldOut::PerSender(lists) => {
            let _: Vec<u64> = config.engine.zip_map(states, lists, |s, lists| {
                let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
                s.absorb(&refs, level + 1)
            });
        }
        FoldOut::Union(sets) => {
            let _: Vec<u64> = config
                .engine
                .zip_map(states, sets, |s, set| s.absorb_set(set, level + 1));
        }
    }
    drop(nbar);
    let probes: Vec<u64> = states.iter_mut().map(RankState::take_probes).collect();
    world.hash_phase(&probes);

    // -- target detection.
    if let Some(t) = config.target {
        let flags: Vec<bool> = states.iter().map(|s| s.level_of(t).is_some()).collect();
        if world.allreduce_or(&flags) {
            *target_level = Some(level + 1);
        }
    }
    // The absorb span also covers the target-detection allreduce, so
    // the level's phase spans partition its whole interval.
    world.trace_span(Phase::Absorb, level, t_absorb);
    world.trace_span(Phase::Level, level, time_at_start);

    let delta = world.stats.minus(&comm_snapshot);
    level_records.push(LevelStats {
        level,
        frontier: global_frontier,
        expand_received: delta.class(OpClass::Expand).received_verts,
        fold_received: delta.class(OpClass::Fold).received_verts,
        dups_eliminated: delta.total_dups_eliminated(),
        sim_time: world.time() - time_at_start,
        comm_time: world.comm_time() - comm_at_start,
        list_unions: delta.setops.list_unions,
        bitmap_unions: delta.setops.bitmap_unions,
        densify_switches: delta.setops.densify_switches,
        logical_bytes: delta.total_logical_bytes(),
        wire_bytes: delta.total_wire_bytes(),
        codec_time: world.codec_time() - codec_at_start,
    });

    if target_level.is_some() {
        return Ok(LevelOutcome::TargetFound);
    }
    Ok(LevelOutcome::Advance)
}

/// Mirror each rank's freshly labeled vertices (its new frontier, tagged
/// `next_level` in the delta log) to its buddy rank over the reliable
/// control network, charged through the cost model.
fn mirror_deltas(
    world: &mut SimWorld,
    states: &[RankState<'_>],
    next_level: u32,
    deltas: &mut [Vec<(u32, Vec<Vertex>)>],
) -> Result<(), CommError> {
    let p = states.len();
    let mut sends = Vec::new();
    for (rank, st) in states.iter().enumerate() {
        deltas[rank].push((next_level, st.frontier.clone()));
        if !st.frontier.is_empty() {
            sends.push((rank, (rank + 1) % p, st.frontier.clone()));
        }
    }
    world.exchange(OpClass::Control, sends)?;
    Ok(())
}

/// Flatten the mirrored delta log up to `through_level` into one wire
/// payload: `[level, count, verts...]*`.
fn encode_deltas(deltas: &[(u32, Vec<Vertex>)], through_level: u32) -> Vec<Vert> {
    let mut payload = Vec::new();
    for (lvl, verts) in deltas {
        if *lvl > through_level {
            continue;
        }
        payload.push(*lvl as Vert);
        payload.push(verts.len() as Vert);
        payload.extend_from_slice(verts);
    }
    payload
}

/// Rebuild a revived rank's [`RankState`] from the wire-encoded delta
/// log: labels for every delta level, frontier from the checkpoint
/// level's delta.
fn replay_deltas<'g>(mut st: RankState<'g>, payload: &[Vert], ckpt_level: u32) -> RankState<'g> {
    let owned = st.rank_graph().owned.clone();
    let mut i = 0usize;
    while i < payload.len() {
        let lvl = payload[i] as u32;
        let count = payload[i + 1] as usize;
        let verts = &payload[i + 2..i + 2 + count];
        for &v in verts {
            debug_assert!(owned.contains(&v), "mirrored delta for a non-owned vertex");
            st.levels[(v - owned.start) as usize] = lvl;
        }
        if lvl == ckpt_level {
            st.frontier = verts.to_vec();
        }
        i += 2 + count;
    }
    st
}

/// The shared engine behind [`run`], [`try_run`] and [`run_resilient`].
/// With `resilience == None` the communication sequence is identical to
/// the historical fault-free `run` — no checkpoints, no mirror traffic.
fn engine(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
    resilience: Option<&ResilientConfig>,
) -> Result<ResilientBfsResult, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert!(source < graph.spec.n, "source out of range");
    let p = grid.len();

    // One decision drives both host-parallel layers: the per-rank
    // compute fan-out and the exchange precompute (wire encode + cost
    // attribution) in the communication layer. Bit-identical either way.
    world.set_parallel_exchange(config.engine.parallel(p));

    let row_groups = Groups::rows_of(grid);
    let col_groups = Groups::cols_of(grid);

    let mut states: Vec<RankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| RankState::new(rg, graph.partition, config.sent_neighbors))
        .collect();
    let owner = graph.partition.owner_of(source);
    states[owner].init_source(source);

    let mut level_records = Vec::new();
    let mut target_level = None;

    // Checkpoint/recover machinery (inert when `resilience` is None).
    let mut snapshot: Vec<RankState<'_>> = Vec::new();
    let mut ckpt_level: u32 = 0;
    let mut deltas: Vec<Vec<(u32, Vec<Vertex>)>> = vec![Vec::new(); p];
    if resilience.is_some() {
        // The source label is the level-0 delta.
        deltas[owner].push((0, vec![source]));
    }
    let mut recoveries = 0u32;
    let mut recovered_ranks: Vec<usize> = Vec::new();
    let mut recovery_time = 0.0f64;

    let mut level: u32 = 0;
    loop {
        if config.max_levels > 0 && level >= config.max_levels {
            break;
        }
        if let Some(rc) = resilience {
            if level.is_multiple_of(rc.checkpoint_every.max(1)) {
                snapshot = states.clone();
                ckpt_level = level;
                let t = world.time();
                world
                    .trace_mut()
                    .world_event(EventKind::Checkpoint { level }, t, t);
            }
        }

        match level_pass(
            world,
            config,
            &mut states,
            &row_groups,
            &col_groups,
            level,
            &mut level_records,
            &mut target_level,
        ) {
            Ok(LevelOutcome::Exhausted) | Ok(LevelOutcome::TargetFound) => break,
            Ok(LevelOutcome::Advance) => {
                if resilience.is_some() {
                    mirror_deltas(world, &states, level + 1, &mut deltas)?;
                }
                level += 1;
            }
            Err(CommError::RankDead { rank }) => {
                let Some(rc) = resilience else {
                    return Err(CommError::RankDead { rank });
                };
                if recoveries >= rc.max_recoveries {
                    return Err(CommError::RankDead { rank });
                }
                recoveries += 1;
                recovered_ranks.push(rank);
                let t0 = world.time();

                // A spare node takes over the dead rank's coordinate.
                world.revive(rank);
                world.note_recovery();

                // Its graph cells are regenerated from the seed — the
                // same determinism that makes construction
                // grid-independent makes every cell recomputable.
                let rebuilt = bgl_graph::rebuild_rank(&graph.spec, grid, rank);
                assert_eq!(
                    rebuilt, graph.ranks[rank],
                    "seed regeneration must reproduce the dead rank's graph share"
                );

                // The buddy ships its mirrored label history to the
                // revived rank over the control network (charged).
                let buddy = (rank + 1) % p;
                let payload = encode_deltas(&deltas[rank], ckpt_level);
                let inboxes = world.exchange(OpClass::Control, vec![(buddy, rank, payload)])?;
                let received = inboxes[rank]
                    .first()
                    .map(|(_, pl)| pl.clone())
                    .unwrap_or_default();

                // Rebuild the dead rank's state purely from regenerated
                // graph + mirrored deltas (never from its lost memory),
                // then check it against the checkpoint it must equal.
                let fresh =
                    RankState::new(&graph.ranks[rank], graph.partition, config.sent_neighbors);
                let restored = replay_deltas(fresh, &received, ckpt_level);
                assert_eq!(
                    restored.levels, snapshot[rank].levels,
                    "replayed labels must match the checkpointed labels"
                );
                assert_eq!(
                    restored.frontier, snapshot[rank].frontier,
                    "replayed frontier must match the checkpointed frontier"
                );

                // Survivors roll back to the checkpoint; the revived
                // rank joins with its replayed state (its sent-neighbors
                // cache starts cold — resends are harmless because
                // absorb only labels unreached vertices).
                states = snapshot.clone();
                states[rank] = restored;
                level_records.retain(|r| r.level < ckpt_level);
                for d in deltas.iter_mut() {
                    d.retain(|(l, _)| *l <= ckpt_level);
                }
                target_level = None;
                level = ckpt_level;
                let t1 = world.time();
                world
                    .trace_mut()
                    .world_event(EventKind::Recovery { rank: rank as u32 }, t0, t1);
                world.trace_span(Phase::Recovery, ckpt_level, t0);
                recovery_time += world.time() - t0;
            }
            Err(e) => return Err(e),
        }
    }

    // The source's own level-0 target case.
    if let Some(t) = config.target {
        if t == source {
            target_level = Some(0);
        }
    }

    let levels = gather_levels(&states, graph.spec.n);
    let reached = states.iter().map(|s| s.reached()).sum();
    Ok(ResilientBfsResult {
        result: BfsResult {
            stats: RunStats {
                levels: level_records,
                sim_time: world.time(),
                comm_time: world.comm_time(),
                compute_time: world.compute_time(),
                codec_time: world.codec_time(),
                reached,
                comm: world.stats.clone(),
                p,
            },
            target_level,
            levels,
        },
        recoveries,
        recovered_ranks,
        recovery_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExpandStrategy, FoldStrategy};
    use crate::reference;
    use bgl_comm::{FaultPlan, ProcessorGrid};
    use bgl_graph::GraphSpec;

    fn check_against_oracle(spec: GraphSpec, grid: ProcessorGrid, config: BfsConfig) {
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &config, 0);
        assert_eq!(got.levels, expect, "grid {grid:?} config {config:?}");
        assert_eq!(
            got.stats.reached,
            expect
                .iter()
                .filter(|&&l| l != reference::UNREACHED)
                .count() as u64
        );
    }

    #[test]
    fn matches_oracle_all_strategies() {
        let spec = GraphSpec::poisson(300, 6.0, 31);
        let grid = ProcessorGrid::new(3, 4);
        for expand in [
            ExpandStrategy::Targeted,
            ExpandStrategy::AllGatherRing,
            ExpandStrategy::TwoPhaseRing,
        ] {
            for fold in [
                FoldStrategy::DirectAllToAll,
                FoldStrategy::ReduceScatterUnion,
                FoldStrategy::TwoPhaseRing,
            ] {
                let config = BfsConfig {
                    expand,
                    fold,
                    ..BfsConfig::default()
                };
                check_against_oracle(spec, grid, config);
            }
        }
    }

    #[test]
    fn matches_oracle_across_grids() {
        let spec = GraphSpec::poisson(250, 5.0, 77);
        for (r, c) in [(1, 1), (1, 6), (6, 1), (2, 3), (4, 4), (5, 2)] {
            check_against_oracle(spec, ProcessorGrid::new(r, c), BfsConfig::default());
        }
    }

    #[test]
    fn matches_oracle_without_sent_cache() {
        let spec = GraphSpec::poisson(200, 5.0, 13);
        let config = BfsConfig {
            sent_neighbors: false,
            ..BfsConfig::default()
        };
        check_against_oracle(spec, ProcessorGrid::new(2, 2), config);
    }

    #[test]
    fn target_stops_early() {
        let spec = GraphSpec::poisson(400, 8.0, 5);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        // Pick a vertex at distance >= 2.
        let t = (0..400u64)
            .find(|&v| expect[v as usize] >= 2 && expect[v as usize] != reference::UNREACHED)
            .expect("target exists");
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig::default().with_target(t);
        let got = run(&graph, &mut world, &config, 0);
        assert_eq!(got.target_level, Some(expect[t as usize]));
        // Stopped at the target's level, not the full traversal.
        assert_eq!(
            got.stats.num_levels() as u32,
            expect[t as usize],
            "levels executed"
        );
    }

    #[test]
    fn unreachable_target_traverses_component() {
        // A graph so sparse it is disconnected; target in another
        // component => full component traversal (Figure 6 worst case).
        let spec = GraphSpec::poisson(300, 1.5, 3);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let t = (0..300u64).find(|&v| expect[v as usize] == reference::UNREACHED);
        let Some(t) = t else {
            panic!("expected a disconnected vertex at k=1.5");
        };
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default().with_target(t), 0);
        assert_eq!(got.target_level, None);
        assert_eq!(got.levels, expect);
    }

    #[test]
    fn source_is_target() {
        let spec = GraphSpec::poisson(100, 4.0, 2);
        let grid = ProcessorGrid::new(1, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default().with_target(7), 7);
        assert_eq!(got.target_level, Some(0));
    }

    #[test]
    fn level_stats_reconcile() {
        let spec = GraphSpec::poisson(300, 6.0, 41);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default(), 0);
        // Sum of level sim_time == total sim time (termination check of
        // the final empty level excluded — allow small slack).
        let per_level: f64 = got.stats.levels.iter().map(|l| l.sim_time).sum();
        assert!(per_level <= got.stats.sim_time + 1e-12);
        assert!(got.stats.sim_time > 0.0);
        assert!(got.stats.comm_time > 0.0);
        assert!(got.stats.compute_time > 0.0);
        // Frontier sizes sum to reached count.
        let frontier_sum: u64 = got.stats.levels.iter().map(|l| l.frontier).sum();
        assert_eq!(frontier_sum, got.stats.reached);
        // Expand/fold volumes are recorded per level.
        assert!(got.stats.levels.iter().any(|l| l.fold_received > 0));
    }

    #[test]
    fn union_fold_eliminates_duplicates_on_dense_graph() {
        let spec = GraphSpec::poisson(200, 20.0, 17);
        let grid = ProcessorGrid::new(2, 4);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(
            &graph,
            &mut world,
            &BfsConfig {
                fold: FoldStrategy::TwoPhaseRing,
                ..BfsConfig::default()
            },
            0,
        );
        assert!(
            got.stats.comm.total_dups_eliminated() > 0,
            "dense graph must produce fold duplicates"
        );
        assert!(got.stats.redundancy_ratio_percent() > 0.0);
    }

    #[test]
    fn max_levels_caps_search() {
        let spec = GraphSpec::poisson(500, 3.0, 19);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            max_levels: 2,
            ..BfsConfig::default()
        };
        let got = run(&graph, &mut world, &config, 0);
        assert!(got.stats.num_levels() <= 2);
        // Levels beyond 2 must be unlabeled.
        assert!(got
            .levels
            .iter()
            .all(|&l| l == reference::UNREACHED || l <= 2));
    }

    // ---- fault injection and recovery ----

    #[test]
    fn none_fault_plan_is_byte_identical() {
        let spec = GraphSpec::poisson(300, 6.0, 23);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut clean = SimWorld::bluegene(grid);
        let a = run(&graph, &mut clean, &BfsConfig::default(), 0);
        let mut gated = SimWorld::bluegene(grid).with_fault_plan(FaultPlan::none());
        let b = try_run(&graph, &mut gated, &BfsConfig::default(), 0).unwrap();
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.stats.sim_time, b.stats.sim_time);
        assert_eq!(a.stats.comm, b.stats.comm);
    }

    #[test]
    fn lossy_run_is_transparent_but_slower() {
        let spec = GraphSpec::poisson(300, 6.0, 37);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut clean = SimWorld::bluegene(grid);
        let a = run(&graph, &mut clean, &BfsConfig::default(), 0);
        let plan = FaultPlan::seeded(7)
            .with_drop_prob(0.2)
            .with_truncate_prob(0.05)
            .with_duplicate_prob(0.05);
        let mut lossy = SimWorld::bluegene(grid).with_fault_plan(plan);
        let b = try_run(&graph, &mut lossy, &BfsConfig::default(), 0).unwrap();
        assert_eq!(a.levels, b.levels, "retransmission must be transparent");
        assert!(b.stats.sim_time > a.stats.sim_time, "retries cost time");
        assert!(b.stats.comm.faults.retransmissions > 0);
        assert!(b.stats.comm.faults.drops_injected > 0);
        // Logical message accounting is unchanged by the fault protocol.
        assert_eq!(
            a.stats.comm.class(OpClass::Fold).received_verts,
            b.stats.comm.class(OpClass::Fold).received_verts
        );
    }

    #[test]
    fn rank_death_without_resilience_is_typed_error() {
        let spec = GraphSpec::poisson(300, 6.0, 31);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(5).kill_rank_at(4, 3);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let err = try_run(&graph, &mut world, &BfsConfig::default(), 0).unwrap_err();
        assert_eq!(err, CommError::RankDead { rank: 4 });
    }

    #[test]
    fn dead_rank_recovery_is_bit_identical() {
        let spec = GraphSpec::poisson(400, 6.0, 31);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        for (r, c, victim, round) in [(2, 3, 4usize, 3u64), (3, 3, 0, 2), (2, 2, 1, 5)] {
            let grid = ProcessorGrid::new(r, c);
            let graph = DistGraph::build(spec, grid);
            let plan = FaultPlan::seeded(5).kill_rank_at(victim, round);
            let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
            let got = run_resilient(
                &graph,
                &mut world,
                &BfsConfig::default(),
                0,
                &ResilientConfig::default(),
            )
            .unwrap();
            assert_eq!(got.result.levels, expect, "grid {r}x{c} victim {victim}");
            assert_eq!(got.recoveries, 1);
            assert_eq!(got.recovered_ranks, vec![victim]);
            assert!(got.recovery_time > 0.0);
            assert_eq!(world.stats.faults.recoveries, 1);
        }
    }

    #[test]
    fn recovery_under_lossy_exchanges_still_exact() {
        let spec = GraphSpec::poisson(350, 5.0, 47);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(13)
            .with_drop_prob(0.15)
            .kill_rank_at(2, 4);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let got = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                checkpoint_every: 2,
                max_recoveries: 4,
            },
        )
        .unwrap();
        assert_eq!(got.result.levels, expect);
        assert_eq!(got.recoveries, 1);
        assert!(got.result.stats.comm.faults.retransmissions > 0);
    }

    #[test]
    fn max_recoveries_zero_refuses_recovery() {
        let spec = GraphSpec::poisson(200, 5.0, 9);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(3).kill_rank_at(1, 2);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let err = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                checkpoint_every: 1,
                max_recoveries: 0,
            },
        )
        .unwrap_err();
        assert_eq!(err, CommError::RankDead { rank: 1 });
    }

    #[test]
    fn resilient_without_faults_matches_plain_levels() {
        let spec = GraphSpec::poisson(300, 6.0, 61);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut w1 = SimWorld::bluegene(grid);
        let plain = run(&graph, &mut w1, &BfsConfig::default(), 0);
        let mut w2 = SimWorld::bluegene(grid);
        let res = run_resilient(
            &graph,
            &mut w2,
            &BfsConfig::default(),
            0,
            &ResilientConfig::default(),
        )
        .unwrap();
        assert_eq!(res.result.levels, plain.levels);
        assert_eq!(res.recoveries, 0);
        assert!(res.recovered_ranks.is_empty());
        // The mirror traffic rides the control network only.
        assert_eq!(
            res.result.stats.comm.class(OpClass::Expand).received_verts,
            plain.stats.comm.class(OpClass::Expand).received_verts
        );
        assert_eq!(
            res.result.stats.comm.class(OpClass::Fold).received_verts,
            plain.stats.comm.class(OpClass::Fold).received_verts
        );
    }
}
