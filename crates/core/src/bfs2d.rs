//! Distributed level-synchronized BFS with 2D partitioning — the
//! paper's Algorithm 2, on the superstep simulator.
//!
//! Each level runs the five phases of the paper's main loop:
//!
//! 1. frontier formation + global termination check (steps 3–6);
//! 2. **expand** over processor-columns (steps 7–11), by the configured
//!    [`crate::config::ExpandStrategy`];
//! 3. local neighbor discovery over partial edge lists (step 12), with
//!    the sent-neighbors cache;
//! 4. **fold** over processor-rows (steps 13–18), by the configured
//!    [`crate::config::FoldStrategy`];
//! 5. absorb: label unlabeled owned vertices (steps 19–21).
//!
//! Compute time is charged per level from the hash-probe counts; all
//! message accounting happens inside the communication layer.
//!
//! ## Fault tolerance
//!
//! Three entry points share one engine:
//!
//! * [`run`] — the historical panicking API for fault-free worlds;
//! * [`try_run`] — the same run with communication faults surfaced as
//!   typed [`CommError`]s instead of panics;
//! * [`run_resilient`] — level-synchronous **checkpoint/recover**. Every
//!   [`ResilientConfig::checkpoint_every`] levels the per-rank states are
//!   checkpointed, and after every absorb each rank shares its freshly
//!   labeled vertices with its XOR **parity group** (see
//!   [`crate::parity`]) over the control network — which is *not* fault
//!   exempt here: recovery traffic faces the same lossy fabric as data,
//!   with bounded retry/exponential-backoff at the protocol layer. When
//!   an exchange reports [`CommError::RankDead`], a spare node is
//!   brought in ([`SimWorld::revive`]), the dead rank's graph cells are
//!   **regenerated from the graph seed** (the same property that makes
//!   construction grid-independent), its label history is reconstructed
//!   from the surviving group members' logs plus the checkpointed
//!   parity shard, survivors roll back to the checkpoint, and the
//!   search resumes. A second death in the *same* group (e.g. a former
//!   buddy pair inside one group) exceeds the parity budget: the engine
//!   falls back to a **degraded-mode restart** from the last full
//!   checkpoint, or surfaces [`CommError::RecoveryFailed`] when
//!   [`ResilientConfig::degraded_fallback`] is off or retries are
//!   exhausted. Recovery is exact either way: the recovered run
//!   produces bit-identical level labels to a fault-free run, because
//!   absorb only ever labels unreached vertices.

use crate::config::{BfsConfig, DirectionMode, ExpandStrategy, FoldStrategy};
use crate::parity::{GroupShard, ParityGroups};
use crate::state::{gather_levels, RankState};
use crate::stats::{LevelDirection, LevelStats, RunStats};
use bgl_comm::collectives::{
    allgather::allgather_ring,
    alltoall::alltoallv,
    frontier::frontier_gather,
    reduce_scatter::reduce_scatter_union_ring,
    two_phase::{two_phase_expand, two_phase_fold},
    Groups,
};
use bgl_comm::{CommError, EventKind, OpClass, Phase, SimWorld, Vert, VertSet};
use bgl_graph::{DistGraph, Vertex};

/// The outcome of one distributed BFS run.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Global level labels ([`crate::reference::UNREACHED`] where
    /// unreached).
    pub levels: Vec<u32>,
    /// Run statistics (times, volumes, per-level records).
    pub stats: RunStats,
    /// Level of the target, when one was configured and reached.
    pub target_level: Option<u32>,
}

/// Configuration of the checkpoint/recover protocol used by
/// [`run_resilient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientConfig {
    /// Checkpoint the per-rank states every this many levels (minimum 1:
    /// a checkpoint at the start of every level). Zero is rejected by
    /// [`ResilientConfig::validate`].
    pub checkpoint_every: u32,
    /// Give up (returning the underlying [`CommError::RankDead`]) after
    /// this many recoveries (parity reconstructions plus degraded
    /// restarts) in one run.
    pub max_recoveries: u32,
    /// XOR parity-group size `g` (see [`crate::parity`]): any one death
    /// per group of `g` consecutive ranks is reconstructed from the
    /// surviving `g - 1` logs plus the group's parity shard. Minimum 2.
    pub parity_group_size: usize,
    /// Bounded retry budget for each recovery/checkpoint exchange over
    /// the faulty control channel; each failed attempt charges
    /// exponential backoff. Minimum 1.
    pub recovery_attempts: u32,
    /// When parity reconstruction is impossible (second death in the
    /// same group) or its exchange exhausts `recovery_attempts`,
    /// restart the level from the last full checkpoint instead of
    /// failing. Off = surface [`CommError::RecoveryFailed`].
    pub degraded_fallback: bool,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 1,
            max_recoveries: 8,
            parity_group_size: 4,
            recovery_attempts: 3,
            degraded_fallback: true,
        }
    }
}

impl ResilientConfig {
    /// Reject nonsensical configurations with a typed error instead of
    /// silently clamping (a `checkpoint_every` of 0 used to be bumped
    /// to 1 inside the engine loop). Called by [`run_resilient`] before
    /// any work starts.
    pub fn validate(&self) -> Result<(), CommError> {
        if self.checkpoint_every == 0 {
            return Err(CommError::InvalidConfig {
                reason: "checkpoint_every must be nonzero",
            });
        }
        if self.parity_group_size < 2 {
            return Err(CommError::InvalidConfig {
                reason: "parity_group_size must be at least 2 (a singleton group has no survivors)",
            });
        }
        if self.recovery_attempts == 0 {
            return Err(CommError::InvalidConfig {
                reason: "recovery_attempts must be at least 1",
            });
        }
        Ok(())
    }
}

/// A [`BfsResult`] plus the recovery log of a [`run_resilient`] run.
#[derive(Debug, Clone)]
pub struct ResilientBfsResult {
    /// The search result — bit-identical levels to a fault-free run.
    pub result: BfsResult,
    /// Number of rank deaths recovered from via parity reconstruction.
    pub recoveries: u32,
    /// Times the engine fell back to a degraded-mode restart from the
    /// last full checkpoint (parity budget exceeded or recovery
    /// exchange retries exhausted).
    pub degraded_restarts: u32,
    /// The ranks that died and were rebuilt by parity reconstruction,
    /// in recovery order (degraded restarts are not listed here — they
    /// restore everyone from the checkpoint).
    pub recovered_ranks: Vec<usize>,
    /// Simulated time spent inside recovery itself (graph regeneration
    /// handoff + parity log/shard transfer, including control-channel
    /// retransmissions and backoff); the replayed levels show up in the
    /// ordinary sim time instead.
    pub recovery_time: f64,
}

/// Per-rank fold output: either one payload list per sender (direct
/// all-to-all — duplicate elimination happens at the receiver, one probe
/// per *occurrence*) or a single union set per rank (the union-fold
/// collectives, one probe per *element*).
pub(crate) enum FoldOut {
    /// One received list per sending row peer.
    PerSender(Vec<Vec<Vec<Vert>>>),
    /// One deduplicated union set per rank.
    Union(Vec<VertSet>),
}

/// What one level of the main loop decided.
enum LevelOutcome {
    /// Global frontier empty: traversal complete.
    Exhausted,
    /// The configured target was labeled this level.
    TargetFound,
    /// Proceed to the next level.
    Advance,
}

/// Run Algorithm 2 from `source` on `graph` under `config`, inside
/// `world`. The world's grid must match the graph's.
///
/// Panics if the world reports a communication fault; use [`try_run`] or
/// [`run_resilient`] when a [`bgl_comm::FaultPlan`] is active.
pub fn run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> BfsResult {
    try_run(graph, world, config, source).unwrap_or_else(|e| {
        // bgl-lint: allow(r1, reason = "documented infallible convenience wrapper; fault-injecting callers use try_run or run_resilient")
        panic!(
            "communication fault during BFS: {e} (use try_run or run_resilient with a FaultPlan)"
        )
    })
}

/// [`run`] with communication faults surfaced as typed errors. Under a
/// plan of message faults only (drops/truncations/duplicates) the
/// retransmission protocol is transparent — the result equals a
/// fault-free run, just slower; a rank death surfaces as
/// [`CommError::RankDead`].
pub fn try_run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> Result<BfsResult, CommError> {
    engine(graph, world, config, source, None).map(|r| r.result)
}

/// Fault-tolerant BFS: [`try_run`] plus checkpoint/recover for rank
/// deaths, per `resilience`. See the module docs for the protocol.
pub fn run_resilient(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
    resilience: &ResilientConfig,
) -> Result<ResilientBfsResult, CommError> {
    engine(graph, world, config, source, Some(resilience))
}

/// One level of the paper's main loop over all simulated ranks. Pushes
/// this level's [`LevelStats`] and sets `target_level` before reporting
/// [`LevelOutcome::TargetFound`].
#[allow(clippy::too_many_arguments)]
fn level_pass(
    world: &mut SimWorld,
    config: &BfsConfig,
    states: &mut [RankState<'_>],
    row_groups: &Groups,
    col_groups: &Groups,
    n: u64,
    level: u32,
    level_records: &mut Vec<LevelStats>,
    target_level: &mut Option<u32>,
) -> Result<LevelOutcome, CommError> {
    let grid = world.grid();
    let time_at_start = world.time();
    let comm_at_start = world.comm_time();
    let codec_at_start = world.codec_time();
    let comm_snapshot = world.stats.clone();

    // -- 1. termination check on global frontier size. With direction
    // optimization on, the same tree round also allreduces the frontier
    // edge mass and the unexplored stored-entry count (a 3-word payload
    // instead of 1 — no extra communication rounds), and every rank
    // derives the level's direction from the identical global sums.
    let frontier_sizes: Vec<u64> = states.iter().map(|s| s.frontier_len()).collect();
    let (global_frontier, bottom_up) = if config.direction.mode == DirectionMode::TopDown {
        (world.allreduce_sum(&frontier_sizes), false)
    } else {
        let mf: Vec<u64> = states.iter().map(|s| s.frontier_degree()).collect();
        let mu: Vec<u64> = states.iter().map(|s| s.unexplored()).collect();
        let (gf, mf_hat, mu_hat) = world.allreduce_sum3(&frontier_sizes, &mf, &mu);
        let bu = config
            .direction
            .wants_bottom_up(gf, mf_hat, mu_hat, n, grid.rows() as u64);
        (gf, bu)
    };
    world.trace_span(Phase::Termination, level, time_at_start);
    if global_frontier == 0 {
        return Ok(LevelOutcome::Exhausted);
    }

    let blocks: Vec<Vec<Vec<Vert>>> = if bottom_up {
        // -- 2. (bottom-up) frontier gather over processor-columns:
        // every rank ends with the union of its column's frontiers —
        // exactly the vertices that can parent the rows it stores.
        let t_gather = world.time();
        let contributions: Vec<Vec<Vert>> = states.iter().map(|s| s.frontier.clone()).collect();
        let gathered = frontier_gather(world, OpClass::Expand, col_groups, contributions)?;
        world.trace_span(Phase::Gather, level, t_gather);

        // -- 3. (bottom-up) discover: scan unvisited stored rows,
        // early-exit on the first frontier parent.
        let t_discover = world.time();
        let blocks = config
            .engine
            .zip_map(states, &gathered, |s, fs| s.discover_bottom_up(fs));
        drop(gathered);
        world.trace_span(Phase::Discover, level, t_discover);
        blocks
    } else {
        // -- 2. expand.
        let t_expand = world.time();
        let fbar: Vec<Vec<Vec<Vert>>> = match config.expand {
            ExpandStrategy::Targeted => {
                let sends: Vec<Vec<(usize, Vec<Vert>)>> = config
                    .engine
                    .map_mut(states, RankState::expand_sends_targeted);
                alltoallv(world, OpClass::Expand, col_groups, sends)?
                    .into_iter()
                    .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
            ExpandStrategy::AllGatherRing => {
                let contributions: Vec<Vec<Vert>> =
                    states.iter().map(|s| s.frontier.clone()).collect();
                allgather_ring(world, OpClass::Expand, col_groups, contributions)?
                    .into_iter()
                    .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
            ExpandStrategy::TwoPhaseRing => {
                let contributions: Vec<Vec<Vert>> =
                    states.iter().map(|s| s.frontier.clone()).collect();
                two_phase_expand(world, OpClass::Expand, col_groups, contributions)?
                    .into_iter()
                    .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
        };

        world.trace_span(Phase::Expand, level, t_expand);

        // -- 3. local discovery. Zero-duration span in the simulator:
        // the probe costs are charged in the absorb phase's hash pass.
        let t_discover = world.time();
        let blocks: Vec<Vec<Vec<Vert>>> = config.engine.zip_map(states, &fbar, |s, lists| {
            let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
            s.discover(&refs)
        });
        drop(fbar);
        world.trace_span(Phase::Discover, level, t_discover);
        blocks
    };

    // -- 4. fold.
    let t_fold = world.time();
    let nbar: FoldOut = match config.fold {
        FoldStrategy::DirectAllToAll => {
            let sends: Vec<Vec<(usize, Vec<Vert>)>> = blocks
                .into_iter()
                .enumerate()
                .map(|(rank, bs)| {
                    let i = grid.row_of(rank);
                    bs.into_iter()
                        .enumerate()
                        .filter(|(_, b)| !b.is_empty())
                        .map(|(m, b)| (grid.rank_of(i, m), b))
                        .collect()
                })
                .collect();
            FoldOut::PerSender(
                alltoallv(world, OpClass::Fold, row_groups, sends)?
                    .into_iter()
                    .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                    .collect(),
            )
        }
        FoldStrategy::ReduceScatterUnion => FoldOut::Union(reduce_scatter_union_ring(
            world,
            OpClass::Fold,
            row_groups,
            blocks,
        )?),
        FoldStrategy::TwoPhaseRing => {
            FoldOut::Union(two_phase_fold(world, OpClass::Fold, row_groups, blocks)?)
        }
    };

    world.trace_span(Phase::Fold, level, t_fold);

    // -- 5. absorb + compute charge.
    let t_absorb = world.time();
    match &nbar {
        FoldOut::PerSender(lists) => {
            let _: Vec<u64> = config.engine.zip_map(states, lists, |s, lists| {
                let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
                s.absorb(&refs, level + 1)
            });
        }
        FoldOut::Union(sets) => {
            let _: Vec<u64> = config
                .engine
                .zip_map(states, sets, |s, set| s.absorb_set(set, level + 1));
        }
    }
    drop(nbar);
    let probes: Vec<u64> = states.iter_mut().map(RankState::take_probes).collect();
    let level_probes: u64 = probes.iter().sum();
    world.hash_phase(&probes);

    // -- target detection.
    if let Some(t) = config.target {
        let flags: Vec<bool> = states.iter().map(|s| s.level_of(t).is_some()).collect();
        if world.allreduce_or(&flags) {
            *target_level = Some(level + 1);
        }
    }
    // The absorb span also covers the target-detection allreduce, so
    // the level's phase spans partition its whole interval.
    world.trace_span(Phase::Absorb, level, t_absorb);
    world.trace_span(Phase::Level, level, time_at_start);

    let delta = world.stats.minus(&comm_snapshot);
    level_records.push(LevelStats {
        level,
        frontier: global_frontier,
        expand_received: delta.class(OpClass::Expand).received_verts,
        fold_received: delta.class(OpClass::Fold).received_verts,
        dups_eliminated: delta.total_dups_eliminated(),
        sim_time: world.time() - time_at_start,
        comm_time: world.comm_time() - comm_at_start,
        list_unions: delta.setops.list_unions,
        bitmap_unions: delta.setops.bitmap_unions,
        densify_switches: delta.setops.densify_switches,
        logical_bytes: delta.total_logical_bytes(),
        wire_bytes: delta.total_wire_bytes(),
        codec_time: world.codec_time() - codec_at_start,
        direction: if bottom_up {
            LevelDirection::BottomUp
        } else {
            LevelDirection::TopDown
        },
        td_probes: if bottom_up { 0 } else { level_probes },
        bu_probes: if bottom_up { level_probes } else { 0 },
    });

    if target_level.is_some() {
        return Ok(LevelOutcome::TargetFound);
    }
    Ok(LevelOutcome::Advance)
}

/// One encoded delta-log entry: `[level, count, verts...]` — the unit
/// [`GroupShard::absorb`] XORs and the framing [`encode_deltas`]
/// flattens, so shard contributions and flattened logs agree word for
/// word.
fn encode_entry(level: u32, verts: &[Vertex]) -> Vec<Vert> {
    let mut entry = Vec::with_capacity(2 + verts.len());
    entry.push(level as Vert);
    entry.push(verts.len() as Vert);
    entry.extend_from_slice(verts);
    entry
}

/// Per-rank control inboxes: for each rank, `(sender, payload)` pairs
/// in stable sender order.
type ControlInboxes = Vec<Vec<(usize, Vec<Vert>)>>;

/// Run a control-network exchange with bounded retry: transient
/// failures ([`CommError::Unreachable`], [`CommError::Timeout`]) charge
/// exponential backoff and re-roll the control fault schedule (each
/// attempt is a fresh control round); permanent errors propagate
/// immediately. Returns the last transient error when `attempts` runs
/// out.
fn control_exchange_with_retry(
    world: &mut SimWorld,
    sends: Vec<(usize, usize, Vec<Vert>)>,
    attempts: u32,
) -> Result<ControlInboxes, CommError> {
    let mut last = None;
    for retry in 0..attempts.max(1) {
        match world.exchange(OpClass::Control, sends.clone()) {
            Ok(inboxes) => return Ok(inboxes),
            Err(e @ (CommError::Unreachable { .. } | CommError::Timeout { .. })) => {
                world.charge_recovery_backoff(retry);
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    // bgl-lint: allow(r1, reason = "attempts.max(1) guarantees the loop body ran and set `last` before falling through")
    Err(last.expect("attempts >= 1 so at least one attempt ran"))
}

/// After every absorb, append each rank's freshly labeled vertices (its
/// new frontier, tagged `next_level`) to the delta logs, fold the
/// encoded entry into the rank's group parity shard, and ship it to the
/// `g - 1` group peers over the (faulty, retried) control network.
/// Empty frontiers are absorbed but not shipped — peers synthesize the
/// `[level, 0]` entry locally, it carries no information.
fn parity_update(
    world: &mut SimWorld,
    states: &[RankState<'_>],
    next_level: u32,
    deltas: &mut [Vec<(u32, Vec<Vertex>)>],
    groups: &ParityGroups,
    shards: &mut [GroupShard],
    attempts: u32,
) -> Result<(), CommError> {
    let mut sends = Vec::new();
    for (rank, st) in states.iter().enumerate() {
        deltas[rank].push((next_level, st.frontier.clone()));
        let entry = encode_entry(next_level, &st.frontier);
        shards[groups.group_of(rank)].absorb(groups.member_index(rank), &entry);
        if !st.frontier.is_empty() {
            for peer in groups.peers(rank) {
                sends.push((rank, peer, entry.clone()));
            }
        }
    }
    control_exchange_with_retry(world, sends, attempts)?;
    Ok(())
}

/// Flatten the mirrored delta log up to `through_level` into one wire
/// payload: `[level, count, verts...]*`.
fn encode_deltas(deltas: &[(u32, Vec<Vertex>)], through_level: u32) -> Vec<Vert> {
    let mut payload = Vec::new();
    for (lvl, verts) in deltas {
        if *lvl > through_level {
            continue;
        }
        payload.push(*lvl as Vert);
        payload.push(verts.len() as Vert);
        payload.extend_from_slice(verts);
    }
    payload
}

/// Rebuild a revived rank's [`RankState`] from the wire-encoded delta
/// log: labels for every delta level, frontier from the checkpoint
/// level's delta.
fn replay_deltas<'g>(mut st: RankState<'g>, payload: &[Vert], ckpt_level: u32) -> RankState<'g> {
    let owned = st.rank_graph().owned.clone();
    let mut i = 0usize;
    while i < payload.len() {
        let lvl = payload[i] as u32;
        let count = payload[i + 1] as usize;
        let verts = &payload[i + 2..i + 2 + count];
        for &v in verts {
            debug_assert!(owned.contains(&v), "mirrored delta for a non-owned vertex");
            st.levels[(v - owned.start) as usize] = lvl;
        }
        if lvl == ckpt_level {
            st.frontier = verts.to_vec();
        }
        i += 2 + count;
    }
    st
}

/// The shared engine behind [`run`], [`try_run`] and [`run_resilient`].
/// With `resilience == None` the communication sequence is identical to
/// the historical fault-free `run` — no checkpoints, no mirror traffic.
fn engine(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
    resilience: Option<&ResilientConfig>,
) -> Result<ResilientBfsResult, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert!(source < graph.spec.n, "source out of range");
    let p = grid.len();

    // One decision drives both host-parallel layers: the per-rank
    // compute fan-out and the exchange precompute (wire encode + cost
    // attribution) in the communication layer. Bit-identical either way.
    world.set_parallel_exchange(config.engine.parallel(p));

    let row_groups = Groups::rows_of(grid);
    let col_groups = Groups::cols_of(grid);

    let mut states: Vec<RankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| RankState::new(rg, graph.partition, config.sent_neighbors))
        .collect();
    let owner = graph.partition.owner_of(source);
    states[owner].init_source(source);

    let mut level_records = Vec::new();
    let mut target_level = None;

    // Checkpoint/recover machinery (inert when `resilience` is None).
    let groups = ParityGroups::new(resilience.map_or(2, |rc| rc.parity_group_size), p.max(1));
    let mut snapshot: Vec<RankState<'_>> = Vec::new();
    let mut ckpt_level: u32 = 0;
    let mut deltas: Vec<Vec<(u32, Vec<Vertex>)>> = vec![Vec::new(); p];
    let mut shards: Vec<GroupShard> = Vec::new();
    let mut shards_ckpt: Vec<GroupShard> = Vec::new();
    if let Some(rc) = resilience {
        rc.validate()?;
        // Recovery traffic is not fault-exempt: control exchanges face
        // the plan (on their own round counter) with retry on top.
        world.set_control_faultable(true);
        shards = (0..groups.count())
            .map(|g| GroupShard::new(groups.members(g).len()))
            .collect();
        // The source label is the level-0 delta, parity included.
        deltas[owner].push((0, vec![source]));
        shards[groups.group_of(owner)]
            .absorb(groups.member_index(owner), &encode_entry(0, &[source]));
    }
    let mut recoveries = 0u32;
    let mut degraded_restarts = 0u32;
    let mut recovered_ranks: Vec<usize> = Vec::new();
    let mut recovery_time = 0.0f64;

    let mut level: u32 = 0;
    loop {
        if config.max_levels > 0 && level >= config.max_levels {
            break;
        }
        if let Some(rc) = resilience {
            if level.is_multiple_of(rc.checkpoint_every) {
                snapshot = states.clone();
                shards_ckpt = shards.clone();
                ckpt_level = level;
                let t = world.time();
                world
                    .trace_mut()
                    .world_event(EventKind::Checkpoint { level }, t, t);
            }
        }

        match level_pass(
            world,
            config,
            &mut states,
            &row_groups,
            &col_groups,
            graph.spec.n,
            level,
            &mut level_records,
            &mut target_level,
        ) {
            Ok(LevelOutcome::Exhausted) | Ok(LevelOutcome::TargetFound) => break,
            Ok(LevelOutcome::Advance) => {
                if let Some(rc) = resilience {
                    parity_update(
                        world,
                        &states,
                        level + 1,
                        &mut deltas,
                        &groups,
                        &mut shards,
                        rc.recovery_attempts,
                    )?;
                }
                level += 1;
            }
            Err(CommError::RankDead { rank }) => {
                let Some(rc) = resilience else {
                    return Err(CommError::RankDead { rank });
                };
                if recoveries + degraded_restarts >= rc.max_recoveries {
                    return Err(CommError::RankDead { rank });
                }
                let t0 = world.time();
                let group = groups.group_of(rank);
                // Deaths fire per data round, so several ranks can be
                // dead at once. One death per group is parity-budget;
                // a second in the *same* group forces degraded mode.
                // Deaths in other groups are handled by later passes
                // through this arm (the next exchange re-reports them).
                let second_in_group = world
                    .dead_ranks()
                    .into_iter()
                    .any(|r| r != rank && groups.group_of(r) == group);

                let mut restored: Option<RankState<'_>> = None;
                if !second_in_group {
                    // A spare node takes over the dead rank's coordinate.
                    world.revive(rank);

                    // Its graph cells are regenerated from the seed — the
                    // same determinism that makes construction
                    // grid-independent makes every cell recomputable.
                    let rebuilt = bgl_graph::rebuild_rank(&graph.spec, grid, rank);
                    assert_eq!(
                        rebuilt, graph.ranks[rank],
                        "seed regeneration must reproduce the dead rank's graph share"
                    );

                    // Surviving group members ship their flattened logs
                    // to the revived rank; the highest survivor also
                    // ships the checkpointed parity shard. All of it
                    // rides the faulty control network with bounded
                    // retry — visible as control retransmits in traces.
                    let mi = groups.member_index(rank);
                    let survivors: Vec<usize> =
                        groups.members(group).filter(|&m| m != rank).collect();
                    let mut sends: Vec<(usize, usize, Vec<Vert>)> = survivors
                        .iter()
                        .map(|&m| (m, rank, encode_deltas(&deltas[m], ckpt_level)))
                        .collect();
                    let shard_holder = survivors.last().copied();
                    if let Some(h) = shard_holder {
                        sends.push((h, rank, shards_ckpt[group].words().to_vec()));
                    }
                    match control_exchange_with_retry(world, sends, rc.recovery_attempts) {
                        Ok(inboxes) => {
                            // Split the inbox back into survivor logs and
                            // the shard: inboxes are sorted by sender and
                            // stable, so the shard holder's log precedes
                            // its shard payload.
                            let mut logs: Vec<(usize, Vec<Vert>)> = Vec::new();
                            let mut shard_words: Vec<Vert> = Vec::new();
                            for (from, payload) in inboxes[rank].clone() {
                                if Some(from) == shard_holder
                                    && logs.iter().any(|(m, _)| *m == groups.member_index(from))
                                {
                                    shard_words = payload;
                                } else {
                                    logs.push((groups.member_index(from), payload));
                                }
                            }
                            if shard_holder.is_some() {
                                assert_eq!(
                                    shard_words,
                                    shards_ckpt[group].words(),
                                    "received parity shard must match the checkpointed shard"
                                );
                            }

                            // The parity identity: dead log = shard XOR
                            // survivor logs, truncated to its recorded
                            // length.
                            let survivor_refs: Vec<(usize, &[Vert])> =
                                logs.iter().map(|(m, l)| (*m, l.as_slice())).collect();
                            let reconstructed = shards_ckpt[group].reconstruct(mi, &survivor_refs);
                            assert_eq!(
                                reconstructed,
                                encode_deltas(&deltas[rank], ckpt_level),
                                "parity reconstruction must reproduce the dead rank's log"
                            );

                            // Rebuild the dead rank's state purely from
                            // regenerated graph + reconstructed log
                            // (never from its lost memory), then check
                            // it against the checkpoint it must equal.
                            let fresh = RankState::new(
                                &graph.ranks[rank],
                                graph.partition,
                                config.sent_neighbors,
                            );
                            let replayed = replay_deltas(fresh, &reconstructed, ckpt_level);
                            assert_eq!(
                                replayed.levels, snapshot[rank].levels,
                                "replayed labels must match the checkpointed labels"
                            );
                            assert_eq!(
                                replayed.frontier, snapshot[rank].frontier,
                                "replayed frontier must match the checkpointed frontier"
                            );
                            restored = Some(replayed);
                        }
                        // Retries exhausted against the faulty channel:
                        // fall through to degraded mode (or fail).
                        Err(CommError::Unreachable { .. })
                        | Err(CommError::Timeout { .. })
                        | Err(CommError::NoRoute { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }

                if let Some(restored) = restored {
                    // Parity recovery: survivors roll back to the
                    // checkpoint; the revived rank joins with its
                    // replayed state (its sent-neighbors cache starts
                    // cold — resends are harmless because absorb only
                    // labels unreached vertices).
                    recoveries += 1;
                    recovered_ranks.push(rank);
                    world.note_recovery();
                    states = snapshot.clone();
                    states[rank] = restored;
                } else {
                    // Degraded mode: every rank — dead or alive — is
                    // restored from the last full checkpoint (stable
                    // storage), charged as a memcpy of the state bytes.
                    if !rc.degraded_fallback {
                        return Err(CommError::RecoveryFailed {
                            rank,
                            attempts: rc.recovery_attempts,
                        });
                    }
                    for r in world.dead_ranks() {
                        world.revive(r);
                    }
                    world.revive(rank); // no-op if already revived above
                    degraded_restarts += 1;
                    world.note_recovery();
                    let bytes: Vec<u64> = snapshot
                        .iter()
                        .map(|s| (s.levels.len() * 4 + s.frontier.len() * 8) as u64)
                        .collect();
                    world.memcpy_phase(&bytes);
                    states = snapshot.clone();
                }

                // Common rollback: records, logs and shards return to
                // the checkpoint; the search resumes from there.
                level_records.retain(|r| r.level < ckpt_level);
                for d in deltas.iter_mut() {
                    d.retain(|(l, _)| *l <= ckpt_level);
                }
                shards = shards_ckpt.clone();
                target_level = None;
                level = ckpt_level;
                let t1 = world.time();
                world
                    .trace_mut()
                    .world_event(EventKind::Recovery { rank: rank as u32 }, t0, t1);
                world.trace_span(Phase::Recovery, ckpt_level, t0);
                recovery_time += world.time() - t0;
            }
            Err(e) => return Err(e),
        }
    }

    // The source's own level-0 target case.
    if let Some(t) = config.target {
        if t == source {
            target_level = Some(0);
        }
    }

    let levels = gather_levels(&states, graph.spec.n);
    let reached = states.iter().map(|s| s.reached()).sum();
    Ok(ResilientBfsResult {
        result: BfsResult {
            stats: RunStats {
                levels: level_records,
                sim_time: world.time(),
                comm_time: world.comm_time(),
                compute_time: world.compute_time(),
                codec_time: world.codec_time(),
                reached,
                comm: world.stats.clone(),
                p,
            },
            target_level,
            levels,
        },
        recoveries,
        degraded_restarts,
        recovered_ranks,
        recovery_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExpandStrategy, FoldStrategy};
    use crate::reference;
    use bgl_comm::{FaultPlan, ProcessorGrid};
    use bgl_graph::GraphSpec;

    fn check_against_oracle(spec: GraphSpec, grid: ProcessorGrid, config: BfsConfig) {
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &config, 0);
        assert_eq!(got.levels, expect, "grid {grid:?} config {config:?}");
        assert_eq!(
            got.stats.reached,
            expect
                .iter()
                .filter(|&&l| l != reference::UNREACHED)
                .count() as u64
        );
    }

    #[test]
    fn matches_oracle_all_strategies() {
        let spec = GraphSpec::poisson(300, 6.0, 31);
        let grid = ProcessorGrid::new(3, 4);
        for expand in [
            ExpandStrategy::Targeted,
            ExpandStrategy::AllGatherRing,
            ExpandStrategy::TwoPhaseRing,
        ] {
            for fold in [
                FoldStrategy::DirectAllToAll,
                FoldStrategy::ReduceScatterUnion,
                FoldStrategy::TwoPhaseRing,
            ] {
                let config = BfsConfig {
                    expand,
                    fold,
                    ..BfsConfig::default()
                };
                check_against_oracle(spec, grid, config);
            }
        }
    }

    #[test]
    fn matches_oracle_across_grids() {
        let spec = GraphSpec::poisson(250, 5.0, 77);
        for (r, c) in [(1, 1), (1, 6), (6, 1), (2, 3), (4, 4), (5, 2)] {
            check_against_oracle(spec, ProcessorGrid::new(r, c), BfsConfig::default());
        }
    }

    #[test]
    fn matches_oracle_without_sent_cache() {
        let spec = GraphSpec::poisson(200, 5.0, 13);
        let config = BfsConfig {
            sent_neighbors: false,
            ..BfsConfig::default()
        };
        check_against_oracle(spec, ProcessorGrid::new(2, 2), config);
    }

    #[test]
    fn target_stops_early() {
        let spec = GraphSpec::poisson(400, 8.0, 5);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        // Pick a vertex at distance >= 2.
        let t = (0..400u64)
            .find(|&v| expect[v as usize] >= 2 && expect[v as usize] != reference::UNREACHED)
            .expect("target exists");
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig::default().with_target(t);
        let got = run(&graph, &mut world, &config, 0);
        assert_eq!(got.target_level, Some(expect[t as usize]));
        // Stopped at the target's level, not the full traversal.
        assert_eq!(
            got.stats.num_levels() as u32,
            expect[t as usize],
            "levels executed"
        );
    }

    #[test]
    fn unreachable_target_traverses_component() {
        // A graph so sparse it is disconnected; target in another
        // component => full component traversal (Figure 6 worst case).
        let spec = GraphSpec::poisson(300, 1.5, 3);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let t = (0..300u64).find(|&v| expect[v as usize] == reference::UNREACHED);
        let Some(t) = t else {
            panic!("expected a disconnected vertex at k=1.5");
        };
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default().with_target(t), 0);
        assert_eq!(got.target_level, None);
        assert_eq!(got.levels, expect);
    }

    #[test]
    fn source_is_target() {
        let spec = GraphSpec::poisson(100, 4.0, 2);
        let grid = ProcessorGrid::new(1, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default().with_target(7), 7);
        assert_eq!(got.target_level, Some(0));
    }

    #[test]
    fn level_stats_reconcile() {
        let spec = GraphSpec::poisson(300, 6.0, 41);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default(), 0);
        // Sum of level sim_time == total sim time (termination check of
        // the final empty level excluded — allow small slack).
        let per_level: f64 = got.stats.levels.iter().map(|l| l.sim_time).sum();
        assert!(per_level <= got.stats.sim_time + 1e-12);
        assert!(got.stats.sim_time > 0.0);
        assert!(got.stats.comm_time > 0.0);
        assert!(got.stats.compute_time > 0.0);
        // Frontier sizes sum to reached count.
        let frontier_sum: u64 = got.stats.levels.iter().map(|l| l.frontier).sum();
        assert_eq!(frontier_sum, got.stats.reached);
        // Expand/fold volumes are recorded per level.
        assert!(got.stats.levels.iter().any(|l| l.fold_received > 0));
    }

    #[test]
    fn union_fold_eliminates_duplicates_on_dense_graph() {
        let spec = GraphSpec::poisson(200, 20.0, 17);
        let grid = ProcessorGrid::new(2, 4);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(
            &graph,
            &mut world,
            &BfsConfig {
                fold: FoldStrategy::TwoPhaseRing,
                ..BfsConfig::default()
            },
            0,
        );
        assert!(
            got.stats.comm.total_dups_eliminated() > 0,
            "dense graph must produce fold duplicates"
        );
        assert!(got.stats.redundancy_ratio_percent() > 0.0);
    }

    #[test]
    fn max_levels_caps_search() {
        let spec = GraphSpec::poisson(500, 3.0, 19);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            max_levels: 2,
            ..BfsConfig::default()
        };
        let got = run(&graph, &mut world, &config, 0);
        assert!(got.stats.num_levels() <= 2);
        // Levels beyond 2 must be unlabeled.
        assert!(got
            .levels
            .iter()
            .all(|&l| l == reference::UNREACHED || l <= 2));
    }

    // ---- direction optimization ----

    #[test]
    fn direction_optimized_matches_top_down_and_switches() {
        let spec = GraphSpec::poisson(600, 8.0, 31);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut w_td = SimWorld::bluegene(grid);
        let td = run(&graph, &mut w_td, &BfsConfig::paper_optimized(), 0);
        let mut w_dir = SimWorld::bluegene(grid);
        let dir = run(&graph, &mut w_dir, &BfsConfig::direction_optimized(), 0);
        assert_eq!(td.levels, dir.levels, "levels must be bit-identical");
        assert_eq!(td.stats.num_levels(), dir.stats.num_levels());
        for (a, b) in td.stats.levels.iter().zip(&dir.stats.levels) {
            assert_eq!(a.frontier, b.frontier, "level {}", a.level);
        }
        let (_, bu) = dir.stats.direction_split();
        assert!(bu > 0, "a dense low-diameter graph must go bottom-up");
        assert!(
            dir.stats.total_probes() < td.stats.total_probes(),
            "bottom-up levels must save probes: {} vs {}",
            dir.stats.total_probes(),
            td.stats.total_probes()
        );
        // Probe attribution is exclusive per level.
        assert!(dir
            .stats
            .levels
            .iter()
            .all(|l| l.td_probes == 0 || l.bu_probes == 0));
    }

    #[test]
    fn forced_bottom_up_matches_oracle() {
        let spec = GraphSpec::poisson(300, 6.0, 31);
        let grid = ProcessorGrid::new(3, 2);
        for fold in [
            FoldStrategy::DirectAllToAll,
            FoldStrategy::ReduceScatterUnion,
            FoldStrategy::TwoPhaseRing,
        ] {
            let config = BfsConfig {
                fold,
                direction: crate::config::DirectionPolicy::bottom_up(),
                ..BfsConfig::default()
            };
            check_against_oracle(spec, grid, config);
        }
        // Without the sent cache bottom-up re-probes labeled rows but
        // must still land on the oracle labels.
        let config = BfsConfig {
            sent_neighbors: false,
            direction: crate::config::DirectionPolicy::bottom_up(),
            ..BfsConfig::default()
        };
        check_against_oracle(spec, grid, config);
    }

    #[test]
    fn direction_optimized_across_grids() {
        let spec = GraphSpec::poisson(500, 7.0, 77);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        for (r, c) in [(1, 1), (1, 4), (4, 1), (2, 3), (4, 4)] {
            let grid = ProcessorGrid::new(r, c);
            let graph = DistGraph::build(spec, grid);
            let mut world = SimWorld::bluegene(grid);
            let got = run(&graph, &mut world, &BfsConfig::direction_optimized(), 0);
            assert_eq!(got.levels, expect, "grid {r}x{c}");
        }
    }

    #[test]
    fn direction_optimized_recovery_is_bit_identical() {
        let spec = GraphSpec::poisson(400, 6.0, 31);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(5).with_drop_prob(0.1).kill_rank_at(4, 3);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let got = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::direction_optimized(),
            0,
            &ResilientConfig::default(),
        )
        .unwrap();
        // The revived rank rejoins with a cold sent cache and a reset
        // unexplored counter; that may shift later direction choices
        // but never the labels.
        assert_eq!(got.result.levels, expect);
        assert_eq!(got.recoveries, 1);
    }

    // ---- fault injection and recovery ----

    #[test]
    fn none_fault_plan_is_byte_identical() {
        let spec = GraphSpec::poisson(300, 6.0, 23);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut clean = SimWorld::bluegene(grid);
        let a = run(&graph, &mut clean, &BfsConfig::default(), 0);
        let mut gated = SimWorld::bluegene(grid).with_fault_plan(FaultPlan::none());
        let b = try_run(&graph, &mut gated, &BfsConfig::default(), 0).unwrap();
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.stats.sim_time, b.stats.sim_time);
        assert_eq!(a.stats.comm, b.stats.comm);
    }

    #[test]
    fn lossy_run_is_transparent_but_slower() {
        let spec = GraphSpec::poisson(300, 6.0, 37);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut clean = SimWorld::bluegene(grid);
        let a = run(&graph, &mut clean, &BfsConfig::default(), 0);
        let plan = FaultPlan::seeded(7)
            .with_drop_prob(0.2)
            .with_truncate_prob(0.05)
            .with_duplicate_prob(0.05);
        let mut lossy = SimWorld::bluegene(grid).with_fault_plan(plan);
        let b = try_run(&graph, &mut lossy, &BfsConfig::default(), 0).unwrap();
        assert_eq!(a.levels, b.levels, "retransmission must be transparent");
        assert!(b.stats.sim_time > a.stats.sim_time, "retries cost time");
        assert!(b.stats.comm.faults.retransmissions > 0);
        assert!(b.stats.comm.faults.drops_injected > 0);
        // Logical message accounting is unchanged by the fault protocol.
        assert_eq!(
            a.stats.comm.class(OpClass::Fold).received_verts,
            b.stats.comm.class(OpClass::Fold).received_verts
        );
    }

    #[test]
    fn rank_death_without_resilience_is_typed_error() {
        let spec = GraphSpec::poisson(300, 6.0, 31);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(5).kill_rank_at(4, 3);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let err = try_run(&graph, &mut world, &BfsConfig::default(), 0).unwrap_err();
        assert_eq!(err, CommError::RankDead { rank: 4 });
    }

    #[test]
    fn dead_rank_recovery_is_bit_identical() {
        let spec = GraphSpec::poisson(400, 6.0, 31);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        for (r, c, victim, round) in [(2, 3, 4usize, 3u64), (3, 3, 0, 2), (2, 2, 1, 5)] {
            let grid = ProcessorGrid::new(r, c);
            let graph = DistGraph::build(spec, grid);
            let plan = FaultPlan::seeded(5).kill_rank_at(victim, round);
            let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
            let got = run_resilient(
                &graph,
                &mut world,
                &BfsConfig::default(),
                0,
                &ResilientConfig::default(),
            )
            .unwrap();
            assert_eq!(got.result.levels, expect, "grid {r}x{c} victim {victim}");
            assert_eq!(got.recoveries, 1);
            assert_eq!(got.recovered_ranks, vec![victim]);
            assert!(got.recovery_time > 0.0);
            assert_eq!(world.stats.faults.recoveries, 1);
        }
    }

    #[test]
    fn recovery_under_lossy_exchanges_still_exact() {
        let spec = GraphSpec::poisson(350, 5.0, 47);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(13)
            .with_drop_prob(0.15)
            .kill_rank_at(2, 4);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let got = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                checkpoint_every: 2,
                max_recoveries: 4,
                ..ResilientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(got.result.levels, expect);
        assert_eq!(got.recoveries, 1);
        assert!(got.result.stats.comm.faults.retransmissions > 0);
    }

    #[test]
    fn max_recoveries_zero_refuses_recovery() {
        let spec = GraphSpec::poisson(200, 5.0, 9);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(3).kill_rank_at(1, 2);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let err = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                checkpoint_every: 1,
                max_recoveries: 0,
                ..ResilientConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, CommError::RankDead { rank: 1 });
    }

    #[test]
    fn zero_checkpoint_interval_is_rejected() {
        let spec = GraphSpec::poisson(100, 4.0, 9);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let err = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                checkpoint_every: 0,
                ..ResilientConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            CommError::InvalidConfig {
                reason: "checkpoint_every must be nonzero"
            }
        );
        // Singleton parity groups and zero retry budgets are equally
        // nonsensical.
        for rc in [
            ResilientConfig {
                parity_group_size: 1,
                ..ResilientConfig::default()
            },
            ResilientConfig {
                recovery_attempts: 0,
                ..ResilientConfig::default()
            },
        ] {
            assert!(matches!(
                rc.validate(),
                Err(CommError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn buddy_pair_death_recovers_bit_identically_with_parity_groups() {
        // The single-buddy mirror's fatal case: ranks r and (r+1) % p
        // die in the same level. With g = 3 the pair straddles two
        // parity groups ({0,1,2} and {3,4,5}), so each death is the
        // only one in its group and both reconstruct exactly.
        let spec = GraphSpec::poisson(400, 6.0, 31);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(5).kill_rank_at(2, 4).kill_rank_at(3, 4);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let got = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                parity_group_size: 3,
                ..ResilientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(got.result.levels, expect, "buddy pair must recover");
        assert_eq!(got.recoveries, 2);
        assert_eq!(got.degraded_restarts, 0);
        assert_eq!(got.recovered_ranks, vec![2, 3]);
        assert_eq!(world.stats.faults.recoveries, 2);
    }

    #[test]
    fn same_group_double_death_falls_back_to_degraded_restart() {
        // Two deaths inside one parity group exceed the XOR budget:
        // the engine must restart from the last full checkpoint (and
        // still land on the oracle's labels).
        let spec = GraphSpec::poisson(400, 6.0, 31);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let plan = FaultPlan::seeded(5).kill_rank_at(0, 4).kill_rank_at(1, 4);
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan.clone());
        let got = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                parity_group_size: 3,
                ..ResilientConfig::default()
            },
        )
        .unwrap();
        assert_eq!(got.result.levels, expect, "degraded restart must recover");
        assert_eq!(got.degraded_restarts, 1);
        assert_eq!(got.recoveries, 0, "parity cannot cover a double death");
        assert!(got.recovery_time > 0.0);

        // With the fallback disabled the same schedule is fatal — and
        // typed, not a panic.
        let mut world = SimWorld::bluegene(grid).with_fault_plan(plan);
        let err = run_resilient(
            &graph,
            &mut world,
            &BfsConfig::default(),
            0,
            &ResilientConfig {
                parity_group_size: 3,
                degraded_fallback: false,
                ..ResilientConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, CommError::RecoveryFailed { .. }),
            "expected RecoveryFailed, got {err}"
        );
    }

    #[test]
    fn resilient_without_faults_matches_plain_levels() {
        let spec = GraphSpec::poisson(300, 6.0, 61);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut w1 = SimWorld::bluegene(grid);
        let plain = run(&graph, &mut w1, &BfsConfig::default(), 0);
        let mut w2 = SimWorld::bluegene(grid);
        let res = run_resilient(
            &graph,
            &mut w2,
            &BfsConfig::default(),
            0,
            &ResilientConfig::default(),
        )
        .unwrap();
        assert_eq!(res.result.levels, plain.levels);
        assert_eq!(res.recoveries, 0);
        assert!(res.recovered_ranks.is_empty());
        // The mirror traffic rides the control network only.
        assert_eq!(
            res.result.stats.comm.class(OpClass::Expand).received_verts,
            plain.stats.comm.class(OpClass::Expand).received_verts
        );
        assert_eq!(
            res.result.stats.comm.class(OpClass::Fold).received_verts,
            plain.stats.comm.class(OpClass::Fold).received_verts
        );
    }
}
