//! Distributed level-synchronized BFS with 2D partitioning — the
//! paper's Algorithm 2, on the superstep simulator.
//!
//! Each level runs the five phases of the paper's main loop:
//!
//! 1. frontier formation + global termination check (steps 3–6);
//! 2. **expand** over processor-columns (steps 7–11), by the configured
//!    [`crate::config::ExpandStrategy`];
//! 3. local neighbor discovery over partial edge lists (step 12), with
//!    the sent-neighbors cache;
//! 4. **fold** over processor-rows (steps 13–18), by the configured
//!    [`crate::config::FoldStrategy`];
//! 5. absorb: label unlabeled owned vertices (steps 19–21).
//!
//! Compute time is charged per level from the hash-probe counts; all
//! message accounting happens inside the communication layer.

use crate::config::{BfsConfig, ExpandStrategy, FoldStrategy};
use crate::state::{gather_levels, RankState};
use crate::stats::{LevelStats, RunStats};
use bgl_comm::collectives::{
    allgather::allgather_ring,
    alltoall::alltoallv,
    reduce_scatter::reduce_scatter_union_ring,
    two_phase::{two_phase_expand, two_phase_fold},
    Groups,
};
use bgl_comm::{OpClass, SimWorld, Vert};
use bgl_graph::{DistGraph, Vertex};

/// The outcome of one distributed BFS run.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Global level labels ([`crate::reference::UNREACHED`] where
    /// unreached).
    pub levels: Vec<u32>,
    /// Run statistics (times, volumes, per-level records).
    pub stats: RunStats,
    /// Level of the target, when one was configured and reached.
    pub target_level: Option<u32>,
}

/// Run Algorithm 2 from `source` on `graph` under `config`, inside
/// `world`. The world's grid must match the graph's.
pub fn run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> BfsResult {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert!(source < graph.spec.n, "source out of range");
    let p = grid.len();

    let row_groups = Groups::rows_of(grid);
    let col_groups = Groups::cols_of(grid);

    let mut states: Vec<RankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| RankState::new(rg, graph.partition, config.sent_neighbors))
        .collect();
    states[graph.partition.owner_of(source)].init_source(source);

    let mut level_records = Vec::new();
    let mut target_level = None;

    let mut level: u32 = 0;
    loop {
        if config.max_levels > 0 && level >= config.max_levels {
            break;
        }
        let time_at_start = world.time();
        let comm_at_start = world.comm_time();
        let comm_snapshot = world.stats.clone();

        // -- 1. termination check on global frontier size.
        let frontier_sizes: Vec<u64> = states.iter().map(|s| s.frontier_len()).collect();
        let global_frontier = world.allreduce_sum(&frontier_sizes);
        if global_frontier == 0 {
            break;
        }

        // -- 2. expand.
        let fbar: Vec<Vec<Vec<Vert>>> = match config.expand {
            ExpandStrategy::Targeted => {
                let sends: Vec<Vec<(usize, Vec<Vert>)>> = states
                    .iter_mut()
                    .map(|s| s.expand_sends_targeted())
                    .collect();
                alltoallv(world, OpClass::Expand, &col_groups, sends)
                    .into_iter()
                    .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
            ExpandStrategy::AllGatherRing => {
                let contributions: Vec<Vec<Vert>> =
                    states.iter().map(|s| s.frontier.clone()).collect();
                allgather_ring(world, OpClass::Expand, &col_groups, contributions)
                    .into_iter()
                    .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
            ExpandStrategy::TwoPhaseRing => {
                let contributions: Vec<Vec<Vert>> =
                    states.iter().map(|s| s.frontier.clone()).collect();
                two_phase_expand(world, OpClass::Expand, &col_groups, contributions)
                    .into_iter()
                    .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
        };

        // -- 3. local discovery.
        let blocks: Vec<Vec<Vec<Vert>>> = states
            .iter_mut()
            .zip(&fbar)
            .map(|(s, lists)| {
                let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
                s.discover(&refs)
            })
            .collect();
        drop(fbar);

        // -- 4. fold.
        let nbar: Vec<Vec<Vec<Vert>>> = match config.fold {
            FoldStrategy::DirectAllToAll => {
                let sends: Vec<Vec<(usize, Vec<Vert>)>> = blocks
                    .into_iter()
                    .enumerate()
                    .map(|(rank, bs)| {
                        let i = grid.row_of(rank);
                        bs.into_iter()
                            .enumerate()
                            .filter(|(_, b)| !b.is_empty())
                            .map(|(m, b)| (grid.rank_of(i, m), b))
                            .collect()
                    })
                    .collect();
                alltoallv(world, OpClass::Fold, &row_groups, sends)
                    .into_iter()
                    .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
            FoldStrategy::ReduceScatterUnion => {
                reduce_scatter_union_ring(world, OpClass::Fold, &row_groups, blocks)
                    .into_iter()
                    .map(|set| vec![set])
                    .collect()
            }
            FoldStrategy::TwoPhaseRing => {
                two_phase_fold(world, OpClass::Fold, &row_groups, blocks)
                    .into_iter()
                    .map(|set| vec![set])
                    .collect()
            }
        };

        // -- 5. absorb + compute charge.
        for (s, lists) in states.iter_mut().zip(&nbar) {
            let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
            s.absorb(&refs, level + 1);
        }
        let probes: Vec<u64> = states.iter_mut().map(RankState::take_probes).collect();
        world.hash_phase(&probes);

        // -- target detection.
        if let Some(t) = config.target {
            let flags: Vec<bool> = states
                .iter()
                .map(|s| s.level_of(t).is_some())
                .collect();
            if world.allreduce_or(&flags) {
                target_level = Some(level + 1);
            }
        }

        let delta = world.stats.minus(&comm_snapshot);
        level_records.push(LevelStats {
            level,
            frontier: global_frontier,
            expand_received: delta.class(OpClass::Expand).received_verts,
            fold_received: delta.class(OpClass::Fold).received_verts,
            dups_eliminated: delta.total_dups_eliminated(),
            sim_time: world.time() - time_at_start,
            comm_time: world.comm_time() - comm_at_start,
        });

        if target_level.is_some() {
            break;
        }
        level += 1;
    }

    // The source's own level-0 target case.
    if let Some(t) = config.target {
        if t == source {
            target_level = Some(0);
        }
    }

    let levels = gather_levels(&states, graph.spec.n);
    let reached = states.iter().map(|s| s.reached()).sum();
    BfsResult {
        stats: RunStats {
            levels: level_records,
            sim_time: world.time(),
            comm_time: world.comm_time(),
            compute_time: world.compute_time(),
            reached,
            comm: world.stats.clone(),
            p,
        },
        target_level,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExpandStrategy, FoldStrategy};
    use crate::reference;
    use bgl_comm::ProcessorGrid;
    use bgl_graph::GraphSpec;

    fn check_against_oracle(spec: GraphSpec, grid: ProcessorGrid, config: BfsConfig) {
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &config, 0);
        assert_eq!(got.levels, expect, "grid {grid:?} config {config:?}");
        assert_eq!(
            got.stats.reached,
            expect.iter().filter(|&&l| l != reference::UNREACHED).count() as u64
        );
    }

    #[test]
    fn matches_oracle_all_strategies() {
        let spec = GraphSpec::poisson(300, 6.0, 31);
        let grid = ProcessorGrid::new(3, 4);
        for expand in [
            ExpandStrategy::Targeted,
            ExpandStrategy::AllGatherRing,
            ExpandStrategy::TwoPhaseRing,
        ] {
            for fold in [
                FoldStrategy::DirectAllToAll,
                FoldStrategy::ReduceScatterUnion,
                FoldStrategy::TwoPhaseRing,
            ] {
                let config = BfsConfig {
                    expand,
                    fold,
                    ..BfsConfig::default()
                };
                check_against_oracle(spec, grid, config);
            }
        }
    }

    #[test]
    fn matches_oracle_across_grids() {
        let spec = GraphSpec::poisson(250, 5.0, 77);
        for (r, c) in [(1, 1), (1, 6), (6, 1), (2, 3), (4, 4), (5, 2)] {
            check_against_oracle(spec, ProcessorGrid::new(r, c), BfsConfig::default());
        }
    }

    #[test]
    fn matches_oracle_without_sent_cache() {
        let spec = GraphSpec::poisson(200, 5.0, 13);
        let config = BfsConfig {
            sent_neighbors: false,
            ..BfsConfig::default()
        };
        check_against_oracle(spec, ProcessorGrid::new(2, 2), config);
    }

    #[test]
    fn target_stops_early() {
        let spec = GraphSpec::poisson(400, 8.0, 5);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        // Pick a vertex at distance >= 2.
        let t = (0..400u64)
            .find(|&v| expect[v as usize] >= 2 && expect[v as usize] != reference::UNREACHED)
            .expect("target exists");
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig::default().with_target(t);
        let got = run(&graph, &mut world, &config, 0);
        assert_eq!(got.target_level, Some(expect[t as usize]));
        // Stopped at the target's level, not the full traversal.
        assert_eq!(
            got.stats.num_levels() as u32,
            expect[t as usize],
            "levels executed"
        );
    }

    #[test]
    fn unreachable_target_traverses_component() {
        // A graph so sparse it is disconnected; target in another
        // component => full component traversal (Figure 6 worst case).
        let spec = GraphSpec::poisson(300, 1.5, 3);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        let t = (0..300u64).find(|&v| expect[v as usize] == reference::UNREACHED);
        let Some(t) = t else {
            panic!("expected a disconnected vertex at k=1.5");
        };
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default().with_target(t), 0);
        assert_eq!(got.target_level, None);
        assert_eq!(got.levels, expect);
    }

    #[test]
    fn source_is_target() {
        let spec = GraphSpec::poisson(100, 4.0, 2);
        let grid = ProcessorGrid::new(1, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default().with_target(7), 7);
        assert_eq!(got.target_level, Some(0));
    }

    #[test]
    fn level_stats_reconcile() {
        let spec = GraphSpec::poisson(300, 6.0, 41);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default(), 0);
        // Sum of level sim_time == total sim time (termination check of
        // the final empty level excluded — allow small slack).
        let per_level: f64 = got.stats.levels.iter().map(|l| l.sim_time).sum();
        assert!(per_level <= got.stats.sim_time + 1e-12);
        assert!(got.stats.sim_time > 0.0);
        assert!(got.stats.comm_time > 0.0);
        assert!(got.stats.compute_time > 0.0);
        // Frontier sizes sum to reached count.
        let frontier_sum: u64 = got.stats.levels.iter().map(|l| l.frontier).sum();
        assert_eq!(frontier_sum, got.stats.reached);
        // Expand/fold volumes are recorded per level.
        assert!(got.stats.levels.iter().any(|l| l.fold_received > 0));
    }

    #[test]
    fn union_fold_eliminates_duplicates_on_dense_graph() {
        let spec = GraphSpec::poisson(200, 20.0, 17);
        let grid = ProcessorGrid::new(2, 4);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(
            &graph,
            &mut world,
            &BfsConfig {
                fold: FoldStrategy::TwoPhaseRing,
                ..BfsConfig::default()
            },
            0,
        );
        assert!(
            got.stats.comm.total_dups_eliminated() > 0,
            "dense graph must produce fold duplicates"
        );
        assert!(got.stats.redundancy_ratio_percent() > 0.0);
    }

    #[test]
    fn max_levels_caps_search() {
        let spec = GraphSpec::poisson(500, 3.0, 19);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let config = BfsConfig {
            max_levels: 2,
            ..BfsConfig::default()
        };
        let got = run(&graph, &mut world, &config, 0);
        assert!(got.stats.num_levels() <= 2);
        // Levels beyond 2 must be unlabeled.
        assert!(got
            .levels
            .iter()
            .all(|&l| l == reference::UNREACHED || l <= 2));
    }
}
