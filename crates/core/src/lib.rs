//! # bfs-core — scalable distributed-parallel breadth-first search
//!
//! Reproduction of *A Scalable Distributed Parallel Breadth-First Search
//! Algorithm on BlueGene/L* (Yoo, Chow, Henderson, McLendon,
//! Hendrickson, Çatalyürek — SC 2005). The crate implements the paper's
//! algorithms on the simulation substrate provided by `bgl-torus`,
//! `bgl-comm`, and `bgl-graph`:
//!
//! * [`bfs1d`] — Algorithm 1, distributed BFS with 1D (vertex)
//!   partitioning;
//! * [`bfs2d`] — Algorithm 2, the 2D (edge) partitioning with *expand*
//!   (processor-column) and *fold* (processor-row) collectives,
//!   configurable across the paper's communication strategies; also
//!   home of the fault-tolerant engine ([`bfs2d::run_resilient`]) that
//!   survives lossy exchanges and rank deaths via level-synchronous
//!   checkpoint/recover with bit-identical recovery;
//! * [`bidir`] — the §2.3 bi-directional search;
//! * [`theory`] — the §3.1 analytic message-length bounds (γ function)
//!   and the Figure 6.b 1D/2D crossover-degree solver;
//! * [`state`] — the per-rank data structures (levels, frontier,
//!   sent-neighbors cache, hash-probe accounting);
//! * [`threaded_run`] — the same BFS on a real one-thread-per-rank
//!   message-passing runtime, for engine cross-validation;
//! * [`mod@reference`] — the sequential oracle every variant is tested
//!   against.
//!
//! ## Quick example
//!
//! ```
//! use bfs_core::{bfs2d, BfsConfig};
//! use bgl_comm::{ProcessorGrid, SimWorld};
//! use bgl_graph::{DistGraph, GraphSpec};
//!
//! // A Poisson random graph with 10,000 vertices, average degree 10,
//! // distributed over a 4 x 8 processor grid (simulated BlueGene/L).
//! let spec = GraphSpec::poisson(10_000, 10.0, 42);
//! let grid = ProcessorGrid::new(4, 8);
//! let graph = DistGraph::build(spec, grid);
//! let mut world = SimWorld::bluegene(grid);
//!
//! let result = bfs2d::run(&graph, &mut world, &BfsConfig::paper_optimized(), 0);
//! assert!(result.stats.reached > 9_000); // giant component at k = 10
//! println!(
//!     "levels: {}, simulated time: {:.3} ms",
//!     result.stats.num_levels(),
//!     result.stats.sim_time * 1e3
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs1d;
pub mod bfs2d;
pub mod bidir;
pub mod config;
pub mod engine;
pub mod memory;
pub mod multi;
pub mod parity;
pub mod path;
pub mod reference;
pub mod state;
pub mod stats;
pub mod theory;
pub mod threaded_run;
pub mod tree;
pub mod validate;

pub use bfs2d::{BfsResult, ResilientBfsResult, ResilientConfig};
pub use bidir::BidirResult;
pub use config::{BfsConfig, DirectionMode, DirectionPolicy, ExpandStrategy, FoldStrategy};
pub use engine::ComputeEngine;
pub use multi::{MultiBfsResult, MultiConfig, MultiRankState};
pub use parity::{GroupShard, ParityGroups};
pub use path::{MultiPathConfig, MultiPathResult};
pub use reference::UNREACHED;
pub use stats::{LevelDirection, LevelStats, RunStats};
pub use threaded_run::{
    run_threaded, run_threaded_direction, run_threaded_traced, run_threaded_with_wire,
    TracedThreadedRun,
};
pub use validate::{validate_against_spec, validate_levels, ValidationError, ValidationReport};
