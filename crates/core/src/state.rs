//! Per-rank BFS state and the pure per-rank transition functions.
//!
//! Both execution engines (the superstep simulator and the threaded SPMD
//! runtime) drive the *same* code here; engines differ only in how the
//! produced messages move. The state holds the paper's per-processor
//! data structures:
//!
//! * the level array `L` over owned vertices (contiguous ownership makes
//!   the first §2.4.2 local-index mapping a subtraction);
//! * the current frontier `F`;
//! * the §2.4.3 **sent-neighbors** cache — one bit per unique vertex
//!   appearing in this rank's edge lists (`O(n/P)` expected, §2.4.1) —
//!   "once a neighbor vertex is sent, it may be encountered again, but
//!   it never needs to be sent again";
//! * a hash-probe counter feeding the cost model (the paper profiles the
//!   algorithm as spending "most of its time in a hashing function").

use crate::reference::UNREACHED;
use bgl_comm::{ProcessorGrid, VertSet};
use bgl_graph::{RankGraph, TwoDPartition, Vertex};

/// Mutable BFS state for one rank.
#[derive(Debug, Clone)]
pub struct RankState<'g> {
    rg: &'g RankGraph,
    grid: ProcessorGrid,
    partition: TwoDPartition,
    /// Level labels for owned vertices, indexed by owned offset.
    pub levels: Vec<u32>,
    /// Current frontier (owned vertices at the current level), sorted.
    pub frontier: Vec<Vertex>,
    /// Sent-neighbors cache over row-local ids (empty when disabled).
    sent: Vec<bool>,
    /// Hash probes performed since the last [`RankState::take_probes`].
    pub probes: u64,
    /// Stored adjacency entries whose row has not been emitted yet —
    /// the local share of Beamer's `m_u` (unexplored edge mass). Kept
    /// incrementally by the discover kernels when the sent-neighbors
    /// cache is on; static at `num_entries` when the cache is off (the
    /// adaptive heuristic then sees an over-estimate and stays
    /// top-down, which is safe). Host-side only: never charged.
    unexplored: u64,
}

impl<'g> RankState<'g> {
    /// Fresh state for a rank of `graph`.
    pub fn new(rg: &'g RankGraph, partition: TwoDPartition, use_sent: bool) -> Self {
        Self {
            rg,
            grid: partition.grid(),
            partition,
            levels: vec![UNREACHED; rg.owned_len()],
            frontier: Vec::new(),
            sent: if use_sent {
                vec![false; rg.edges.num_row_ids()]
            } else {
                Vec::new()
            },
            probes: 0,
            unexplored: rg.edges.num_entries() as u64,
        }
    }

    /// The rank's static graph share.
    pub fn rank_graph(&self) -> &'g RankGraph {
        self.rg
    }

    /// Label the source if this rank owns it and seed the frontier.
    pub fn init_source(&mut self, source: Vertex) {
        if let Some(off) = self.rg.owned_local(source) {
            self.levels[off] = 0;
            self.frontier = vec![source];
        }
    }

    /// Current local frontier size.
    pub fn frontier_len(&self) -> u64 {
        self.frontier.len() as u64
    }

    /// Whether an owned vertex is labeled (one probe counted — this is
    /// the level lookup on the owned mapping).
    pub fn level_of(&self, v: Vertex) -> Option<u32> {
        self.rg.owned_local(v).and_then(|off| {
            let l = self.levels[off];
            (l != UNREACHED).then_some(l)
        })
    }

    /// Build the **targeted** expand sends: for each frontier vertex,
    /// one copy to each processor-column peer whose partial edge list
    /// for it is non-empty (§2.2). Returns `(peer rank, vertices)` with
    /// sorted vertex lists; includes a self entry when this rank stores
    /// a list for its own vertex.
    pub fn expand_sends_targeted(&mut self) -> Vec<(usize, Vec<Vertex>)> {
        let (_, j) = self.grid.position_of(self.rg.rank);
        let mut per_row: Vec<Vec<Vertex>> = vec![Vec::new(); self.grid.rows()];
        for &v in &self.frontier {
            let off = (v - self.rg.owned.start) as usize;
            for &i2 in &self.rg.expand_targets[off] {
                per_row[i2 as usize].push(v);
            }
        }
        per_row
            .into_iter()
            .enumerate()
            .filter(|(_, list)| !list.is_empty())
            .map(|(i2, list)| (self.grid.rank_of(i2, j), list))
            .collect()
    }

    /// Process the received frontier F̄ and produce the fold blocks: for
    /// each processor-row peer position `m` (grid column), the sorted,
    /// deduplicated set of neighbor vertices owned by that peer.
    ///
    /// Hash probes counted: one per F̄ vertex (partial-edge-list lookup)
    /// plus one per edge entry traversed (sent-neighbors lookup).
    pub fn discover(&mut self, fbar_lists: &[&[Vertex]]) -> Vec<Vec<Vertex>> {
        let cols = self.grid.cols();
        let mut blocks: Vec<Vec<Vertex>> = vec![Vec::new(); cols];
        for list in fbar_lists {
            for &v in *list {
                self.probes += 1;
                let Some(ci) = self.rg.edges.col_local(v) else {
                    continue;
                };
                for &u in self.rg.edges.neighbors_by_local(ci) {
                    self.probes += 1;
                    if !self.sent.is_empty() {
                        let rl = self
                            .rg
                            .edges
                            .row_local(u)
                            .expect("edge-list vertex must be row-indexed"); // bgl-lint: allow(r1, reason = "CSR construction row-indexes every edge endpoint; a miss is a partitioning bug")
                        if self.sent[rl as usize] {
                            continue;
                        }
                        self.sent[rl as usize] = true;
                        self.unexplored -= self.rg.edges.row_degree(rl) as u64;
                    }
                    blocks[self.partition.block_col_of(u)].push(u);
                }
            }
        }
        for b in blocks.iter_mut() {
            b.sort_unstable();
            b.dedup();
        }
        blocks
    }

    /// Absorb received neighbor sets: label unlabeled owned vertices with
    /// `next_level` and make them the new frontier. Returns the number of
    /// newly labeled vertices. One probe per received vertex (the owned
    /// local-index lookup).
    pub fn absorb(&mut self, nbar_lists: &[&[Vertex]], next_level: u32) -> u64 {
        let mut fresh: Vec<Vertex> = Vec::new();
        for list in nbar_lists {
            for &v in *list {
                self.probes += 1;
                let off = self
                    .rg
                    .owned_local(v)
                    .expect("fold delivered a vertex to a non-owner"); // bgl-lint: allow(r1, reason = "fold routes by block_col_of, so delivery to a non-owner is a partitioning bug")
                if self.levels[off] == UNREACHED {
                    self.levels[off] = next_level;
                    fresh.push(v);
                }
            }
        }
        fresh.sort_unstable();
        self.frontier = fresh;
        self.frontier.len() as u64
    }

    /// [`RankState::absorb`] for a single already-deduplicated
    /// [`VertSet`] (the output of a union-fold). Probe accounting is
    /// identical — one probe per set element — and the set iterates in
    /// ascending order, so the resulting frontier equals the one
    /// `absorb(&[&set.to_vec()], ..)` would produce, without the
    /// intermediate list materialization.
    pub fn absorb_set(&mut self, nbar: &VertSet, next_level: u32) -> u64 {
        let mut fresh: Vec<Vertex> = Vec::new();
        for v in nbar.iter() {
            self.probes += 1;
            let off = self
                .rg
                .owned_local(v)
                .expect("fold delivered a vertex to a non-owner"); // bgl-lint: allow(r1, reason = "fold routes by block_col_of, so delivery to a non-owner is a partitioning bug")
            if self.levels[off] == UNREACHED {
                self.levels[off] = next_level;
                fresh.push(v);
            }
        }
        debug_assert!(fresh.windows(2).all(|w| w[0] < w[1]));
        self.frontier = fresh;
        self.frontier.len() as u64
    }

    /// Bottom-up discover: instead of expanding the frontier along
    /// stored columns, scan every not-yet-emitted stored *row* and ask
    /// whether any of its columns is in the (column-gathered) frontier,
    /// early-exiting on the first hit. Emits the same fold blocks as
    /// [`RankState::discover`] would for this level — each block sorted
    /// and duplicate-free — because rows are visited in ascending id
    /// order and each row is emitted at most once.
    ///
    /// `frontier` must be the union of the whole processor-column's
    /// frontiers (see `bgl_comm::collectives::frontier`): this rank
    /// stores *all* edges `(u, f)` with `u` in its row set and `f` in
    /// its block column, so between the column peers every unlabeled
    /// vertex with a frontier parent is found by exactly the ranks that
    /// store such an edge.
    ///
    /// Probes counted: one per frontier membership test. The row scan
    /// itself is sequential array access over the row-major index —
    /// not hash work — whereas top-down pays a `row_local` hash probe
    /// for *every* stored entry of every received frontier vertex. The
    /// early exit plus the free skip of already-sent rows is where
    /// bottom-up wins.
    pub fn discover_bottom_up(&mut self, frontier: &VertSet) -> Vec<Vec<Vertex>> {
        let cols = self.grid.cols();
        let mut blocks: Vec<Vec<Vertex>> = vec![Vec::new(); cols];
        for rl in 0..self.rg.edges.num_row_ids() as u32 {
            if !self.sent.is_empty() && self.sent[rl as usize] {
                continue;
            }
            let u = self.rg.edges.row_of_local(rl);
            if let Some(off) = self.rg.owned_local(u) {
                if self.levels[off] != UNREACHED {
                    continue;
                }
            }
            let mut parented = false;
            for &ci in self.rg.edges.cols_of_row_local(rl) {
                self.probes += 1;
                if frontier.contains(self.rg.edges.col_of_local(ci)) {
                    parented = true;
                    break;
                }
            }
            if parented {
                if !self.sent.is_empty() {
                    self.sent[rl as usize] = true;
                    self.unexplored -= self.rg.edges.row_degree(rl) as u64;
                }
                blocks[self.partition.block_col_of(u)].push(u);
            }
        }
        debug_assert!(blocks.iter().all(|b| b.windows(2).all(|w| w[0] < w[1])));
        blocks
    }

    /// Local share of the frontier's edge mass: the stored-entry count
    /// of every own frontier vertex's partial edge list. Summed over a
    /// processor column this approximates `m_f / R` (each frontier
    /// vertex's adjacency column is split across the `R` grid rows).
    /// Heuristic input only — not charged as hash probes.
    pub fn frontier_degree(&self) -> u64 {
        self.frontier
            .iter()
            .map(|&v| self.rg.edges.neighbors_of(v).len() as u64)
            .sum()
    }

    /// Stored entries whose row has not been emitted yet (see the field
    /// doc for the cache-off caveat).
    pub fn unexplored(&self) -> u64 {
        self.unexplored
    }

    /// Take and reset the probe counter (charged to the cost model once
    /// per level).
    pub fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }

    /// Count of labeled owned vertices.
    pub fn reached(&self) -> u64 {
        self.levels.iter().filter(|&&l| l != UNREACHED).count() as u64
    }
}

/// Gather per-rank level arrays into one global array indexed by vertex.
pub fn gather_levels(states: &[RankState<'_>], n: u64) -> Vec<u32> {
    let mut levels = vec![UNREACHED; n as usize];
    for st in states {
        let start = st.rank_graph().owned.start as usize;
        levels[start..start + st.levels.len()].copy_from_slice(&st.levels);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgl_graph::{DistGraph, GraphSpec};

    fn setup(r: usize, c: usize) -> DistGraph {
        DistGraph::build(GraphSpec::poisson(120, 5.0, 9), ProcessorGrid::new(r, c))
    }

    fn states(g: &DistGraph, use_sent: bool) -> Vec<RankState<'_>> {
        g.ranks
            .iter()
            .map(|rg| RankState::new(rg, g.partition, use_sent))
            .collect()
    }

    #[test]
    fn init_source_only_at_owner() {
        let g = setup(2, 3);
        let mut sts = states(&g, true);
        let source = 63u64;
        let owner = g.partition.owner_of(source);
        for st in sts.iter_mut() {
            st.init_source(source);
        }
        for (rank, st) in sts.iter().enumerate() {
            if rank == owner {
                assert_eq!(st.frontier, vec![source]);
                assert_eq!(st.level_of(source), Some(0));
                assert_eq!(st.reached(), 1);
            } else {
                assert!(st.frontier.is_empty());
                assert_eq!(st.reached(), 0);
            }
        }
    }

    #[test]
    fn expand_sends_follow_targets() {
        let g = setup(3, 2);
        let grid = g.grid();
        let mut sts = states(&g, true);
        let source = 10u64;
        let owner = g.partition.owner_of(source);
        sts[owner].init_source(source);
        let sends = sts[owner].expand_sends_targeted();
        // Each send goes to a column peer that really stores a list for v.
        for (peer, list) in &sends {
            assert_eq!(grid.col_of(*peer), grid.col_of(owner));
            for &v in list {
                assert!(g.ranks[*peer].edges.col_local(v).is_some());
            }
        }
    }

    #[test]
    fn discover_routes_to_owner_columns() {
        let g = setup(2, 2);
        let grid = g.grid();
        let mut sts = states(&g, true);
        // Feed rank 0 a frontier list of every column it stores.
        let cols: Vec<Vertex> = g.ranks[0].edges.cols().to_vec();
        let blocks = sts[0].discover(&[&cols]);
        assert_eq!(blocks.len(), grid.cols());
        for (m, block) in blocks.iter().enumerate() {
            for &u in block {
                assert_eq!(g.partition.block_col_of(u), m);
                // Fold destination shares the grid row with rank 0.
                let dest = grid.rank_of(grid.row_of(0), m);
                assert!(g.partition.owned_range(dest).contains(&u));
            }
        }
        // Probes counted: at least one per input vertex.
        assert!(sts[0].probes >= cols.len() as u64);
    }

    #[test]
    fn sent_neighbors_suppresses_resends() {
        let g = setup(1, 2);
        let mut sts = states(&g, true);
        let cols: Vec<Vertex> = g.ranks[0].edges.cols().to_vec();
        let first = sts[0].discover(&[&cols]);
        let second = sts[0].discover(&[&cols]);
        let count = |bs: &[Vec<Vertex>]| bs.iter().map(Vec::len).sum::<usize>();
        assert!(count(&first) > 0);
        assert_eq!(count(&second), 0, "resends must be suppressed");

        // Without the cache the same neighbors are produced again.
        let mut no_cache = states(&g, false);
        let a = no_cache[0].discover(&[&cols]);
        let b = no_cache[0].discover(&[&cols]);
        assert_eq!(a, b);
        assert_eq!(a, first, "first pass matches cached first pass");
    }

    #[test]
    fn absorb_labels_once() {
        let g = setup(2, 2);
        let mut sts = states(&g, true);
        let range = g.ranks[0].owned.clone();
        let vs: Vec<Vertex> = range.clone().take(4).collect();
        let newly = sts[0].absorb(&[&vs], 3);
        assert_eq!(newly, 4);
        assert_eq!(sts[0].frontier, vs);
        // Absorbing again labels nothing new.
        let again = sts[0].absorb(&[&vs], 4);
        assert_eq!(again, 0);
        assert!(sts[0].frontier.is_empty());
        for &v in &vs {
            assert_eq!(sts[0].level_of(v), Some(3));
        }
    }

    #[test]
    fn absorb_set_matches_absorb_list() {
        let g = setup(2, 2);
        let range = g.ranks[0].owned.clone();
        let vs: Vec<Vertex> = range.clone().step_by(2).collect();
        for set in [VertSet::from_sorted(vs.clone()), {
            let mut s = VertSet::from_sorted(vs.clone());
            s.maybe_densify(&bgl_comm::VsetPolicy::hybrid());
            s
        }] {
            let mut by_list = states(&g, true);
            let mut by_set = states(&g, true);
            let a = by_list[0].absorb(&[&vs], 2);
            let b = by_set[0].absorb_set(&set, 2);
            assert_eq!(a, b);
            assert_eq!(by_list[0].levels, by_set[0].levels);
            assert_eq!(by_list[0].frontier, by_set[0].frontier);
            assert_eq!(by_list[0].probes, by_set[0].probes);
        }
    }

    #[test]
    fn gather_levels_reassembles() {
        let g = setup(2, 3);
        let mut sts = states(&g, true);
        for st in sts.iter_mut() {
            let vs: Vec<Vertex> = st.rank_graph().owned.clone().collect();
            st.absorb(&[&vs], 7);
        }
        let levels = gather_levels(&sts, g.spec.n);
        assert_eq!(levels.len(), 120);
        assert!(levels.iter().all(|&l| l == 7));
    }

    #[test]
    fn bottom_up_matches_top_down_full_walk() {
        // On a single rank the gathered column frontier is the rank's
        // own frontier, so the two kernels can be walked side by side:
        // every level must produce the identical next frontier and the
        // identical final level array, with and without the sent cache.
        for use_sent in [true, false] {
            let g = setup(1, 1);
            let mut td = states(&g, use_sent);
            let mut bu = states(&g, use_sent);
            td[0].init_source(5);
            bu[0].init_source(5);
            for level in 1..=64 {
                if td[0].frontier.is_empty() {
                    break;
                }
                let f = td[0].frontier.clone();
                let td_blocks = td[0].discover(&[&f]);
                td[0].absorb(&[&td_blocks[0]], level);
                let fset = VertSet::from_sorted(bu[0].frontier.clone());
                let bu_blocks = bu[0].discover_bottom_up(&fset);
                bu[0].absorb(&[&bu_blocks[0]], level);
                assert_eq!(td[0].frontier, bu[0].frontier, "level {level}");
            }
            assert!(td[0].frontier.is_empty());
            assert_eq!(td[0].levels, bu[0].levels, "use_sent={use_sent}");
            assert!(td[0].reached() > 1);
        }
    }

    #[test]
    fn bottom_up_emits_each_row_once_with_cache() {
        let g = setup(2, 2);
        let mut sts = states(&g, true);
        let all = VertSet::from_sorted(g.ranks[0].edges.cols().to_vec());
        let first = sts[0].discover_bottom_up(&all);
        let count = |bs: &[Vec<Vertex>]| bs.iter().map(Vec::len).sum::<usize>();
        assert!(count(&first) > 0);
        // Every stored row has some stored column, and every stored
        // column is in the probe set, so the first pass emits every row
        // and the second pass finds nothing left.
        assert_eq!(count(&first), g.ranks[0].edges.num_row_ids());
        let second = sts[0].discover_bottom_up(&all);
        assert_eq!(count(&second), 0);
        assert_eq!(sts[0].unexplored(), 0);
    }

    #[test]
    fn unexplored_tracks_sent_rows() {
        let g = setup(1, 2);
        let entries = g.ranks[0].edges.num_entries() as u64;
        let mut sts = states(&g, true);
        assert_eq!(sts[0].unexplored(), entries);
        let cols: Vec<Vertex> = g.ranks[0].edges.cols().to_vec();
        let blocks = sts[0].discover(&[&cols]);
        let emitted: u64 = blocks
            .iter()
            .flatten()
            .map(|&u| {
                let rl = g.ranks[0].edges.row_local(u).unwrap();
                g.ranks[0].edges.row_degree(rl) as u64
            })
            .sum();
        assert_eq!(sts[0].unexplored(), entries - emitted);

        // With the cache off the counter stays put (documented
        // over-estimate; the adaptive heuristic then never switches).
        let mut off = states(&g, false);
        let _ = off[0].discover(&[&cols]);
        assert_eq!(off[0].unexplored(), entries);
    }

    #[test]
    fn frontier_degree_sums_stored_lists() {
        let g = setup(2, 2);
        let mut sts = states(&g, true);
        let vs: Vec<Vertex> = g.ranks[0].owned.clone().take(6).collect();
        sts[0].absorb(&[&vs], 1);
        let expect: u64 = vs
            .iter()
            .map(|&v| g.ranks[0].edges.neighbors_of(v).len() as u64)
            .sum();
        assert_eq!(sts[0].frontier_degree(), expect);
        let probes_before = sts[0].probes;
        let _ = sts[0].frontier_degree();
        assert_eq!(sts[0].probes, probes_before, "heuristic is uncharged");
    }

    #[test]
    fn probes_taken_and_reset() {
        let g = setup(1, 1);
        let mut sts = states(&g, true);
        let cols: Vec<Vertex> = g.ranks[0].edges.cols().to_vec();
        let _ = sts[0].discover(&[&cols]);
        assert!(sts[0].probes > 0);
        let p = sts[0].take_probes();
        assert!(p > 0);
        assert_eq!(sts[0].probes, 0);
    }
}
