//! Multi-source (batched) BFS: up to [`MAX_LANES`] sources advance
//! through one lane-masked superstep wave.
//!
//! The serving layer (`bgl-server`) packs pending queries into *lanes*
//! — bit `l` of a [`bgl_comm::LaneMask`] marks membership of lane `l`'s
//! search — and runs them through the same expand → discover → fold →
//! absorb superstep structure as [`crate::bfs2d`], except that every
//! exchanged vertex carries its lane mask ([`bgl_comm::LaneSet`], two
//! wire payloads per message). One round of communication therefore
//! advances *all* lanes by one level, collapsing the per-message α
//! overhead B-fold, and overlapping frontiers (universal on the
//! low-diameter scale-free graphs the paper targets: every search
//! floods the same high-degree core within a hop or two) share both
//! wire bytes and per-edge hash probes — a vertex reached by 16 lanes
//! in the same wave is shipped once and its edge list is scanned once.
//!
//! **Per-lane equivalence.** Lane `l` labels vertex `u` at wave `d+1`
//! iff `u` has a neighbor at lane-`l` distance `d` and is unlabeled in
//! lane `l` — exactly the single-source induction, so every lane's
//! level array is *identical* to its standalone [`crate::bfs2d::run`]
//! (asserted per-batch by [`validate_lanes`] against the Graph500-style
//! validator, and property-tested across engines × wire policies in
//! `tests/proptest_multi.rs`).
//!
//! **Determinism.** The wave loop follows the same discipline as the
//! single-source engine: per-rank closures are pure, results collect
//! positionally under [`ComputeEngine`], lane sets merge by sorted
//! two-pointer unions, and all clock accounting happens in the serial
//! collective layer — serial and rayon runs are bit-identical.

use crate::engine::ComputeEngine;
use crate::reference::UNREACHED;
use crate::validate::{self, ValidationError, ValidationReport};
use bgl_comm::collectives::lane::{lane_alltoallv, LaneSendList};
use bgl_comm::collectives::Groups;
use bgl_comm::{CommError, LaneMask, LaneSet, OpClass, Phase, ProcessorGrid, SimWorld, MAX_LANES};
use bgl_graph::{DistGraph, GraphSpec, RankGraph, TwoDPartition, Vertex};

/// Configuration for a batched multi-source run.
#[derive(Debug, Clone, Copy)]
pub struct MultiConfig {
    /// Host-side execution engine for per-rank compute (bit-identical
    /// across variants).
    pub engine: ComputeEngine,
    /// Keep the §2.4.3 sent-neighbors cache, widened to one lane mask
    /// per row-local vertex: a neighbor is re-sent only for lanes that
    /// have not shipped it yet.
    pub sent_neighbors: bool,
    /// Stop after this many waves (0 = run to exhaustion).
    pub max_waves: u32,
}

impl Default for MultiConfig {
    fn default() -> Self {
        Self {
            engine: ComputeEngine::Auto,
            sent_neighbors: true,
            max_waves: 0,
        }
    }
}

/// Per-wave accounting for one batched run.
#[derive(Debug, Clone, Copy)]
pub struct WaveStats {
    /// Wave index (= BFS level assigned by this wave's absorb).
    pub wave: u32,
    /// Global `(vertex, lane)` frontier memberships entering the wave.
    pub frontier_pairs: u64,
    /// Distinct frontier vertices entering the wave (across all ranks).
    pub frontier_verts: u64,
    /// Simulated seconds this wave took.
    pub sim_time: f64,
}

/// Result of a batched multi-source run.
#[derive(Debug, Clone)]
pub struct MultiBfsResult {
    /// Per-lane global level arrays, indexed `[lane][vertex]`.
    pub lane_levels: Vec<Vec<u32>>,
    /// The sources, lane `l` searched from `sources[l]`.
    pub sources: Vec<Vertex>,
    /// Per-wave statistics.
    pub waves: Vec<WaveStats>,
    /// Total simulated seconds for the batch.
    pub sim_time: f64,
    /// Simulated seconds spent in communication.
    pub comm_time: f64,
    /// Total hash probes charged across all ranks.
    pub total_probes: u64,
}

impl MultiBfsResult {
    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.sources.len()
    }
}

/// Per-rank state for a batched run: the lane-masked widening of
/// [`crate::state::RankState`].
#[derive(Debug, Clone)]
pub struct MultiRankState<'g> {
    rg: &'g RankGraph,
    grid: ProcessorGrid,
    partition: TwoDPartition,
    /// Level labels for owned vertices, indexed `[lane][owned offset]`.
    pub levels: Vec<Vec<u32>>,
    /// Lanes that have labeled each owned vertex (by owned offset).
    visited: Vec<LaneMask>,
    /// Current frontier: owned vertices with the mask of lanes for
    /// which they sit at the current level.
    pub frontier: LaneSet,
    /// Sent-neighbors cache over row-local ids, one lane mask each
    /// (empty when disabled).
    sent: Vec<LaneMask>,
    /// Hash probes since the last [`MultiRankState::take_probes`].
    pub probes: u64,
}

impl<'g> MultiRankState<'g> {
    /// Fresh state for a rank of `graph`, serving `lanes` lanes.
    pub fn new(rg: &'g RankGraph, partition: TwoDPartition, lanes: usize, use_sent: bool) -> Self {
        assert!((1..=MAX_LANES).contains(&lanes), "lanes must be in 1..=64");
        Self {
            rg,
            grid: partition.grid(),
            partition,
            levels: vec![vec![UNREACHED; rg.owned_len()]; lanes],
            visited: vec![0; rg.owned_len()],
            frontier: LaneSet::new(),
            sent: if use_sent {
                vec![0; rg.edges.num_row_ids()]
            } else {
                Vec::new()
            },
            probes: 0,
        }
    }

    /// Seed every lane whose source this rank owns. Two lanes may share
    /// a source; their bits simply travel together from wave 0.
    pub fn init_sources(&mut self, sources: &[Vertex]) {
        let mut pairs: Vec<(Vertex, LaneMask)> = Vec::new();
        for (lane, &s) in sources.iter().enumerate() {
            if let Some(off) = self.rg.owned_local(s) {
                self.levels[lane][off] = 0;
                self.visited[off] |= 1 << lane;
                pairs.push((s, 1 << lane));
            }
        }
        self.frontier = LaneSet::from_pairs(pairs);
    }

    /// `(vertex, lane)` memberships in the local frontier.
    pub fn frontier_pairs(&self) -> u64 {
        self.frontier.lane_pairs()
    }

    /// Targeted expand sends: each frontier vertex goes — mask and all —
    /// to every processor-column peer whose partial edge list for it is
    /// non-empty (the lane-masked twin of
    /// [`crate::state::RankState::expand_sends_targeted`]).
    pub fn expand_sends(&mut self) -> LaneSendList {
        let (_, j) = self.grid.position_of(self.rg.rank);
        let mut per_row: Vec<LaneSet> = vec![LaneSet::new(); self.grid.rows()];
        for (v, mask) in self.frontier.iter() {
            let off = (v - self.rg.owned.start) as usize;
            for &i2 in &self.rg.expand_targets[off] {
                per_row[i2 as usize].push(v, mask);
            }
        }
        per_row
            .into_iter()
            .enumerate()
            .filter(|(_, set)| !set.is_empty())
            .map(|(i2, set)| (self.grid.rank_of(i2, j), set))
            .collect()
    }

    /// Process the received lane-masked frontier F̄ and produce the fold
    /// blocks per processor-row peer (grid column). An edge list is
    /// scanned **once per received frontier vertex regardless of how
    /// many lanes ride it** — the batching win. Probe accounting
    /// mirrors the single-source kernel: one probe per received vertex
    /// plus one per edge entry traversed.
    pub fn discover(&mut self, fbar: &[LaneSet]) -> Vec<LaneSet> {
        let cols = self.grid.cols();
        let mut blocks: Vec<Vec<(Vertex, LaneMask)>> = vec![Vec::new(); cols];
        for set in fbar {
            for (v, mask) in set.iter() {
                self.probes += 1;
                let Some(ci) = self.rg.edges.col_local(v) else {
                    continue;
                };
                for &u in self.rg.edges.neighbors_by_local(ci) {
                    self.probes += 1;
                    let mut emit = mask;
                    if !self.sent.is_empty() {
                        let rl = self
                            .rg
                            .edges
                            .row_local(u)
                            .expect("edge-list vertex must be row-indexed"); // bgl-lint: allow(r1, reason = "CSR construction row-indexes every edge endpoint; a miss is a partitioning bug")
                        emit = mask & !self.sent[rl as usize];
                        if emit == 0 {
                            continue;
                        }
                        self.sent[rl as usize] |= emit;
                    }
                    blocks[self.partition.block_col_of(u)].push((u, emit));
                }
            }
        }
        blocks.into_iter().map(LaneSet::from_pairs).collect()
    }

    /// Absorb folded lane sets: for each delivered `(vertex, mask)`
    /// pair, label the not-yet-visited lanes with `next_level` and put
    /// the fresh memberships on the next frontier. Returns newly
    /// labeled `(vertex, lane)` memberships. One probe per delivered
    /// pair (the owned local-index lookup), as in the single-source
    /// absorb.
    pub fn absorb(&mut self, nbar: &[LaneSet], next_level: u32) -> u64 {
        let mut fresh: Vec<(Vertex, LaneMask)> = Vec::new();
        let mut labeled = 0u64;
        for set in nbar {
            for (v, mask) in set.iter() {
                self.probes += 1;
                let off = self
                    .rg
                    .owned_local(v)
                    .expect("fold delivered a vertex to a non-owner"); // bgl-lint: allow(r1, reason = "fold routes by block_col_of, so delivery to a non-owner is a partitioning bug")
                let new = mask & !self.visited[off];
                if new == 0 {
                    continue;
                }
                self.visited[off] |= new;
                let mut bits = new;
                while bits != 0 {
                    let lane = bits.trailing_zeros() as usize;
                    self.levels[lane][off] = next_level;
                    bits &= bits - 1;
                }
                labeled += new.count_ones() as u64;
                fresh.push((v, new));
            }
        }
        self.frontier = LaneSet::from_pairs(fresh);
        labeled
    }

    /// Take and reset the probe counter (charged once per wave).
    pub fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }

    /// The rank's static graph share.
    pub fn rank_graph(&self) -> &'g RankGraph {
        self.rg
    }
}

/// Gather per-rank lane-major level arrays into per-lane global arrays.
pub fn gather_lane_levels(states: &[MultiRankState<'_>], lanes: usize, n: u64) -> Vec<Vec<u32>> {
    let mut out = vec![vec![UNREACHED; n as usize]; lanes];
    for st in states {
        let start = st.rank_graph().owned.start as usize;
        for (lane, lane_out) in out.iter_mut().enumerate() {
            let src = &st.levels[lane];
            lane_out[start..start + src.len()].copy_from_slice(src);
        }
    }
    out
}

/// Run a batched multi-source BFS; panics on communication faults (use
/// [`try_run`] under a fault plan).
pub fn run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &MultiConfig,
    sources: &[Vertex],
) -> MultiBfsResult {
    try_run(graph, world, config, sources)
        // bgl-lint: allow(r1, reason = "documented infallible convenience wrapper; fault-injecting callers use try_run")
        .unwrap_or_else(|e| panic!("communication fault during batched BFS: {e}"))
}

/// [`run`] with communication faults surfaced as typed errors.
pub fn try_run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &MultiConfig,
    sources: &[Vertex],
) -> Result<MultiBfsResult, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    let lanes = sources.len();
    assert!(
        (1..=MAX_LANES).contains(&lanes),
        "batch must pack 1..=64 sources, got {lanes}"
    );
    for &s in sources {
        assert!(s < graph.spec.n, "source {s} out of range");
    }
    let p = grid.len();
    world.set_parallel_exchange(config.engine.parallel(p));

    let row_groups = Groups::rows_of(grid);
    let col_groups = Groups::cols_of(grid);

    let mut states: Vec<MultiRankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| MultiRankState::new(rg, graph.partition, lanes, config.sent_neighbors))
        .collect();
    for st in states.iter_mut() {
        st.init_sources(sources);
    }

    let time_at_start = world.time();
    let comm_at_start = world.comm_time();
    let mut waves = Vec::new();
    let mut total_probes = 0u64;

    let mut wave: u32 = 0;
    loop {
        if config.max_waves > 0 && wave >= config.max_waves {
            break;
        }
        let t0 = world.time();

        // -- 1. termination on global (vertex, lane) frontier mass. The
        // distinct-vertex count rides the same tree round as a second
        // word (occupancy telemetry, no extra communication).
        let pair_counts: Vec<u64> = states.iter().map(|s| s.frontier_pairs()).collect();
        let vert_counts: Vec<u64> = states.iter().map(|s| s.frontier.len() as u64).collect();
        let zeros = vec![0u64; p];
        let (global_pairs, global_verts, _) =
            world.allreduce_sum3(&pair_counts, &vert_counts, &zeros);
        world.trace_span(Phase::Termination, wave, t0);
        if global_pairs == 0 {
            break;
        }

        // -- 2. expand over processor-columns, masks riding along.
        let t_expand = world.time();
        let sends: Vec<LaneSendList> = config.engine.map_mut(&mut states, |s| s.expand_sends());
        let fbar = lane_alltoallv(world, OpClass::Expand, &col_groups, sends)?;
        world.trace_span(Phase::Expand, wave, t_expand);

        // -- 3. local discovery (edge scans shared across lanes).
        let t_discover = world.time();
        let blocks: Vec<Vec<LaneSet>> = config
            .engine
            .zip_map(&mut states, &fbar, |s, lists| s.discover(lists));
        drop(fbar);
        world.trace_span(Phase::Discover, wave, t_discover);

        // -- 4. fold over processor-rows.
        let t_fold = world.time();
        let sends: Vec<LaneSendList> = blocks
            .into_iter()
            .enumerate()
            .map(|(rank, bs)| {
                let i = grid.row_of(rank);
                bs.into_iter()
                    .enumerate()
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(m, b)| (grid.rank_of(i, m), b))
                    .collect()
            })
            .collect();
        let nbar = lane_alltoallv(world, OpClass::Fold, &row_groups, sends)?;
        world.trace_span(Phase::Fold, wave, t_fold);

        // -- 5. absorb + hash charge.
        let t_absorb = world.time();
        let _: Vec<u64> = config
            .engine
            .zip_map(&mut states, &nbar, |s, lists| s.absorb(lists, wave + 1));
        drop(nbar);
        let probes: Vec<u64> = states.iter_mut().map(MultiRankState::take_probes).collect();
        total_probes += probes.iter().sum::<u64>();
        world.hash_phase(&probes);
        world.trace_span(Phase::Absorb, wave, t_absorb);
        world.trace_span(Phase::Level, wave, t0);

        waves.push(WaveStats {
            wave,
            frontier_pairs: global_pairs,
            frontier_verts: global_verts,
            sim_time: world.time() - t0,
        });
        wave += 1;
    }

    Ok(MultiBfsResult {
        lane_levels: gather_lane_levels(&states, lanes, graph.spec.n),
        sources: sources.to_vec(),
        waves,
        sim_time: world.time() - time_at_start,
        comm_time: world.comm_time() - comm_at_start,
        total_probes,
    })
}

/// Certify every lane of a batched result with the Graph500-style
/// validator ([`validate::validate_against_spec`]). Returns the
/// per-lane reports, or the first lane's failure.
pub fn validate_lanes(
    spec: &GraphSpec,
    result: &MultiBfsResult,
) -> Result<Vec<ValidationReport>, ValidationError> {
    result
        .sources
        .iter()
        .zip(&result.lane_levels)
        .map(|(&s, levels)| validate::validate_against_spec(spec, levels, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bfs2d, BfsConfig};

    fn single_levels(graph: &DistGraph, source: Vertex) -> Vec<u32> {
        let mut world = SimWorld::bluegene(graph.grid());
        bfs2d::run(graph, &mut world, &BfsConfig::paper_optimized(), source).levels
    }

    #[test]
    fn lanes_match_single_source_runs() {
        let spec = GraphSpec::rmat(2_000, 8.0, 7);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let sources = [0u64, 17, 17, 999, 1500];
        let mut world = SimWorld::bluegene(grid);
        let r = run(&graph, &mut world, &MultiConfig::default(), &sources);
        assert_eq!(r.lanes(), sources.len());
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(
                r.lane_levels[lane],
                single_levels(&graph, s),
                "lane {lane} (source {s}) diverged from its standalone run"
            );
        }
        validate_lanes(&spec, &r).expect("validator");
    }

    #[test]
    fn sent_cache_off_agrees() {
        let spec = GraphSpec::poisson(600, 6.0, 3);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let sources = [5u64, 400];
        let cfg_on = MultiConfig::default();
        let cfg_off = MultiConfig {
            sent_neighbors: false,
            ..MultiConfig::default()
        };
        let mut w1 = SimWorld::bluegene(grid);
        let mut w2 = SimWorld::bluegene(grid);
        let a = run(&graph, &mut w1, &cfg_on, &sources);
        let b = run(&graph, &mut w2, &cfg_off, &sources);
        assert_eq!(a.lane_levels, b.lane_levels);
    }

    #[test]
    fn serial_and_rayon_bit_identical() {
        let spec = GraphSpec::rmat(1_500, 8.0, 11);
        let grid = ProcessorGrid::new(4, 4);
        let graph = DistGraph::build(spec, grid);
        let sources: Vec<u64> = (0..16).map(|i| (i * 91) % 1_500).collect();
        let run_with = |engine| {
            let mut world = SimWorld::bluegene(grid).with_wire_policy(bgl_comm::WirePolicy::auto());
            let cfg = MultiConfig {
                engine,
                ..MultiConfig::default()
            };
            let r = run(&graph, &mut world, &cfg, &sources);
            (r.lane_levels, world.time().to_bits(), r.total_probes)
        };
        assert_eq!(
            run_with(ComputeEngine::Serial),
            run_with(ComputeEngine::Rayon)
        );
    }

    #[test]
    fn single_lane_batch_equals_single_source() {
        let spec = GraphSpec::rmat(1_000, 8.0, 21);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let r = run(&graph, &mut world, &MultiConfig::default(), &[42]);
        assert_eq!(r.lane_levels[0], single_levels(&graph, 42));
    }

    #[test]
    fn max_waves_truncates() {
        let spec = GraphSpec::rmat(1_000, 8.0, 21);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let cfg = MultiConfig {
            max_waves: 1,
            ..MultiConfig::default()
        };
        let r = run(&graph, &mut world, &cfg, &[42]);
        assert!(r.waves.len() <= 1);
        assert!(r.lane_levels[0].iter().all(|&l| l == UNREACHED || l <= 1));
    }
}
