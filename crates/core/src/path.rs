//! Distributed shortest-path extraction from BFS level labels.
//!
//! The paper's motivating application needs the *path*, not just the
//! distance ("the nature of the relationship between two vertices in a
//! semantic graph ... can be determined by the shortest path between
//! them"). The BFS messages carry bare vertex indices, so parents are
//! not recorded; instead the path is recovered afterwards by walking
//! levels downhill, one distributed query per hop:
//!
//! 1. the current vertex `v` (level `l`) is announced to `v`'s
//!    processor-column — the only ranks that can hold partial edge
//!    lists for it (expand-shaped query);
//! 2. each column peer forwards `v`'s partial neighbor list to the
//!    neighbors' owners, which sit in its processor-row (fold-shaped
//!    query);
//! 3. owners reply with their candidates at level `l − 1`, and the
//!    smallest candidate becomes the next vertex on the path
//!    (deterministic tie-break).
//!
//! Every hop costs three message rounds of small control messages —
//! `O(distance)` rounds total, charged to the cost model like any other
//! communication.

use crate::reference::UNREACHED;
use bgl_comm::collectives::lane::lane_exchange;
use bgl_comm::{CommError, LaneMask, LaneSet, OpClass, Phase, SimWorld, Vert, MAX_LANES};
use bgl_graph::{DistGraph, Vertex};
use std::collections::BTreeMap;

/// Extract one shortest path `source → target` given the global level
/// array produced by a BFS from `source`. Returns `None` when the
/// target was not reached. The returned path starts at `source`, ends
/// at `target`, and has `levels[target] + 1` vertices.
///
/// Panics on a communication fault; see [`try_extract_path`] for the
/// fallible form.
pub fn extract_path(
    graph: &DistGraph,
    world: &mut SimWorld,
    levels: &[u32],
    source: Vertex,
    target: Vertex,
) -> Option<Vec<Vertex>> {
    try_extract_path(graph, world, levels, source, target)
        // bgl-lint: allow(r1, reason = "documented infallible convenience wrapper; fault-injecting callers use try_extract_path")
        .unwrap_or_else(|e| panic!("communication fault during path extraction: {e}"))
}

/// [`extract_path`] with communication faults surfaced as typed errors.
pub fn try_extract_path(
    graph: &DistGraph,
    world: &mut SimWorld,
    levels: &[u32],
    source: Vertex,
    target: Vertex,
) -> Result<Option<Vec<Vertex>>, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert_eq!(
        levels.len() as u64,
        graph.spec.n,
        "level array size mismatch"
    );
    if levels[target as usize] == UNREACHED {
        return Ok(None);
    }
    debug_assert_eq!(
        levels[source as usize], 0,
        "levels must be rooted at source"
    );

    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        let l = levels[cur as usize];
        debug_assert!(l > 0);

        // Round 1 (expand-shaped): announce cur to its processor-column.
        // In a real deployment the owner broadcasts; ranks outside the
        // column stay silent.
        let owner = graph.partition.owner_of(cur);
        let col = grid.col_of(owner);
        let announce: Vec<(usize, usize, Vec<Vert>)> = (0..grid.rows())
            .map(|i| (owner, grid.rank_of(i, col), vec![cur]))
            .collect();
        let inboxes = world.exchange(OpClass::Control, announce)?;

        // Round 2 (fold-shaped): column peers forward cur's partial
        // neighbor lists to the neighbors' owners.
        let mut forwards: Vec<(usize, usize, Vec<Vert>)> = Vec::new();
        for (rank, inbox) in inboxes.iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let rg = &graph.ranks[rank];
            let neighbors = rg.edges.neighbors_of(cur);
            if neighbors.is_empty() {
                continue;
            }
            let row = grid.row_of(rank);
            let mut per_dest: Vec<Vec<Vert>> = vec![Vec::new(); grid.cols()];
            for &u in neighbors {
                per_dest[graph.partition.block_col_of(u)].push(u);
            }
            for (m, list) in per_dest.into_iter().enumerate() {
                if !list.is_empty() {
                    forwards.push((rank, grid.rank_of(row, m), list));
                }
            }
        }
        let inboxes = world.exchange(OpClass::Control, forwards)?;

        // Round 3: owners filter candidates at level l-1 and reply to
        // cur's owner; take the smallest for determinism.
        let mut replies: Vec<(usize, usize, Vec<Vert>)> = Vec::new();
        for (rank, inbox) in inboxes.iter().enumerate() {
            let mut best: Option<Vert> = None;
            for (_, list) in inbox {
                for &u in list {
                    debug_assert_eq!(graph.partition.owner_of(u), rank);
                    if levels[u as usize] == l - 1 {
                        best = Some(best.map_or(u, |b: Vert| b.min(u)));
                    }
                }
            }
            if let Some(u) = best {
                replies.push((rank, owner, vec![u]));
            }
        }
        let inboxes = world.exchange(OpClass::Control, replies)?;
        let parent = inboxes[owner]
            .iter()
            .flat_map(|(_, list)| list.iter().copied())
            .min()
            .expect("a reached vertex at level l must have a parent at level l-1"); // bgl-lint: allow(r1, reason = "a valid BFS labelling guarantees a level l-1 parent for every level l vertex; an empty reply is a labelling bug")

        path.push(parent);
        cur = parent;
    }
    path.reverse();
    Ok(Some(path))
}

/// Knobs for the batched walk ([`try_multi`]).
#[derive(Debug, Clone)]
pub struct MultiPathConfig {
    /// Control-exchange attempts per round before the transient error
    /// propagates (each retry charges exponential recovery backoff).
    pub retry_attempts: u32,
}

impl Default for MultiPathConfig {
    fn default() -> Self {
        MultiPathConfig { retry_attempts: 4 }
    }
}

/// Outcome of one batched walk: per-lane paths plus the wave's shape
/// and its clock deltas over the call.
#[derive(Debug, Clone)]
pub struct MultiPathResult {
    /// Per-lane extracted path, in `targets` order; `None` where the
    /// target was not reached. Byte-identical to what a standalone
    /// [`extract_path`] returns for the same target.
    pub paths: Vec<Option<Vec<Vertex>>>,
    /// Walk hops executed — the depth of the deepest reached target.
    pub hops: u32,
    /// Control rounds executed (three per hop, shared by every lane).
    pub rounds: u64,
    /// Simulated seconds this walk added to the world's clock.
    pub sim_time: f64,
    /// Communication seconds this walk added (subset of `sim_time`).
    pub comm_time: f64,
}

/// Extract up to [`MAX_LANES`] shortest paths from one BFS level array
/// in a single lane-masked batched walk. Panics on communication
/// errors; see [`try_multi`] for the fallible form.
pub fn multi(
    graph: &DistGraph,
    world: &mut SimWorld,
    levels: &[u32],
    source: Vertex,
    targets: &[Vertex],
) -> MultiPathResult {
    try_multi(
        graph,
        world,
        levels,
        source,
        targets,
        &MultiPathConfig::default(),
    )
    .expect("control traffic retries exhausted") // bgl-lint: allow(r1, reason = "documented infallible convenience wrapper; fault-injecting callers use try_multi")
}

/// Batched downhill walk: every target is a *lane* (bit `l` of a
/// [`LaneMask`]) and all active lanes share each of the three per-hop
/// control rounds of the [`extract_path`] protocol:
///
/// 1. **announce** — each lane's current vertex travels to its owner's
///    processor-column, lanes parked on the same vertex merging into
///    one mask word;
/// 2. **forward** — column peers ship partial neighbor lists (with the
///    query masks attached) to the neighbors' owners in their
///    processor-row;
/// 3. **reply** — owners filter candidates one level below each lane's
///    *own* current level (lanes sit at different depths, but the level
///    array is global, so every rank tracks each lane's level locally),
///    then send per-rank per-lane minima back to the lane's owner.
///
/// The lane's parent is the minimum over replies — the same smallest-
/// parent tie-break as [`extract_path`], so every lane's path is
/// byte-identical to its standalone extraction. Lanes whose walks reach
/// the source drop out of later hops; the wave ends when the deepest
/// lane arrives. Rounds are [`OpClass::Control`] (faultable only under
/// [`SimWorld::set_control_faultable`]); transient failures retry with
/// recovery backoff; each hop is bracketed by a [`Phase::PathWalk`]
/// span.
pub fn try_multi(
    graph: &DistGraph,
    world: &mut SimWorld,
    levels: &[u32],
    source: Vertex,
    targets: &[Vertex],
    config: &MultiPathConfig,
) -> Result<MultiPathResult, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert_eq!(
        levels.len() as u64,
        graph.spec.n,
        "level array size mismatch"
    );
    assert!(
        !targets.is_empty() && targets.len() <= MAX_LANES,
        "batched walk takes 1..={MAX_LANES} targets, got {}",
        targets.len()
    );
    debug_assert_eq!(
        levels[source as usize], 0,
        "levels must be rooted at source"
    );

    let t_start = world.time();
    let c_start = world.comm_time();
    let b = targets.len();

    // Lane l walks from targets[l]; unreached targets never activate.
    let mut paths: Vec<Option<Vec<Vertex>>> = targets
        .iter()
        .map(|&t| (levels[t as usize] != UNREACHED).then(|| vec![t]))
        .collect();
    let mut cur: Vec<Vertex> = targets.to_vec();
    let mut active: LaneMask = 0;
    for (l, &t) in targets.iter().enumerate() {
        if levels[t as usize] != UNREACHED && t != source {
            active |= 1 << l;
        }
    }

    let mut hops = 0u32;
    let mut rounds = 0u64;
    while active != 0 {
        let t0 = world.time();

        // Round 1 (expand-shaped): announce each lane's current vertex
        // to its owner's processor-column. Lanes at the same vertex
        // share one wire word; distinct vertices to the same
        // destination share one message.
        let mut announce: BTreeMap<(usize, usize), Vec<(Vert, LaneMask)>> = BTreeMap::new();
        for (l, &v) in cur.iter().enumerate() {
            if active & (1 << l) == 0 {
                continue;
            }
            let owner = graph.partition.owner_of(v);
            let col = grid.col_of(owner);
            for i in 0..grid.rows() {
                announce
                    .entry((owner, grid.rank_of(i, col)))
                    .or_default()
                    .push((v, 1 << l));
            }
        }
        // Each active lane sits one level below its parent; owners
        // filter round-3 candidates against these (lane levels differ,
        // the level array does not).
        let want: Vec<u32> = (0..b)
            .map(|l| {
                if active & (1 << l) != 0 {
                    levels[cur[l] as usize] - 1
                } else {
                    UNREACHED
                }
            })
            .collect();
        let inboxes = lane_exchange_with_retry(world, assemble(announce), config.retry_attempts)?;
        rounds += 1;

        // Round 2 (fold-shaped): column peers forward each queried
        // vertex's partial neighbor list — masks attached — to the
        // neighbors' owners within their processor-row.
        let mut forwards: BTreeMap<(usize, usize), Vec<(Vert, LaneMask)>> = BTreeMap::new();
        for (rank, sets) in inboxes.iter().enumerate() {
            if sets.is_empty() {
                continue;
            }
            let mut queries = LaneSet::new();
            for s in sets {
                queries.union_in(s);
            }
            let rg = &graph.ranks[rank];
            let row = grid.row_of(rank);
            for (v, mask) in queries.iter() {
                for &u in rg.edges.neighbors_of(v) {
                    forwards
                        .entry((rank, grid.rank_of(row, graph.partition.block_col_of(u))))
                        .or_default()
                        .push((u, mask));
                }
            }
        }
        let inboxes = lane_exchange_with_retry(world, assemble(forwards), config.retry_attempts)?;
        rounds += 1;

        // Round 3: owners keep candidates exactly one level below the
        // asking lane's current vertex and reply the per-rank minimum
        // to that lane's owner.
        let mut replies: BTreeMap<(usize, usize), Vec<(Vert, LaneMask)>> = BTreeMap::new();
        for (rank, sets) in inboxes.iter().enumerate() {
            if sets.is_empty() {
                continue;
            }
            let mut cands = LaneSet::new();
            for s in sets {
                cands.union_in(s);
            }
            let mut best: Vec<Option<Vert>> = vec![None; b];
            for (u, mask) in cands.iter() {
                debug_assert_eq!(graph.partition.owner_of(u), rank);
                debug_assert_eq!(mask & !active, 0, "mask bits for inactive lanes");
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if levels[u as usize] == want[l] {
                        best[l] = Some(best[l].map_or(u, |x: Vert| x.min(u)));
                    }
                }
            }
            for (l, cand) in best.iter().enumerate() {
                if let Some(u) = cand {
                    replies
                        .entry((rank, graph.partition.owner_of(cur[l])))
                        .or_default()
                        .push((*u, 1 << l));
                }
            }
        }
        let inboxes = lane_exchange_with_retry(world, assemble(replies), config.retry_attempts)?;
        rounds += 1;

        // Resolve every active lane's parent at its owner: the global
        // minimum over per-rank minima — extract_path's tie-break.
        let mut next_active = active;
        for l in 0..b {
            if active & (1 << l) == 0 {
                continue;
            }
            let owner = graph.partition.owner_of(cur[l]);
            let parent = inboxes[owner]
                .iter()
                .flat_map(|s| s.iter())
                .filter(|&(_, m)| m & (1 << l) != 0)
                .map(|(u, _)| u)
                .min()
                .expect("a reached vertex at level l must have a parent at level l-1"); // bgl-lint: allow(r1, reason = "a valid BFS labelling guarantees a level l-1 parent for every level l vertex; an empty reply is a labelling bug")
            paths[l]
                .as_mut()
                .expect("active lane has a path") // bgl-lint: allow(r1, reason = "paths[l] is initialized Some for every lane in the active mask")
                .push(parent);
            cur[l] = parent;
            if parent == source {
                next_active &= !(1 << l);
            }
        }
        active = next_active;
        world.trace_span(Phase::PathWalk, hops, t0);
        hops += 1;
    }

    for p in paths.iter_mut().flatten() {
        p.reverse();
    }
    Ok(MultiPathResult {
        paths,
        hops,
        rounds,
        sim_time: world.time() - t_start,
        comm_time: world.comm_time() - c_start,
    })
}

/// Collapse per-destination `(vertex, mask)` accumulators into wire
/// lane sets, in deterministic `(from, to)` order.
fn assemble(map: BTreeMap<(usize, usize), Vec<(Vert, LaneMask)>>) -> Vec<(usize, usize, LaneSet)> {
    map.into_iter()
        .map(|((from, to), pairs)| (from, to, LaneSet::from_pairs(pairs)))
        .collect()
}

/// Lane-set twin of `bfs2d`'s control retry: transient failures charge
/// exponential backoff and re-roll the control fault schedule; permanent
/// errors propagate immediately.
fn lane_exchange_with_retry(
    world: &mut SimWorld,
    sends: Vec<(usize, usize, LaneSet)>,
    attempts: u32,
) -> Result<Vec<Vec<LaneSet>>, CommError> {
    let mut last = None;
    for retry in 0..attempts.max(1) {
        match lane_exchange(world, OpClass::Control, sends.clone()) {
            Ok(inboxes) => return Ok(inboxes),
            Err(e @ (CommError::Unreachable { .. } | CommError::Timeout { .. })) => {
                world.charge_recovery_backoff(retry);
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    // bgl-lint: allow(r1, reason = "attempts.max(1) guarantees the loop body ran and set `last` before falling through")
    Err(last.expect("attempts >= 1 so at least one attempt ran"))
}

/// Validate that `path` is a genuine path in the graph described by
/// `adj` and that it is exactly as short as the level labels promise.
/// Test helper, exposed for the examples.
pub fn validate_path(adj: &[Vec<Vertex>], levels: &[u32], path: &[Vertex]) -> bool {
    if path.is_empty() {
        return false;
    }
    if levels[path[0] as usize] != 0 {
        return false;
    }
    for (i, w) in path.windows(2).enumerate() {
        let (a, b) = (w[0], w[1]);
        if !adj[a as usize].contains(&b) {
            return false;
        }
        if levels[b as usize] != i as u32 + 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs2d;
    use crate::config::BfsConfig;
    use crate::reference;
    use bgl_comm::ProcessorGrid;
    use bgl_graph::GraphSpec;

    fn setup(
        n: u64,
        k: f64,
        seed: u64,
        r: usize,
        c: usize,
    ) -> (DistGraph, SimWorld, Vec<u32>, Vec<Vec<Vertex>>) {
        let spec = GraphSpec::poisson(n, k, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let result = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
        let adj = bgl_graph::dist::adjacency(&spec);
        (graph, world, result.levels, adj)
    }

    #[test]
    fn extracted_paths_are_valid_shortest_paths() {
        let (graph, mut world, levels, adj) = setup(400, 6.0, 19, 2, 3);
        for target in [5u64, 100, 250, 399] {
            if levels[target as usize] == UNREACHED {
                continue;
            }
            let path = extract_path(&graph, &mut world, &levels, 0, target)
                .expect("reached target has a path");
            assert_eq!(path.first(), Some(&0));
            assert_eq!(path.last(), Some(&target));
            assert_eq!(path.len() as u32, levels[target as usize] + 1);
            assert!(validate_path(&adj, &levels, &path), "target {target}");
        }
    }

    #[test]
    fn unreached_target_has_no_path() {
        let (graph, mut world, levels, _) = setup(300, 1.2, 3, 2, 2);
        let t = (0..300u64)
            .find(|&v| levels[v as usize] == UNREACHED)
            .unwrap();
        assert!(extract_path(&graph, &mut world, &levels, 0, t).is_none());
    }

    #[test]
    fn source_to_source_is_trivial() {
        let (graph, mut world, levels, _) = setup(100, 5.0, 7, 1, 2);
        let path = extract_path(&graph, &mut world, &levels, 0, 0).unwrap();
        assert_eq!(path, vec![0]);
    }

    #[test]
    fn works_on_one_d_grids() {
        let (graph, mut world, levels, adj) = setup(300, 5.0, 11, 1, 4);
        let target = (0..300u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        let path = extract_path(&graph, &mut world, &levels, 0, target).unwrap();
        assert!(validate_path(&adj, &levels, &path));
    }

    #[test]
    fn path_matches_reference_distance() {
        let (graph, mut world, levels, adj) = setup(500, 4.0, 23, 3, 2);
        for target in [33u64, 222, 444] {
            let expect = reference::distance(&adj, 0, target);
            let got =
                extract_path(&graph, &mut world, &levels, 0, target).map(|p| p.len() as u32 - 1);
            assert_eq!(got, expect, "target {target}");
        }
    }

    #[test]
    fn extraction_charges_communication() {
        let (graph, mut world, levels, _) = setup(400, 6.0, 19, 2, 3);
        let target = (0..400u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        let before = world.comm_time();
        let _ = extract_path(&graph, &mut world, &levels, 0, target).unwrap();
        assert!(world.comm_time() > before);
        assert!(world.stats.class(OpClass::Control).messages > 0);
    }

    #[test]
    fn validate_path_on_handcrafted_diamond() {
        // 0 — 1 — 3
        //  \— 2 —/     levels from source 0: [0, 1, 1, 2]
        let adj: Vec<Vec<Vertex>> = vec![vec![1, 2], vec![0, 3], vec![0, 3], vec![1, 2]];
        let levels = [0u32, 1, 1, 2];
        // Both arms of the diamond are genuine shortest paths.
        assert!(validate_path(&adj, &levels, &[0, 1, 3]));
        assert!(validate_path(&adj, &levels, &[0, 2, 3]));
        // The trivial s == t path is exactly the source.
        assert!(validate_path(&adj, &levels, &[0]));
        // A non-source singleton is not rooted at level 0.
        assert!(!validate_path(&adj, &levels, &[3]));
        // 0 → 3 skips a level and is not an edge.
        assert!(!validate_path(&adj, &levels, &[0, 3]));
        // 1 → 2 stays at level 1: not downhill-by-one.
        assert!(!validate_path(&adj, &levels, &[0, 1, 2]));
    }

    #[test]
    fn validate_path_rejects_level_skips_on_a_chain() {
        // 0 — 1 — 2 — 3 with an extra chord 0 — 2.
        let adj: Vec<Vec<Vertex>> = vec![vec![1, 2], vec![0, 2], vec![0, 1, 3], vec![2]];
        let levels = [0u32, 1, 1, 2];
        assert!(validate_path(&adj, &levels, &[0, 2, 3]));
        // Real edges, but 0 → 1 → 2 → 3 claims 2 at level 2 ≠ 1.
        assert!(!validate_path(&adj, &levels, &[0, 1, 2, 3]));
        // Disconnected vertex pair: no edge 1 → 3 at all.
        assert!(!validate_path(&adj, &levels, &[0, 1, 3]));
    }

    #[test]
    fn extract_path_tie_breaks_to_smallest_parent() {
        // Every hop must choose the globally smallest neighbor at level
        // l − 1 — the documented deterministic tie-break.
        let (graph, mut world, levels, adj) = setup(400, 6.0, 19, 2, 3);
        let target = (0..400u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        let path = extract_path(&graph, &mut world, &levels, 0, target).unwrap();
        for w in path.windows(2) {
            let (parent, child) = (w[0], w[1]);
            let min_parent = adj[child as usize]
                .iter()
                .copied()
                .filter(|&u| levels[u as usize] + 1 == levels[child as usize])
                .min()
                .unwrap();
            assert_eq!(parent, min_parent, "hop into {child} broke the tie-break");
        }
    }

    #[test]
    fn multi_is_byte_identical_to_extract_path_lane_by_lane() {
        let (graph, mut world, levels, _) = setup(400, 6.0, 19, 2, 3);
        // Mixed depths, a duplicate lane, the source itself, and the
        // deepest reached vertex.
        let deep = (0..400u64)
            .rev()
            .filter(|&v| levels[v as usize] != UNREACHED)
            .max_by_key(|&v| levels[v as usize])
            .unwrap();
        let targets = vec![5u64, 100, 250, 399, 250, 0, deep];
        let batched = multi(&graph, &mut world, &levels, 0, &targets);
        assert_eq!(batched.paths.len(), targets.len());
        let mut seq = SimWorld::bluegene(world.grid());
        for (l, &t) in targets.iter().enumerate() {
            let solo = extract_path(&graph, &mut seq, &levels, 0, t);
            assert_eq!(batched.paths[l], solo, "lane {l} target {t}");
        }
        assert_eq!(
            batched.hops, levels[deep as usize],
            "wave runs to the deepest lane"
        );
        assert_eq!(batched.rounds, 3 * batched.hops as u64);
    }

    #[test]
    fn multi_handles_unreached_and_trivial_lanes() {
        let (graph, mut world, levels, _) = setup(300, 1.2, 3, 2, 2);
        let unreached = (0..300u64)
            .find(|&v| levels[v as usize] == UNREACHED)
            .unwrap();
        let reached = (0..300u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 1)
            .unwrap();
        let r = multi(&graph, &mut world, &levels, 0, &[unreached, 0, reached]);
        assert_eq!(r.paths[0], None);
        assert_eq!(r.paths[1], Some(vec![0]));
        assert_eq!(
            r.paths[2].as_ref().map(|p| p.len() as u32),
            Some(levels[reached as usize] + 1)
        );
    }

    #[test]
    fn multi_all_trivial_runs_zero_rounds() {
        let (graph, mut world, levels, _) = setup(100, 5.0, 7, 1, 2);
        let before = world.time();
        let r = multi(&graph, &mut world, &levels, 0, &[0, 0]);
        assert_eq!(r.paths, vec![Some(vec![0]), Some(vec![0])]);
        assert_eq!((r.hops, r.rounds), (0, 0));
        assert_eq!(world.time(), before);
    }

    #[test]
    fn multi_beats_sequential_extraction_on_the_clock() {
        let (graph, mut world, levels, _) = setup(500, 6.0, 23, 2, 3);
        let targets: Vec<u64> = (0..500u64)
            .rev()
            .filter(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .take(16)
            .collect();
        let batched = multi(&graph, &mut world, &levels, 0, &targets);
        let mut seq = SimWorld::bluegene(world.grid());
        let t0 = seq.time();
        for &t in &targets {
            let _ = extract_path(&graph, &mut seq, &levels, 0, t);
        }
        let sequential = seq.time() - t0;
        assert!(
            batched.sim_time < sequential,
            "batched {} vs sequential {}",
            batched.sim_time,
            sequential
        );
    }

    #[test]
    fn multi_survives_lossy_control_rounds_unchanged() {
        use bgl_comm::FaultPlan;
        let spec = bgl_graph::GraphSpec::poisson(400, 6.0, 19);
        let grid = ProcessorGrid::new(2, 3);
        let graph = DistGraph::build(spec, grid);
        let mut clean = SimWorld::bluegene(grid);
        let result = bfs2d::run(&graph, &mut clean, &BfsConfig::default(), 0);
        let levels = result.levels;
        let targets = vec![399u64, 250, 100];
        let want = multi(&graph, &mut clean, &levels, 0, &targets).paths;

        let plan = FaultPlan::seeded(29)
            .with_control_drop_prob(0.4)
            .with_control_duplicate_prob(0.2);
        let mut faulty = SimWorld::bluegene(grid)
            .with_fault_plan(plan)
            .with_faulty_control();
        let got = try_multi(
            &graph,
            &mut faulty,
            &levels,
            0,
            &targets,
            &MultiPathConfig::default(),
        )
        .expect("retries ride out lossy control rounds");
        assert_eq!(got.paths, want, "faults must not change extracted paths");
    }

    #[test]
    fn multi_emits_path_walk_spans() {
        use bgl_comm::{EventKind, TraceDetail};
        let (graph, _, levels, _) = setup(400, 6.0, 19, 2, 3);
        let mut world = SimWorld::bluegene(ProcessorGrid::new(2, 3));
        world.enable_trace(TraceDetail::Span);
        let target = (0..400u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        let r = multi(&graph, &mut world, &levels, 0, &[target]);
        let trace = world.take_trace().unwrap();
        let spans = trace
            .events()
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e.kind,
                    EventKind::Span {
                        phase: Phase::PathWalk,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(spans as u32, r.hops);
    }

    #[test]
    fn validate_path_rejects_fakes() {
        let (_, _, levels, adj) = setup(200, 6.0, 29, 1, 1);
        // Not starting at the source level.
        assert!(!validate_path(&adj, &levels, &[1]));
        // Teleporting "path".
        let far = (0..200u64)
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        assert!(!validate_path(&adj, &levels, &[0, far]) || adj[0].contains(&far));
        // Empty path.
        assert!(!validate_path(&adj, &levels, &[]));
    }
}
