//! Distributed shortest-path extraction from BFS level labels.
//!
//! The paper's motivating application needs the *path*, not just the
//! distance ("the nature of the relationship between two vertices in a
//! semantic graph ... can be determined by the shortest path between
//! them"). The BFS messages carry bare vertex indices, so parents are
//! not recorded; instead the path is recovered afterwards by walking
//! levels downhill, one distributed query per hop:
//!
//! 1. the current vertex `v` (level `l`) is announced to `v`'s
//!    processor-column — the only ranks that can hold partial edge
//!    lists for it (expand-shaped query);
//! 2. each column peer forwards `v`'s partial neighbor list to the
//!    neighbors' owners, which sit in its processor-row (fold-shaped
//!    query);
//! 3. owners reply with their candidates at level `l − 1`, and the
//!    smallest candidate becomes the next vertex on the path
//!    (deterministic tie-break).
//!
//! Every hop costs three message rounds of small control messages —
//! `O(distance)` rounds total, charged to the cost model like any other
//! communication.

use crate::reference::UNREACHED;
use bgl_comm::{OpClass, SimWorld, Vert};
use bgl_graph::{DistGraph, Vertex};

/// Extract one shortest path `source → target` given the global level
/// array produced by a BFS from `source`. Returns `None` when the
/// target was not reached. The returned path starts at `source`, ends
/// at `target`, and has `levels[target] + 1` vertices.
pub fn extract_path(
    graph: &DistGraph,
    world: &mut SimWorld,
    levels: &[u32],
    source: Vertex,
    target: Vertex,
) -> Option<Vec<Vertex>> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert_eq!(
        levels.len() as u64,
        graph.spec.n,
        "level array size mismatch"
    );
    if levels[target as usize] == UNREACHED {
        return None;
    }
    debug_assert_eq!(
        levels[source as usize], 0,
        "levels must be rooted at source"
    );

    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        let l = levels[cur as usize];
        debug_assert!(l > 0);

        // Round 1 (expand-shaped): announce cur to its processor-column.
        // In a real deployment the owner broadcasts; ranks outside the
        // column stay silent.
        let owner = graph.partition.owner_of(cur);
        let col = grid.col_of(owner);
        let announce: Vec<(usize, usize, Vec<Vert>)> = (0..grid.rows())
            .map(|i| (owner, grid.rank_of(i, col), vec![cur]))
            .collect();
        let inboxes = world
            .exchange(OpClass::Control, announce)
            .expect("control traffic is fault-exempt");

        // Round 2 (fold-shaped): column peers forward cur's partial
        // neighbor lists to the neighbors' owners.
        let mut forwards: Vec<(usize, usize, Vec<Vert>)> = Vec::new();
        for (rank, inbox) in inboxes.iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let rg = &graph.ranks[rank];
            let neighbors = rg.edges.neighbors_of(cur);
            if neighbors.is_empty() {
                continue;
            }
            let row = grid.row_of(rank);
            let mut per_dest: Vec<Vec<Vert>> = vec![Vec::new(); grid.cols()];
            for &u in neighbors {
                per_dest[graph.partition.block_col_of(u)].push(u);
            }
            for (m, list) in per_dest.into_iter().enumerate() {
                if !list.is_empty() {
                    forwards.push((rank, grid.rank_of(row, m), list));
                }
            }
        }
        let inboxes = world
            .exchange(OpClass::Control, forwards)
            .expect("control traffic is fault-exempt");

        // Round 3: owners filter candidates at level l-1 and reply to
        // cur's owner; take the smallest for determinism.
        let mut replies: Vec<(usize, usize, Vec<Vert>)> = Vec::new();
        for (rank, inbox) in inboxes.iter().enumerate() {
            let mut best: Option<Vert> = None;
            for (_, list) in inbox {
                for &u in list {
                    debug_assert_eq!(graph.partition.owner_of(u), rank);
                    if levels[u as usize] == l - 1 {
                        best = Some(best.map_or(u, |b: Vert| b.min(u)));
                    }
                }
            }
            if let Some(u) = best {
                replies.push((rank, owner, vec![u]));
            }
        }
        let inboxes = world
            .exchange(OpClass::Control, replies)
            .expect("control traffic is fault-exempt");
        let parent = inboxes[owner]
            .iter()
            .flat_map(|(_, list)| list.iter().copied())
            .min()
            .expect("a reached vertex at level l must have a parent at level l-1");

        path.push(parent);
        cur = parent;
    }
    path.reverse();
    Some(path)
}

/// Validate that `path` is a genuine path in the graph described by
/// `adj` and that it is exactly as short as the level labels promise.
/// Test helper, exposed for the examples.
pub fn validate_path(adj: &[Vec<Vertex>], levels: &[u32], path: &[Vertex]) -> bool {
    if path.is_empty() {
        return false;
    }
    if levels[path[0] as usize] != 0 {
        return false;
    }
    for (i, w) in path.windows(2).enumerate() {
        let (a, b) = (w[0], w[1]);
        if !adj[a as usize].contains(&b) {
            return false;
        }
        if levels[b as usize] != i as u32 + 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs2d;
    use crate::config::BfsConfig;
    use crate::reference;
    use bgl_comm::ProcessorGrid;
    use bgl_graph::GraphSpec;

    fn setup(
        n: u64,
        k: f64,
        seed: u64,
        r: usize,
        c: usize,
    ) -> (DistGraph, SimWorld, Vec<u32>, Vec<Vec<Vertex>>) {
        let spec = GraphSpec::poisson(n, k, seed);
        let grid = ProcessorGrid::new(r, c);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let result = bfs2d::run(&graph, &mut world, &BfsConfig::default(), 0);
        let adj = bgl_graph::dist::adjacency(&spec);
        (graph, world, result.levels, adj)
    }

    #[test]
    fn extracted_paths_are_valid_shortest_paths() {
        let (graph, mut world, levels, adj) = setup(400, 6.0, 19, 2, 3);
        for target in [5u64, 100, 250, 399] {
            if levels[target as usize] == UNREACHED {
                continue;
            }
            let path = extract_path(&graph, &mut world, &levels, 0, target)
                .expect("reached target has a path");
            assert_eq!(path.first(), Some(&0));
            assert_eq!(path.last(), Some(&target));
            assert_eq!(path.len() as u32, levels[target as usize] + 1);
            assert!(validate_path(&adj, &levels, &path), "target {target}");
        }
    }

    #[test]
    fn unreached_target_has_no_path() {
        let (graph, mut world, levels, _) = setup(300, 1.2, 3, 2, 2);
        let t = (0..300u64)
            .find(|&v| levels[v as usize] == UNREACHED)
            .unwrap();
        assert!(extract_path(&graph, &mut world, &levels, 0, t).is_none());
    }

    #[test]
    fn source_to_source_is_trivial() {
        let (graph, mut world, levels, _) = setup(100, 5.0, 7, 1, 2);
        let path = extract_path(&graph, &mut world, &levels, 0, 0).unwrap();
        assert_eq!(path, vec![0]);
    }

    #[test]
    fn works_on_one_d_grids() {
        let (graph, mut world, levels, adj) = setup(300, 5.0, 11, 1, 4);
        let target = (0..300u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        let path = extract_path(&graph, &mut world, &levels, 0, target).unwrap();
        assert!(validate_path(&adj, &levels, &path));
    }

    #[test]
    fn path_matches_reference_distance() {
        let (graph, mut world, levels, adj) = setup(500, 4.0, 23, 3, 2);
        for target in [33u64, 222, 444] {
            let expect = reference::distance(&adj, 0, target);
            let got =
                extract_path(&graph, &mut world, &levels, 0, target).map(|p| p.len() as u32 - 1);
            assert_eq!(got, expect, "target {target}");
        }
    }

    #[test]
    fn extraction_charges_communication() {
        let (graph, mut world, levels, _) = setup(400, 6.0, 19, 2, 3);
        let target = (0..400u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        let before = world.comm_time();
        let _ = extract_path(&graph, &mut world, &levels, 0, target).unwrap();
        assert!(world.comm_time() > before);
        assert!(world.stats.class(OpClass::Control).messages > 0);
    }

    #[test]
    fn validate_path_on_handcrafted_diamond() {
        // 0 — 1 — 3
        //  \— 2 —/     levels from source 0: [0, 1, 1, 2]
        let adj: Vec<Vec<Vertex>> = vec![vec![1, 2], vec![0, 3], vec![0, 3], vec![1, 2]];
        let levels = [0u32, 1, 1, 2];
        // Both arms of the diamond are genuine shortest paths.
        assert!(validate_path(&adj, &levels, &[0, 1, 3]));
        assert!(validate_path(&adj, &levels, &[0, 2, 3]));
        // The trivial s == t path is exactly the source.
        assert!(validate_path(&adj, &levels, &[0]));
        // A non-source singleton is not rooted at level 0.
        assert!(!validate_path(&adj, &levels, &[3]));
        // 0 → 3 skips a level and is not an edge.
        assert!(!validate_path(&adj, &levels, &[0, 3]));
        // 1 → 2 stays at level 1: not downhill-by-one.
        assert!(!validate_path(&adj, &levels, &[0, 1, 2]));
    }

    #[test]
    fn validate_path_rejects_level_skips_on_a_chain() {
        // 0 — 1 — 2 — 3 with an extra chord 0 — 2.
        let adj: Vec<Vec<Vertex>> = vec![vec![1, 2], vec![0, 2], vec![0, 1, 3], vec![2]];
        let levels = [0u32, 1, 1, 2];
        assert!(validate_path(&adj, &levels, &[0, 2, 3]));
        // Real edges, but 0 → 1 → 2 → 3 claims 2 at level 2 ≠ 1.
        assert!(!validate_path(&adj, &levels, &[0, 1, 2, 3]));
        // Disconnected vertex pair: no edge 1 → 3 at all.
        assert!(!validate_path(&adj, &levels, &[0, 1, 3]));
    }

    #[test]
    fn extract_path_tie_breaks_to_smallest_parent() {
        // Every hop must choose the globally smallest neighbor at level
        // l − 1 — the documented deterministic tie-break.
        let (graph, mut world, levels, adj) = setup(400, 6.0, 19, 2, 3);
        let target = (0..400u64)
            .rev()
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        let path = extract_path(&graph, &mut world, &levels, 0, target).unwrap();
        for w in path.windows(2) {
            let (parent, child) = (w[0], w[1]);
            let min_parent = adj[child as usize]
                .iter()
                .copied()
                .filter(|&u| levels[u as usize] + 1 == levels[child as usize])
                .min()
                .unwrap();
            assert_eq!(parent, min_parent, "hop into {child} broke the tie-break");
        }
    }

    #[test]
    fn validate_path_rejects_fakes() {
        let (_, _, levels, adj) = setup(200, 6.0, 29, 1, 1);
        // Not starting at the source level.
        assert!(!validate_path(&adj, &levels, &[1]));
        // Teleporting "path".
        let far = (0..200u64)
            .find(|&v| levels[v as usize] != UNREACHED && levels[v as usize] >= 2)
            .unwrap();
        assert!(!validate_path(&adj, &levels, &[0, far]) || adj[0].contains(&far));
        // Empty path.
        assert!(!validate_path(&adj, &levels, &[]));
    }
}
