//! Distributed breadth-first expansion with 1D partitioning — the
//! paper's Algorithm 1, implemented directly.
//!
//! Under 1D (vertex) partitioning each processor owns a contiguous
//! vertex range *and the complete edge lists* of those vertices, so
//! there is no expand phase: neighbors are discovered locally and sent
//! straight to their owners (the fold; "the communication step in the 1D
//! partitioning is the same as the fold operation in the 2D
//! partitioning", §2.2).
//!
//! This is a deliberately independent code path from
//! [`crate::bfs2d`] — the paper notes 1D is equivalent to 2D with
//! `R = 1`, and the test suite *proves* our two implementations agree on
//! labels and on fold wire volume, which cross-validates both.

use crate::bfs2d::{BfsResult, FoldOut};
use crate::config::{BfsConfig, FoldStrategy};
use crate::state::{gather_levels, RankState};
use crate::stats::{LevelStats, RunStats};
use bgl_comm::collectives::{
    alltoall::alltoallv, reduce_scatter::reduce_scatter_union_ring, two_phase::two_phase_fold,
    Groups,
};
use bgl_comm::{CommError, OpClass, Phase, SimWorld, Vert};
use bgl_graph::{DistGraph, Vertex};

/// Run Algorithm 1 from `source`. The graph must be distributed on a
/// `1 × P` grid (the conventional 1D partitioning).
///
/// Panics on a communication fault — the 1D reference path is meant
/// for fault-free worlds; use [`try_run`] to handle faults.
pub fn run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> BfsResult {
    try_run(graph, world, config, source)
        // bgl-lint: allow(r1, reason = "documented infallible convenience wrapper; fault-injecting callers use try_run")
        .unwrap_or_else(|e| panic!("communication fault during 1D BFS: {e} (use try_run)"))
}

/// [`run`] with communication faults surfaced as typed errors.
pub fn try_run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
) -> Result<BfsResult, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert_eq!(
        grid.rows(),
        1,
        "Algorithm 1 requires the 1 x P (1D) processor layout"
    );
    assert!(source < graph.spec.n, "source out of range");
    let p = grid.len();

    // With R = 1 the only group is the single processor-row: all of P.
    let row_groups = Groups::rows_of(grid);

    let mut states: Vec<RankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| RankState::new(rg, graph.partition, config.sent_neighbors))
        .collect();
    states[graph.partition.owner_of(source)].init_source(source);

    let mut level_records = Vec::new();
    let mut target_level = None;
    let mut level: u32 = 0;

    loop {
        if config.max_levels > 0 && level >= config.max_levels {
            break;
        }
        let time_at_start = world.time();
        let comm_at_start = world.comm_time();
        let codec_at_start = world.codec_time();
        let comm_snapshot = world.stats.clone();

        let frontier_sizes: Vec<u64> = states.iter().map(|s| s.frontier_len()).collect();
        let global_frontier = world.allreduce_sum(&frontier_sizes);
        world.trace_span(Phase::Termination, level, time_at_start);
        if global_frontier == 0 {
            break;
        }

        // Local discovery straight from the frontier: N ← neighbors of F
        // (Algorithm 1 step 7). Edge lists are complete at the owner.
        let t_discover = world.time();
        let blocks: Vec<Vec<Vec<Vert>>> = config.engine.map_mut(&mut states, |s| {
            let f = std::mem::take(&mut s.frontier);
            let out = s.discover(&[&f]);
            s.frontier = f;
            out
        });

        world.trace_span(Phase::Discover, level, t_discover);

        // Steps 8–13: send N_q to owner q.
        let t_fold = world.time();
        let nbar: FoldOut = match config.fold {
            FoldStrategy::DirectAllToAll => {
                let sends: Vec<Vec<(usize, Vec<Vert>)>> = blocks
                    .into_iter()
                    .map(|bs| {
                        bs.into_iter()
                            .enumerate()
                            .filter(|(_, b)| !b.is_empty())
                            .collect()
                    })
                    .collect();
                FoldOut::PerSender(
                    alltoallv(world, OpClass::Fold, &row_groups, sends)?
                        .into_iter()
                        .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                        .collect(),
                )
            }
            FoldStrategy::ReduceScatterUnion => FoldOut::Union(reduce_scatter_union_ring(
                world,
                OpClass::Fold,
                &row_groups,
                blocks,
            )?),
            FoldStrategy::TwoPhaseRing => {
                FoldOut::Union(two_phase_fold(world, OpClass::Fold, &row_groups, blocks)?)
            }
        };

        world.trace_span(Phase::Fold, level, t_fold);

        // Steps 14–16: label new vertices.
        let t_absorb = world.time();
        match &nbar {
            FoldOut::PerSender(lists) => {
                let _: Vec<u64> = config.engine.zip_map(&mut states, lists, |s, lists| {
                    let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
                    s.absorb(&refs, level + 1)
                });
            }
            FoldOut::Union(sets) => {
                let _: Vec<u64> = config
                    .engine
                    .zip_map(&mut states, sets, |s, set| s.absorb_set(set, level + 1));
            }
        }
        drop(nbar);
        let probes: Vec<u64> = states.iter_mut().map(RankState::take_probes).collect();
        world.hash_phase(&probes);

        if let Some(t) = config.target {
            let flags: Vec<bool> = states.iter().map(|s| s.level_of(t).is_some()).collect();
            if world.allreduce_or(&flags) {
                target_level = Some(level + 1);
            }
        }
        world.trace_span(Phase::Absorb, level, t_absorb);
        world.trace_span(Phase::Level, level, time_at_start);

        let delta = world.stats.minus(&comm_snapshot);
        level_records.push(LevelStats {
            level,
            frontier: global_frontier,
            expand_received: delta.class(OpClass::Expand).received_verts,
            fold_received: delta.class(OpClass::Fold).received_verts,
            dups_eliminated: delta.total_dups_eliminated(),
            sim_time: world.time() - time_at_start,
            comm_time: world.comm_time() - comm_at_start,
            list_unions: delta.setops.list_unions,
            bitmap_unions: delta.setops.bitmap_unions,
            densify_switches: delta.setops.densify_switches,
            logical_bytes: delta.total_logical_bytes(),
            wire_bytes: delta.total_wire_bytes(),
            codec_time: world.codec_time() - codec_at_start,
            // 1D BFS is top-down only.
            ..LevelStats::default()
        });

        if target_level.is_some() {
            break;
        }
        level += 1;
    }

    if let Some(t) = config.target {
        if t == source {
            target_level = Some(0);
        }
    }

    let levels = gather_levels(&states, graph.spec.n);
    let reached = states.iter().map(|s| s.reached()).sum();
    Ok(BfsResult {
        stats: RunStats {
            levels: level_records,
            sim_time: world.time(),
            comm_time: world.comm_time(),
            compute_time: world.compute_time(),
            codec_time: world.codec_time(),
            reached,
            comm: world.stats.clone(),
            p,
        },
        target_level,
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bgl_comm::ProcessorGrid;
    use bgl_graph::GraphSpec;

    #[test]
    fn matches_oracle() {
        let spec = GraphSpec::poisson(300, 6.0, 8);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 0);
        for p in [1, 2, 5, 8] {
            let grid = ProcessorGrid::one_d(p);
            let graph = DistGraph::build(spec, grid);
            let mut world = SimWorld::bluegene(grid);
            let got = run(&graph, &mut world, &BfsConfig::default(), 0);
            assert_eq!(got.levels, expect, "p={p}");
        }
    }

    #[test]
    fn equivalent_to_2d_with_r_equals_1() {
        // Paper §2.2: "The conventional 1D partitioning is equivalent to
        // the 2D partitioning with R = 1". Same labels AND same fold
        // wire volume.
        let spec = GraphSpec::poisson(400, 7.0, 15);
        let grid = ProcessorGrid::one_d(6);
        let graph = DistGraph::build(spec, grid);
        let config = BfsConfig::default();

        let mut w1 = SimWorld::bluegene(grid);
        let one_d = run(&graph, &mut w1, &config, 3);
        let mut w2 = SimWorld::bluegene(grid);
        let two_d = crate::bfs2d::run(&graph, &mut w2, &config, 3);

        assert_eq!(one_d.levels, two_d.levels);
        assert_eq!(
            one_d.stats.comm.class(OpClass::Fold).received_verts,
            two_d.stats.comm.class(OpClass::Fold).received_verts,
        );
        // 2D with R = 1 has no expand wire traffic either.
        assert_eq!(two_d.stats.comm.class(OpClass::Expand).received_verts, 0);
        assert_eq!(one_d.stats.comm.class(OpClass::Expand).received_verts, 0);
    }

    #[test]
    fn all_fold_strategies_agree() {
        let spec = GraphSpec::poisson(350, 8.0, 21);
        let grid = ProcessorGrid::one_d(7);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_graph::dist::adjacency(&spec);
        let expect = reference::bfs_levels(&adj, 5);
        for fold in [
            FoldStrategy::DirectAllToAll,
            FoldStrategy::ReduceScatterUnion,
            FoldStrategy::TwoPhaseRing,
        ] {
            let mut world = SimWorld::bluegene(grid);
            let config = BfsConfig {
                fold,
                ..BfsConfig::default()
            };
            let got = run(&graph, &mut world, &config, 5);
            assert_eq!(got.levels, expect, "{fold:?}");
        }
    }

    #[test]
    #[should_panic(expected = "1 x P")]
    fn rejects_2d_grid() {
        let spec = GraphSpec::poisson(100, 4.0, 1);
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let _ = run(&graph, &mut world, &BfsConfig::default(), 0);
    }

    #[test]
    fn single_rank_no_communication() {
        let spec = GraphSpec::poisson(150, 5.0, 4);
        let grid = ProcessorGrid::one_d(1);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default(), 0);
        assert_eq!(got.stats.comm.total_received(), 0);
        assert!(got.stats.reached > 1);
    }
}
