//! Sequential reference BFS — the correctness oracle.
//!
//! Every distributed variant must label vertices with exactly the graph
//! distances this implementation produces on the same generated graph.

use bgl_graph::Vertex;

/// Level label meaning "unreached" (the paper's `∞`).
pub const UNREACHED: u32 = u32::MAX;

/// Plain queue-based BFS over an adjacency list. Returns per-vertex
/// levels (graph distance from `source`), with [`UNREACHED`] for
/// vertices in other components.
pub fn bfs_levels(adj: &[Vec<Vertex>], source: Vertex) -> Vec<u32> {
    let n = adj.len();
    assert!((source as usize) < n, "source {source} out of range");
    let mut levels = vec![UNREACHED; n];
    let mut queue = std::collections::VecDeque::new();
    levels[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let next = levels[v as usize] + 1;
        for &u in &adj[v as usize] {
            if levels[u as usize] == UNREACHED {
                levels[u as usize] = next;
                queue.push_back(u);
            }
        }
    }
    levels
}

/// Shortest-path distance between two vertices, if connected.
pub fn distance(adj: &[Vec<Vertex>], source: Vertex, target: Vertex) -> Option<u32> {
    let levels = bfs_levels(adj, source);
    match levels[target as usize] {
        UNREACHED => None,
        d => Some(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Vec<Vec<Vertex>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i as Vertex - 1);
                }
                if i + 1 < n {
                    v.push(i as Vertex + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn path_levels() {
        let adj = path_graph(5);
        assert_eq!(bfs_levels(&adj, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&adj, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_marked_unreached() {
        let adj = vec![vec![1], vec![0], vec![]];
        let l = bfs_levels(&adj, 0);
        assert_eq!(l, vec![0, 1, UNREACHED]);
        assert_eq!(distance(&adj, 0, 2), None);
        assert_eq!(distance(&adj, 0, 1), Some(1));
    }

    #[test]
    fn matches_generated_graph_symmetry() {
        // d(a, b) == d(b, a) on an undirected generated graph.
        let spec = bgl_graph::GraphSpec::poisson(300, 5.0, 17);
        let adj = bgl_graph::dist::adjacency(&spec);
        for (a, b) in [(0u64, 120u64), (5, 250), (33, 34)] {
            assert_eq!(distance(&adj, a, b), distance(&adj, b, a));
        }
    }

    #[test]
    fn levels_are_valid_bfs_labelling() {
        // Every edge differs by at most one level; every reached
        // non-source vertex has a neighbor one level below.
        let spec = bgl_graph::GraphSpec::poisson(400, 4.0, 23);
        let adj = bgl_graph::dist::adjacency(&spec);
        let levels = bfs_levels(&adj, 7);
        for (v, list) in adj.iter().enumerate() {
            for &u in list {
                let (lv, lu) = (levels[v], levels[u as usize]);
                if lv != UNREACHED {
                    assert_ne!(lu, UNREACHED, "neighbor of reached must be reached");
                    assert!(lv.abs_diff(lu) <= 1);
                }
            }
            if levels[v] != UNREACHED && levels[v] != 0 {
                assert!(
                    list.iter().any(|&u| levels[u as usize] == levels[v] - 1),
                    "vertex {v} has no parent"
                );
            }
        }
    }
}
