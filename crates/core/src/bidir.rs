//! Bi-directional distributed BFS (paper §2.3).
//!
//! Two level-synchronized searches run simultaneously — one from the
//! source, one from the destination — each using the full 2D expand /
//! fold machinery. The loop advances the side with the smaller global
//! frontier (keeping both frontiers small is exactly the advantage the
//! paper cites: "the frontier of the search remains small compared to
//! the uni-directional case. This reduces the communication volume as
//! well as the number of memory accesses").
//!
//! Meet detection: after absorbing a level, each rank checks its *newly
//! labeled* vertices against the other side's labels and tracks the
//! best `d_s(v) + d_t(v)`; an `allreduce_min` publishes the global
//! candidate. The search may not stop at first contact — it continues
//! until `depth_s + depth_t >= candidate`, which guarantees the returned
//! distance is exact (any shorter path would contain a doubly-labeled
//! vertex with a smaller sum).

use crate::bfs2d::FoldOut;
use crate::config::{BfsConfig, ExpandStrategy, FoldStrategy};
use crate::state::RankState;
use crate::stats::{LevelStats, RunStats};
use bgl_comm::collectives::{
    allgather::allgather_ring,
    alltoall::alltoallv,
    reduce_scatter::reduce_scatter_union_ring,
    two_phase::{two_phase_expand, two_phase_fold},
    Groups,
};
use bgl_comm::{CommError, OpClass, Phase, SimWorld, Vert};
use bgl_graph::{DistGraph, Vertex};

/// Outcome of a bi-directional search.
#[derive(Debug, Clone)]
pub struct BidirResult {
    /// Shortest-path distance between source and target, if connected.
    pub distance: Option<u32>,
    /// Run statistics (levels are the advanced half-steps, in order).
    pub stats: RunStats,
}

/// Which search direction a state vector belongs to.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    Source,
    Target,
}

/// Run a bi-directional search between `source` and `target`.
///
/// Panics on a communication fault — bi-directional search is meant
/// for fault-free worlds; use [`try_run`] to handle faults.
pub fn run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
    target: Vertex,
) -> BidirResult {
    try_run(graph, world, config, source, target).unwrap_or_else(|e| {
        // bgl-lint: allow(r1, reason = "documented infallible convenience wrapper; fault-injecting callers use try_run")
        panic!("communication fault during bi-directional search: {e} (use try_run)")
    })
}

/// [`run`] with communication faults surfaced as typed errors.
pub fn try_run(
    graph: &DistGraph,
    world: &mut SimWorld,
    config: &BfsConfig,
    source: Vertex,
    target: Vertex,
) -> Result<BidirResult, CommError> {
    let grid = world.grid();
    assert_eq!(grid, graph.grid(), "world and graph grids must match");
    assert!(source < graph.spec.n && target < graph.spec.n);
    let p = grid.len();

    if source == target {
        return Ok(BidirResult {
            distance: Some(0),
            stats: RunStats {
                levels: Vec::new(),
                sim_time: 0.0,
                comm_time: 0.0,
                compute_time: 0.0,
                codec_time: 0.0,
                reached: 1,
                comm: world.stats.clone(),
                p,
            },
        });
    }

    let row_groups = Groups::rows_of(grid);
    let col_groups = Groups::cols_of(grid);

    let mut st_s: Vec<RankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| RankState::new(rg, graph.partition, config.sent_neighbors))
        .collect();
    let mut st_t: Vec<RankState<'_>> = graph
        .ranks
        .iter()
        .map(|rg| RankState::new(rg, graph.partition, config.sent_neighbors))
        .collect();
    st_s[graph.partition.owner_of(source)].init_source(source);
    st_t[graph.partition.owner_of(target)].init_source(target);

    // Per-rank best meet sum found so far.
    let mut best_local = vec![u64::MAX; p];
    let mut candidate = u64::MAX;
    let (mut depth_s, mut depth_t) = (0u64, 0u64);
    let mut level_records = Vec::new();
    let mut iter: u32 = 0;

    loop {
        if config.max_levels > 0 && iter >= 2 * config.max_levels {
            break;
        }
        if candidate <= depth_s + depth_t {
            break; // the candidate is provably the shortest distance.
        }
        let fs: Vec<u64> = st_s.iter().map(|s| s.frontier_len()).collect();
        let ft: Vec<u64> = st_t.iter().map(|s| s.frontier_len()).collect();
        let gs = world.allreduce_sum(&fs);
        let gt = world.allreduce_sum(&ft);
        if gs == 0 && gt == 0 {
            break; // both exhausted: disconnected (or candidate found).
        }
        // Advance the smaller live frontier.
        let side = if gs == 0 {
            Side::Target
        } else if gt == 0 || gs <= gt {
            Side::Source
        } else {
            Side::Target
        };

        let time_at_start = world.time();
        let comm_at_start = world.comm_time();
        let codec_at_start = world.codec_time();
        let comm_snapshot = world.stats.clone();

        let (states, other, depth, frontier_size) = match side {
            Side::Source => (&mut st_s, &st_t, &mut depth_s, gs),
            Side::Target => (&mut st_t, &st_s, &mut depth_t, gt),
        };
        let next_level = *depth as u32 + 1;

        // --- one full level of the chosen side (expand/discover/fold).
        let t_expand = world.time();
        let fbar: Vec<Vec<Vec<Vert>>> = match config.expand {
            ExpandStrategy::Targeted => {
                let sends: Vec<Vec<(usize, Vec<Vert>)>> = config
                    .engine
                    .map_mut(states, RankState::expand_sends_targeted);
                alltoallv(world, OpClass::Expand, &col_groups, sends)?
                    .into_iter()
                    .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
            ExpandStrategy::AllGatherRing => {
                let contributions: Vec<Vec<Vert>> =
                    states.iter().map(|s| s.frontier.clone()).collect();
                allgather_ring(world, OpClass::Expand, &col_groups, contributions)?
                    .into_iter()
                    .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
            ExpandStrategy::TwoPhaseRing => {
                let contributions: Vec<Vec<Vert>> =
                    states.iter().map(|s| s.frontier.clone()).collect();
                two_phase_expand(world, OpClass::Expand, &col_groups, contributions)?
                    .into_iter()
                    .map(|parts| parts.into_iter().map(|(_, pl)| pl).collect())
                    .collect()
            }
        };
        world.trace_span(Phase::Expand, iter, t_expand);
        let t_discover = world.time();
        let blocks: Vec<Vec<Vec<Vert>>> = config.engine.zip_map(states, &fbar, |s, lists| {
            let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
            s.discover(&refs)
        });
        drop(fbar);
        world.trace_span(Phase::Discover, iter, t_discover);
        let t_fold = world.time();
        let nbar: FoldOut = match config.fold {
            FoldStrategy::DirectAllToAll => {
                let sends: Vec<Vec<(usize, Vec<Vert>)>> = blocks
                    .into_iter()
                    .enumerate()
                    .map(|(rank, bs)| {
                        let i = grid.row_of(rank);
                        bs.into_iter()
                            .enumerate()
                            .filter(|(_, b)| !b.is_empty())
                            .map(|(m, b)| (grid.rank_of(i, m), b))
                            .collect()
                    })
                    .collect();
                FoldOut::PerSender(
                    alltoallv(world, OpClass::Fold, &row_groups, sends)?
                        .into_iter()
                        .map(|inbox| inbox.into_iter().map(|(_, pl)| pl).collect())
                        .collect(),
                )
            }
            FoldStrategy::ReduceScatterUnion => FoldOut::Union(reduce_scatter_union_ring(
                world,
                OpClass::Fold,
                &row_groups,
                blocks,
            )?),
            FoldStrategy::TwoPhaseRing => {
                FoldOut::Union(two_phase_fold(world, OpClass::Fold, &row_groups, blocks)?)
            }
        };
        world.trace_span(Phase::Fold, iter, t_fold);
        let t_absorb = world.time();
        match &nbar {
            FoldOut::PerSender(lists) => {
                let _: Vec<u64> = config.engine.zip_map(states, lists, |s, lists| {
                    let refs: Vec<&[Vert]> = lists.iter().map(Vec::as_slice).collect();
                    s.absorb(&refs, next_level)
                });
            }
            FoldOut::Union(sets) => {
                let _: Vec<u64> = config
                    .engine
                    .zip_map(states, sets, |s, set| s.absorb_set(set, next_level));
            }
        }
        drop(nbar);

        // --- meet detection on the newly labeled frontier (each rank
        // probes its fresh labels against the other side's labels; the
        // per-rank minima merge into `best_local` in rank order).
        let meets: Vec<u64> = config.engine.zip_map(states, other, |s, o| {
            let mut best = u64::MAX;
            for &v in &s.frontier {
                s.probes += 1;
                if let Some(l_other) = o.level_of(v) {
                    best = best.min(next_level as u64 + l_other as u64);
                }
            }
            best
        });
        for (slot, m) in best_local.iter_mut().zip(&meets) {
            *slot = (*slot).min(*m);
        }
        let probes: Vec<u64> = states.iter_mut().map(RankState::take_probes).collect();
        world.hash_phase(&probes);
        candidate = candidate.min(world.allreduce_min(&best_local));
        // Absorb also covers meet detection and the min-allreduce.
        world.trace_span(Phase::Absorb, iter, t_absorb);
        world.trace_span(Phase::Level, iter, time_at_start);
        *depth += 1;

        let delta = world.stats.minus(&comm_snapshot);
        level_records.push(LevelStats {
            level: iter,
            frontier: frontier_size,
            expand_received: delta.class(OpClass::Expand).received_verts,
            fold_received: delta.class(OpClass::Fold).received_verts,
            dups_eliminated: delta.total_dups_eliminated(),
            sim_time: world.time() - time_at_start,
            comm_time: world.comm_time() - comm_at_start,
            list_unions: delta.setops.list_unions,
            bitmap_unions: delta.setops.bitmap_unions,
            densify_switches: delta.setops.densify_switches,
            logical_bytes: delta.total_logical_bytes(),
            wire_bytes: delta.total_wire_bytes(),
            codec_time: world.codec_time() - codec_at_start,
            // Bi-directional search alternates sides, not directions.
            ..LevelStats::default()
        });
        iter += 1;
    }

    let reached: u64 = st_s.iter().map(|s| s.reached()).sum::<u64>()
        + st_t.iter().map(|s| s.reached()).sum::<u64>();
    Ok(BidirResult {
        distance: (candidate != u64::MAX).then_some(candidate as u32),
        stats: RunStats {
            levels: level_records,
            sim_time: world.time(),
            comm_time: world.comm_time(),
            compute_time: world.compute_time(),
            codec_time: world.codec_time(),
            reached,
            comm: world.stats.clone(),
            p,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bgl_comm::ProcessorGrid;
    use bgl_graph::GraphSpec;

    fn check_distances(spec: GraphSpec, grid: ProcessorGrid, pairs: &[(u64, u64)]) {
        let adj = bgl_graph::dist::adjacency(&spec);
        let graph = DistGraph::build(spec, grid);
        for &(s, t) in pairs {
            let expect = reference::distance(&adj, s, t);
            let mut world = SimWorld::bluegene(grid);
            let got = run(&graph, &mut world, &BfsConfig::default(), s, t);
            assert_eq!(got.distance, expect, "s={s} t={t}");
        }
    }

    #[test]
    fn exact_distances_on_random_graph() {
        let spec = GraphSpec::poisson(400, 6.0, 37);
        check_distances(
            spec,
            ProcessorGrid::new(2, 3),
            &[(0, 399), (1, 200), (5, 6), (17, 18), (100, 101)],
        );
    }

    #[test]
    fn exact_distances_sparse_long_paths() {
        // Sparse graph => long shortest paths; stresses the termination
        // condition (candidate vs depth sums).
        let spec = GraphSpec::poisson(600, 2.5, 53);
        check_distances(
            spec,
            ProcessorGrid::new(2, 2),
            &[(0, 599), (3, 300), (10, 550)],
        );
    }

    #[test]
    fn disconnected_returns_none() {
        let spec = GraphSpec::poisson(300, 1.2, 3);
        let adj = bgl_graph::dist::adjacency(&spec);
        let levels = reference::bfs_levels(&adj, 0);
        let t = (0..300u64)
            .find(|&v| levels[v as usize] == reference::UNREACHED)
            .expect("disconnected vertex exists at k=1.2");
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default(), 0, t);
        assert_eq!(got.distance, None);
    }

    #[test]
    fn identical_endpoints() {
        let spec = GraphSpec::poisson(100, 4.0, 2);
        let grid = ProcessorGrid::new(1, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default(), 42, 42);
        assert_eq!(got.distance, Some(0));
        assert!(got.stats.levels.is_empty());
    }

    #[test]
    fn adjacent_endpoints() {
        let spec = GraphSpec::poisson(200, 8.0, 11);
        let adj = bgl_graph::dist::adjacency(&spec);
        // Find an edge.
        let (s, t) = adj
            .iter()
            .enumerate()
            .find_map(|(v, list)| list.first().map(|&u| (v as u64, u)))
            .expect("graph has edges");
        let grid = ProcessorGrid::new(2, 2);
        let graph = DistGraph::build(spec, grid);
        let mut world = SimWorld::bluegene(grid);
        let got = run(&graph, &mut world, &BfsConfig::default(), s, t);
        assert_eq!(got.distance, Some(1));
    }

    #[test]
    fn bidirectional_moves_less_volume_than_unidirectional() {
        // Paper Figure 4.c: bi-directional search reduces message volume.
        let spec = GraphSpec::poisson(2000, 8.0, 101);
        let grid = ProcessorGrid::new(2, 4);
        let graph = DistGraph::build(spec, grid);
        let adj = bgl_graph::dist::adjacency(&spec);
        // Pick endpoints at distance >= 3 so both searches do real work.
        let levels = reference::bfs_levels(&adj, 0);
        let t = (0..2000u64)
            .rev()
            .find(|&v| levels[v as usize] >= 3 && levels[v as usize] != reference::UNREACHED)
            .expect("far vertex exists");

        let mut w_uni = SimWorld::bluegene(grid);
        let uni = crate::bfs2d::run(&graph, &mut w_uni, &BfsConfig::default().with_target(t), 0);
        let mut w_bi = SimWorld::bluegene(grid);
        let bi = run(&graph, &mut w_bi, &BfsConfig::default(), 0, t);

        assert_eq!(bi.distance, Some(uni.target_level.unwrap()));
        assert!(
            bi.stats.total_received() < uni.stats.total_received(),
            "bi {} vs uni {}",
            bi.stats.total_received(),
            uni.stats.total_received()
        );
    }
}
