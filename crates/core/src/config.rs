//! BFS run configuration: which of the paper's strategies to use.

use crate::engine::ComputeEngine;
use bgl_graph::Vertex;
use serde::{Deserialize, Serialize};

/// How the expand operation (frontier → processor-column) communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpandStrategy {
    /// Targeted all-to-all: a frontier vertex is sent only to the column
    /// peers that hold a non-empty partial edge list for it (§2.2/§3.1 —
    /// the strategy whose message length is bounded by
    /// `n/P · γ(n/R) · (R−1)`). Requires the expand-targeting tables.
    Targeted,
    /// Ring all-gather of whole frontiers: every column peer receives
    /// every frontier vertex (`n/P · (R−1)` worst case — the
    /// non-scalable baseline the paper calls out).
    AllGatherRing,
    /// The §3.2.2 two-phase grouped-ring broadcast.
    TwoPhaseRing,
}

/// How the fold operation (neighbors → owners in the processor-row)
/// communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FoldStrategy {
    /// Direct targeted all-to-all; duplicate elimination happens only at
    /// the receiver (Algorithm 2 line 18).
    DirectAllToAll,
    /// Ring reduce-scatter with set-union reduction (§2.2's
    /// reduce-scatter alternative).
    ReduceScatterUnion,
    /// The §3.2.2 two-phase grouped-ring union-fold (the paper's
    /// BlueGene/L-optimized collective, Figure 2).
    TwoPhaseRing,
}

/// Full configuration of one BFS run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BfsConfig {
    /// Expand strategy.
    pub expand: ExpandStrategy,
    /// Fold strategy.
    pub fold: FoldStrategy,
    /// Enable the §2.4.3 sent-neighbors cache (a vertex already sent to
    /// its owner is never sent again by the same rank).
    pub sent_neighbors: bool,
    /// Optional search target: the run stops at the level where the
    /// target is labeled. `None` (or an unreachable target) traverses
    /// the whole component — the paper's Figure 6 worst case.
    pub target: Option<Vertex>,
    /// Safety cap on levels (0 disables the cap).
    pub max_levels: u32,
    /// How per-rank compute closures execute on the host (serial or
    /// rayon worker threads); never affects results or simulated time.
    #[serde(default)]
    pub engine: ComputeEngine,
}

impl BfsConfig {
    /// The paper's optimized BlueGene/L configuration: targeted expand,
    /// two-phase union-fold, sent-neighbors cache on.
    pub fn paper_optimized() -> Self {
        Self {
            expand: ExpandStrategy::Targeted,
            fold: FoldStrategy::TwoPhaseRing,
            sent_neighbors: true,
            target: None,
            max_levels: 0,
            engine: ComputeEngine::Auto,
        }
    }

    /// The unoptimized baseline: direct all-to-all everywhere, no
    /// en-route union.
    pub fn baseline_alltoall() -> Self {
        Self {
            expand: ExpandStrategy::Targeted,
            fold: FoldStrategy::DirectAllToAll,
            sent_neighbors: true,
            target: None,
            max_levels: 0,
            engine: ComputeEngine::Auto,
        }
    }

    /// Set a search target.
    pub fn with_target(mut self, target: Vertex) -> Self {
        self.target = Some(target);
        self
    }

    /// Set the host-side compute engine.
    pub fn with_engine(mut self, engine: ComputeEngine) -> Self {
        self.engine = engine;
        self
    }
}

impl Default for BfsConfig {
    fn default() -> Self {
        Self::paper_optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_optimized() {
        let c = BfsConfig::default();
        assert_eq!(c.expand, ExpandStrategy::Targeted);
        assert_eq!(c.fold, FoldStrategy::TwoPhaseRing);
        assert!(c.sent_neighbors);
        assert!(c.target.is_none());
    }

    #[test]
    fn with_target_sets_target() {
        let c = BfsConfig::default().with_target(42);
        assert_eq!(c.target, Some(42));
    }
}
