//! BFS run configuration: which of the paper's strategies to use.

use crate::engine::ComputeEngine;
use bgl_graph::Vertex;
use serde::{Deserialize, Serialize};

/// How the expand operation (frontier → processor-column) communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExpandStrategy {
    /// Targeted all-to-all: a frontier vertex is sent only to the column
    /// peers that hold a non-empty partial edge list for it (§2.2/§3.1 —
    /// the strategy whose message length is bounded by
    /// `n/P · γ(n/R) · (R−1)`). Requires the expand-targeting tables.
    Targeted,
    /// Ring all-gather of whole frontiers: every column peer receives
    /// every frontier vertex (`n/P · (R−1)` worst case — the
    /// non-scalable baseline the paper calls out).
    AllGatherRing,
    /// The §3.2.2 two-phase grouped-ring broadcast.
    TwoPhaseRing,
}

/// How the fold operation (neighbors → owners in the processor-row)
/// communicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FoldStrategy {
    /// Direct targeted all-to-all; duplicate elimination happens only at
    /// the receiver (Algorithm 2 line 18).
    DirectAllToAll,
    /// Ring reduce-scatter with set-union reduction (§2.2's
    /// reduce-scatter alternative).
    ReduceScatterUnion,
    /// The §3.2.2 two-phase grouped-ring union-fold (the paper's
    /// BlueGene/L-optimized collective, Figure 2).
    TwoPhaseRing,
}

/// Which traversal direction the engine may use per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DirectionMode {
    /// Always top-down (expand → discover → fold) — the paper's
    /// algorithm, and the default: existing runs stay byte-identical.
    #[default]
    TopDown,
    /// Beamer-style adaptive switching: each level deterministically
    /// picks top-down or bottom-up from globally-allreduced frontier
    /// and unexplored-edge counts (no extra communication rounds —
    /// the counts ride the termination allreduce widened to 3 words).
    Adaptive,
    /// Force bottom-up on every non-empty level (testing/ablation).
    BottomUp,
}

/// Direction-optimization policy: mode plus the α/β switch thresholds.
///
/// The per-level decision is computed from three globally-allreduced
/// `u64`s — frontier size `gf`, local-degree frontier mass `mf̂` (≈
/// `m_f / R`), and unexplored stored entries `mû` — using pure integer
/// arithmetic, so every rank (and both runtimes) makes the identical
/// choice: go bottom-up iff `alpha · R · mf̂ > mû` **and**
/// `beta · gf > n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectionPolicy {
    /// Direction mode.
    pub mode: DirectionMode,
    /// Top-down→bottom-up edge-mass threshold (Beamer's α; the frontier
    /// must touch more than `mû / α` of the unexplored edges).
    pub alpha: u64,
    /// Frontier-size floor (Beamer's β reciprocal form: bottom-up only
    /// while `gf > n / β`).
    pub beta: u64,
}

impl DirectionPolicy {
    /// Pure top-down (the default — preserves all existing runs).
    pub fn top_down() -> Self {
        Self {
            mode: DirectionMode::TopDown,
            alpha: 0,
            beta: 0,
        }
    }

    /// Adaptive switching with Beamer's published constants
    /// (α = 14, β = 24).
    pub fn adaptive() -> Self {
        Self {
            mode: DirectionMode::Adaptive,
            alpha: 14,
            beta: 24,
        }
    }

    /// Force bottom-up on every non-empty level.
    pub fn bottom_up() -> Self {
        Self {
            mode: DirectionMode::BottomUp,
            ..Self::adaptive()
        }
    }

    /// The switch decision, given the three allreduced global counts,
    /// the graph's vertex count `n`, and the grid's row count `r`.
    /// Integer-only, hence bit-reproducible across ranks and runtimes.
    pub fn wants_bottom_up(&self, gf: u64, mf_hat: u64, mu_hat: u64, n: u64, r: u64) -> bool {
        match self.mode {
            DirectionMode::TopDown => false,
            DirectionMode::BottomUp => gf > 0,
            DirectionMode::Adaptive => {
                gf > 0
                    && self.alpha.saturating_mul(r).saturating_mul(mf_hat) > mu_hat
                    && self.beta.saturating_mul(gf) > n
            }
        }
    }
}

impl Default for DirectionPolicy {
    fn default() -> Self {
        Self::top_down()
    }
}

/// Full configuration of one BFS run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BfsConfig {
    /// Expand strategy.
    pub expand: ExpandStrategy,
    /// Fold strategy.
    pub fold: FoldStrategy,
    /// Enable the §2.4.3 sent-neighbors cache (a vertex already sent to
    /// its owner is never sent again by the same rank).
    pub sent_neighbors: bool,
    /// Optional search target: the run stops at the level where the
    /// target is labeled. `None` (or an unreachable target) traverses
    /// the whole component — the paper's Figure 6 worst case.
    pub target: Option<Vertex>,
    /// Safety cap on levels (0 disables the cap).
    pub max_levels: u32,
    /// How per-rank compute closures execute on the host (serial or
    /// rayon worker threads); never affects results or simulated time.
    #[serde(default)]
    pub engine: ComputeEngine,
    /// Direction-optimization policy. Defaults to pure top-down, which
    /// keeps the single-word termination allreduce and every existing
    /// run bit-identical.
    #[serde(default)]
    pub direction: DirectionPolicy,
}

impl BfsConfig {
    /// The paper's optimized BlueGene/L configuration: targeted expand,
    /// two-phase union-fold, sent-neighbors cache on.
    pub fn paper_optimized() -> Self {
        Self {
            expand: ExpandStrategy::Targeted,
            fold: FoldStrategy::TwoPhaseRing,
            sent_neighbors: true,
            target: None,
            max_levels: 0,
            engine: ComputeEngine::Auto,
            direction: DirectionPolicy::top_down(),
        }
    }

    /// The unoptimized baseline: direct all-to-all everywhere, no
    /// en-route union.
    pub fn baseline_alltoall() -> Self {
        Self {
            expand: ExpandStrategy::Targeted,
            fold: FoldStrategy::DirectAllToAll,
            sent_neighbors: true,
            target: None,
            max_levels: 0,
            engine: ComputeEngine::Auto,
            direction: DirectionPolicy::top_down(),
        }
    }

    /// The paper-optimized configuration plus adaptive direction
    /// switching. The sent-neighbors cache stays on: bottom-up relies
    /// on it to skip already-emitted rows, and it is what keeps the
    /// adaptive run's levels bit-equal to pure top-down.
    pub fn direction_optimized() -> Self {
        Self {
            direction: DirectionPolicy::adaptive(),
            ..Self::paper_optimized()
        }
    }

    /// Set a search target.
    pub fn with_target(mut self, target: Vertex) -> Self {
        self.target = Some(target);
        self
    }

    /// Set the host-side compute engine.
    pub fn with_engine(mut self, engine: ComputeEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Set the direction-optimization policy.
    pub fn with_direction(mut self, direction: DirectionPolicy) -> Self {
        self.direction = direction;
        self
    }
}

impl Default for BfsConfig {
    fn default() -> Self {
        Self::paper_optimized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_optimized() {
        let c = BfsConfig::default();
        assert_eq!(c.expand, ExpandStrategy::Targeted);
        assert_eq!(c.fold, FoldStrategy::TwoPhaseRing);
        assert!(c.sent_neighbors);
        assert!(c.target.is_none());
    }

    #[test]
    fn with_target_sets_target() {
        let c = BfsConfig::default().with_target(42);
        assert_eq!(c.target, Some(42));
    }

    #[test]
    fn default_direction_is_top_down() {
        // The serde default (what a pre-direction config deserializes
        // to) and the constructor default must both be pure top-down.
        assert_eq!(BfsConfig::default().direction, DirectionPolicy::top_down());
        assert_eq!(DirectionPolicy::default(), DirectionPolicy::top_down());
        assert_eq!(DirectionMode::default(), DirectionMode::TopDown);
        assert_eq!(
            BfsConfig::direction_optimized().direction,
            DirectionPolicy::adaptive()
        );
    }

    #[test]
    fn adaptive_decision_is_integer_and_thresholded() {
        let p = DirectionPolicy::adaptive();
        let (n, r) = (1000, 4);
        // Tiny frontier with little edge mass: stay top-down.
        assert!(!p.wants_bottom_up(2, 1, 100_000, n, r));
        // Heavy frontier: both conditions hold.
        assert!(p.wants_bottom_up(300, 5_000, 20_000, n, r));
        // Edge mass alone is not enough when the frontier is tiny
        // relative to n (β gate).
        assert!(!p.wants_bottom_up(10, 5_000, 20_000, n, r));
        // Empty frontier never goes bottom-up, in any mode.
        assert!(!DirectionPolicy::bottom_up().wants_bottom_up(0, 0, 0, n, r));
        assert!(DirectionPolicy::bottom_up().wants_bottom_up(1, 0, 0, n, r));
        assert!(!DirectionPolicy::top_down().wants_bottom_up(300, 5_000, 0, n, r));
    }
}
