//! Per-node memory feasibility analysis.
//!
//! The paper's central engineering constraint is the BlueGene/L node's
//! 512 MB: "it is often impossible to store such large graphs in the
//! main memory of a single computer", and every optimization in §2.4 and
//! §3.1 exists to keep per-processor memory `O(n/P)`. This module turns
//! the §2.4.1/§3.1 expectations into a concrete per-rank budget so a
//! configuration can be checked *before* anyone builds it:
//!
//! * edge entries: `n·k/P` vertex ids;
//! * non-empty partial edge lists (§2.4.1): `(n/C)·γ(n/R)` column ids +
//!   hash slots;
//! * unique row vertices (§2.4.1): `(n/R)·γ(n/C)` ids + hash slots +
//!   one sent-neighbors flag each (§2.4.3);
//! * owned-vertex state: `n/P` level words;
//! * message buffers: fixed chunks (§3.1) or the unbounded worst case.
//!
//! The tests verify the headline claim: the paper's 3.2-billion-vertex
//! graph on 32,768 nodes *fits* in 512 MB/node under this budget, and a
//! single node (P = 1) does not — which is why the distributed
//! algorithm exists.

use crate::theory::gamma;
use bgl_comm::{ChunkPolicy, ProcessorGrid, VERT_BYTES};
use bgl_graph::GraphSpec;
use bgl_torus::MachineConfig;
use serde::{Deserialize, Serialize};

/// Bytes per hash-map slot beyond the key itself (value + load-factor
/// slack for an open-addressing table at ~2/3 load).
const HASH_SLOT_OVERHEAD: f64 = 10.0;

/// Expected per-rank memory budget for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// Bytes for stored edge entries (CSR rows array).
    pub edge_bytes: f64,
    /// Bytes for the non-empty-column index (§2.4.2 mapping 2).
    pub col_index_bytes: f64,
    /// Bytes for the row-vertex index and sent flags (§2.4.2 mapping 3,
    /// §2.4.3).
    pub row_index_bytes: f64,
    /// Bytes for owned-vertex state (levels, frontier slack).
    pub owned_bytes: f64,
    /// Bytes for communication buffers.
    pub buffer_bytes: f64,
    /// Bytes for the dense-frontier bitmap accumulator the union-fold
    /// switches to at high frontier density (one bit per owned vertex).
    #[serde(default)]
    pub bitmap_bytes: f64,
    /// Per-node capacity of the machine.
    pub capacity_bytes: f64,
}

impl MemoryEstimate {
    /// Total expected bytes per rank.
    pub fn total(&self) -> f64 {
        self.edge_bytes
            + self.col_index_bytes
            + self.row_index_bytes
            + self.owned_bytes
            + self.buffer_bytes
            + self.bitmap_bytes
    }

    /// Whether the configuration fits the machine's per-node memory
    /// (with a 25% headroom for the OS kernel image and slack — the CNK
    /// is tiny, but allocator fragmentation is not).
    pub fn fits(&self) -> bool {
        self.total() <= 0.75 * self.capacity_bytes
    }

    /// Utilization fraction of per-node memory.
    pub fn utilization(&self) -> f64 {
        self.total() / self.capacity_bytes
    }
}

/// Estimate the expected per-rank memory for running the 2D BFS on
/// `spec` over `grid` on `machine`, with the given buffer policy.
pub fn estimate(
    spec: &GraphSpec,
    grid: ProcessorGrid,
    machine: &MachineConfig,
    chunk: ChunkPolicy,
) -> MemoryEstimate {
    let n = spec.n as f64;
    let k = spec.avg_degree;
    let p = grid.len() as f64;
    let r = grid.rows() as f64;
    let c = grid.cols() as f64;
    let w = VERT_BYTES as f64;

    // Stored entries per rank: nk/P, stored once plus CSR offsets.
    let entries = n * k / p;
    let edge_bytes = entries * w;

    // §2.4.1: expected non-empty columns = (n/C) · γ(n/R), capped by
    // both the block-column width and the entry count.
    let cols = (n / c * gamma(n, k, n / r)).min(entries).min(n / c);
    let col_index_bytes =
        cols * (w + std::mem::size_of::<usize>() as f64) + cols * (w + HASH_SLOT_OVERHEAD);

    // §2.4.1 (transposed): unique row vertices = (n/R) · γ(n/C); each
    // carries a hash slot and a sent-neighbors flag.
    let rows = (n / r * gamma(n, k, n / c)).min(entries).min(n / r);
    let row_index_bytes = rows * w + rows * (w + HASH_SLOT_OVERHEAD) + rows;

    // Owned state: one 4-byte level per owned vertex plus frontier slack.
    let owned = n / p;
    let owned_bytes = owned * 4.0 + owned * w * 0.25;

    // Buffers: fixed chunks need capacity × (in + out); unbounded needs
    // the §3.1 worst case n/P·k on each side.
    let buffer_bytes = match chunk {
        ChunkPolicy::Fixed { capacity } => 2.0 * capacity as f64 * w,
        ChunkPolicy::Unbounded => 2.0 * (n / p * k) * w,
    };

    // Dense-frontier bitmap accumulator: the union-fold densifies its
    // per-rank accumulator to a fixed-range bitmap over the owned block,
    // one bit per owned vertex (hysteresis in the policy bounds it to
    // this span).
    let bitmap_bytes = owned / 8.0;

    MemoryEstimate {
        edge_bytes,
        col_index_bytes,
        row_index_bytes,
        owned_bytes,
        buffer_bytes,
        bitmap_bytes,
        capacity_bytes: machine.memory_per_node as f64,
    }
}

/// The largest per-rank |V| (weak-scaling knob) that fits the machine at
/// the given degree and grid shape, by bisection. Returns 0 when even a
/// single vertex per rank does not fit.
pub fn max_per_rank_vertices(
    k: f64,
    grid: ProcessorGrid,
    machine: &MachineConfig,
    chunk: ChunkPolicy,
) -> u64 {
    let p = grid.len() as u64;
    let fits = |per_rank: u64| -> bool {
        if per_rank == 0 {
            return true;
        }
        let n = per_rank * p;
        if k >= n as f64 {
            return false;
        }
        let spec = GraphSpec::poisson(n, k, 0);
        estimate(&spec, grid, machine, chunk).fits()
    };
    let mut lo = 0u64;
    let mut hi = 1u64;
    while fits(hi) && hi < (1 << 40) {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_spec() -> GraphSpec {
        // 100000 vertices per processor on 32768 processors, k = 10:
        // the paper's largest graph (3.2768 G vertices, ~32.8 G entries).
        GraphSpec::poisson(100_000 * 32_768, 10.0, 0)
    }

    #[test]
    fn paper_headline_config_fits_bluegene() {
        let spec = paper_spec();
        let grid = ProcessorGrid::new(128, 256);
        let machine = MachineConfig::bluegene_l_half();
        let est = estimate(&spec, grid, &machine, ChunkPolicy::fixed(1 << 16));
        assert!(
            est.fits(),
            "paper's 3.2G-vertex graph must fit 512MB/node: {:.1} MB used",
            est.total() / 1e6
        );
        // And it is a substantial fraction — this was a big machine run.
        assert!(
            est.utilization() > 0.05,
            "utilization {:.3}",
            est.utilization()
        );
    }

    #[test]
    fn single_node_cannot_hold_the_paper_graph() {
        // The motivation sentence of the paper: the graph does not fit
        // one computer's memory.
        let spec = paper_spec();
        let grid = ProcessorGrid::new(1, 1);
        let machine = MachineConfig::bluegene_l_half();
        let est = estimate(&spec, grid, &machine, ChunkPolicy::fixed(1 << 16));
        assert!(!est.fits());
        assert!(est.utilization() > 100.0);
    }

    #[test]
    fn unbounded_buffers_blow_up_at_high_degree() {
        // §3.2: "all-to-all communication may not be used for very large
        // graphs with high average degree, due to the memory constraint"
        // — unbounded buffers scale with k, fixed buffers do not.
        let machine = MachineConfig::bluegene_l_half();
        let grid = ProcessorGrid::new(128, 256);
        let n = 100_000u64 * 32_768;
        let spec_k200 = GraphSpec::poisson(n / 20, 200.0, 0);
        let unbounded = estimate(&spec_k200, grid, &machine, ChunkPolicy::Unbounded);
        let fixed = estimate(&spec_k200, grid, &machine, ChunkPolicy::fixed(1 << 16));
        assert!(unbounded.buffer_bytes > 10.0 * fixed.buffer_bytes);
    }

    #[test]
    fn estimate_is_monotone_in_n() {
        let machine = MachineConfig::bluegene_l_half();
        let grid = ProcessorGrid::new(16, 16);
        let small = estimate(
            &GraphSpec::poisson(1 << 20, 10.0, 0),
            grid,
            &machine,
            ChunkPolicy::Unbounded,
        );
        let large = estimate(
            &GraphSpec::poisson(1 << 24, 10.0, 0),
            grid,
            &machine,
            ChunkPolicy::Unbounded,
        );
        assert!(large.total() > small.total());
    }

    #[test]
    fn max_per_rank_is_consistent_with_estimate() {
        let machine = MachineConfig::bluegene_l_half();
        let grid = ProcessorGrid::new(32, 32);
        let chunk = ChunkPolicy::fixed(1 << 14);
        let cap = max_per_rank_vertices(10.0, grid, &machine, chunk);
        assert!(cap > 0);
        let at_cap = GraphSpec::poisson(cap * 1024, 10.0, 0);
        assert!(estimate(&at_cap, grid, &machine, chunk).fits());
        let over = GraphSpec::poisson((cap + cap / 4) * 1024, 10.0, 0);
        assert!(!estimate(&over, grid, &machine, chunk).fits());
    }

    #[test]
    fn estimate_roughly_matches_built_graph() {
        // The analytic budget should predict the real builder's storage
        // within a small factor on a mid-size graph.
        use bgl_graph::DistGraph;
        let spec = GraphSpec::poisson(50_000, 10.0, 7);
        let grid = ProcessorGrid::new(4, 8);
        let machine = MachineConfig::bluegene_l_half();
        let est = estimate(&spec, grid, &machine, ChunkPolicy::Unbounded);
        let built = DistGraph::build(spec, grid);
        let measured = built.max_rank_bytes() as f64;
        let predicted = est.edge_bytes + est.col_index_bytes + est.row_index_bytes;
        let ratio = measured / predicted;
        assert!(
            (0.2..5.0).contains(&ratio),
            "measured {measured} vs predicted {predicted} (ratio {ratio})"
        );
    }
}
