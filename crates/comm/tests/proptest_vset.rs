//! Property-based equivalence of the two [`VertSet`] representations:
//! whatever mix of sorted-list and bitmap operands the density policy
//! produces, every operation must agree element-for-element (and
//! duplicate-count-for-duplicate-count) with the plain sorted-list
//! reference in `setops`.

use bgl_comm::{setops, Vert, VertSet, VsetPolicy};
use proptest::prelude::*;

/// A random normalized (sorted, deduplicated) vertex set. Small value
/// range forces overlaps; the occasional large offset exercises wide
/// bitmap spans.
fn sorted_set() -> impl Strategy<Value = Vec<Vert>> {
    (prop::collection::vec(0u64..400, 0..160), any::<bool>()).prop_map(|(mut v, offset)| {
        if offset {
            for x in v.iter_mut() {
                *x += 10_000;
            }
        }
        setops::normalize(&mut v);
        v
    })
}

/// Every (representation × policy) starting point for a value set.
fn variants(v: &[Vert]) -> Vec<VertSet> {
    let mut list = VertSet::from_sorted(v.to_vec());
    let densified = {
        let mut s = VertSet::from_sorted(v.to_vec());
        s.maybe_densify(&VsetPolicy::hybrid());
        s
    };
    list.maybe_densify(&VsetPolicy::list_only());
    vec![list, densified]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_in_matches_list_reference(a in sorted_set(), b in sorted_set()) {
        let (expect, expect_dups) = setops::union(&a, &b);
        for policy in [VsetPolicy::list_only(), VsetPolicy::hybrid()] {
            for mut acc in variants(&a) {
                let dups = acc.union_in(&b, &policy);
                prop_assert_eq!(dups, expect_dups);
                prop_assert_eq!(acc.len(), expect.len());
                prop_assert_eq!(acc.into_vec(), expect.clone());
            }
        }
    }

    #[test]
    fn union_set_matches_list_reference(a in sorted_set(), b in sorted_set()) {
        let (expect, expect_dups) = setops::union(&a, &b);
        let policy = VsetPolicy::hybrid();
        for mut acc in variants(&a) {
            for other in variants(&b) {
                let dups = acc.union_set(&other, &policy);
                prop_assert_eq!(dups, expect_dups);
                prop_assert_eq!(acc.to_vec(), expect.clone());
                // Re-union is fully absorbed: every element is a dup.
                let again = acc.union_set(&other, &policy);
                prop_assert_eq!(again, b.len());
                prop_assert_eq!(acc.to_vec(), expect.clone());
                acc = VertSet::from_sorted(a.clone());
            }
        }
    }

    #[test]
    fn intersect_matches_list_reference(a in sorted_set(), b in sorted_set()) {
        let expect: Vec<Vert> = a.iter().copied().filter(|v| b.binary_search(v).is_ok()).collect();
        for sa in variants(&a) {
            for sb in variants(&b) {
                prop_assert_eq!(sa.intersect_to_vec(&sb), expect.clone());
            }
        }
    }

    #[test]
    fn membership_iteration_and_equality_agree(a in sorted_set()) {
        let reps = variants(&a);
        for s in &reps {
            prop_assert_eq!(s.len(), a.len());
            prop_assert_eq!(s.iter().collect::<Vec<_>>(), a.clone());
            prop_assert_eq!(s.to_vec(), a.clone());
            for &v in &a {
                prop_assert!(s.contains(v));
            }
            prop_assert!(!s.contains(50_000));
        }
        // Semantic equality crosses representations.
        prop_assert_eq!(&reps[0], &reps[1]);
    }

    #[test]
    fn densify_roundtrip_preserves_value(a in sorted_set()) {
        let mut s = VertSet::from_sorted(a.clone());
        s.maybe_densify(&VsetPolicy::hybrid());
        let back = s.into_vec();
        prop_assert_eq!(back, a);
    }
}
