//! Property-based equivalence of every collective against its direct
//! reference semantics, over random group partitions and payloads.

use bgl_comm::collectives::{
    allgather::allgather_ring,
    alltoall::alltoallv,
    reduce_scatter::reduce_scatter_union_ring,
    two_phase::{two_phase_expand, two_phase_fold},
    Groups,
};
use bgl_comm::{setops, OpClass, ProcessorGrid, SimWorld, Vert, VertSet};
use proptest::prelude::*;

/// A random partition of `0..p` into contiguous groups.
fn groups_strategy(p: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(1usize..=p, 1..=p).prop_map(move |cuts| {
        let mut groups = Vec::new();
        let mut start = 0usize;
        for c in cuts {
            if start >= p {
                break;
            }
            let end = (start + c).min(p);
            groups.push((start..end).collect::<Vec<_>>());
            start = end;
        }
        if start < p {
            groups.push((start..p).collect());
        }
        groups
    })
}

/// Random normalized vertex sets, one per (member, destination) pair.
fn blocks_for(groups: &[Vec<usize>], p: usize, seed: u64) -> Vec<Vec<Vec<Vert>>> {
    let member_group: Vec<usize> = {
        let mut mg = vec![0; p];
        for (gi, g) in groups.iter().enumerate() {
            for &r in g {
                mg[r] = gi;
            }
        }
        mg
    };
    (0..p)
        .map(|rank| {
            let g = &groups[member_group[rank]];
            (0..g.len())
                .map(|d| {
                    let mut v: Vec<Vert> = (0..(seed % 7 + 1))
                        .map(|i| (rank as u64 * 13 + d as u64 * 5 + i * 3 + seed) % 50)
                        .collect();
                    setops::normalize(&mut v);
                    v
                })
                .collect()
        })
        .collect()
}

fn fold_reference(groups: &Groups, blocks: &[Vec<Vec<Vert>>]) -> Vec<Vec<Vert>> {
    (0..blocks.len())
        .map(|rank| {
            let (gi, pos) = groups.locate(rank);
            let g = &groups.groups()[gi];
            let sets: Vec<Vec<Vert>> = g.iter().map(|&m| blocks[m][pos].clone()).collect();
            setops::union_many(&sets).0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_fold_strategies_match_reference(
        p in 1usize..14,
        raw_groups in (1usize..14).prop_flat_map(groups_strategy),
        seed in any::<u64>(),
    ) {
        // Regenerate groups for this p (raw_groups was drawn for its own
        // p; rebuild deterministically from it).
        let _ = raw_groups;
        let groups_vec = {
            let mut v = Vec::new();
            let mut start = 0usize;
            let mut size = (seed % 4 + 1) as usize;
            while start < p {
                let end = (start + size).min(p);
                v.push((start..end).collect::<Vec<_>>());
                start = end;
                size = size % 5 + 1;
            }
            v
        };
        let groups = Groups::new(p, groups_vec);
        let blocks = blocks_for(groups.groups(), p, seed);
        let expect = fold_reference(&groups, &blocks);

        let grid = ProcessorGrid::one_d(p);
        let mut w1 = SimWorld::bluegene(grid);
        let ring =
            reduce_scatter_union_ring(&mut w1, OpClass::Fold, &groups, blocks.clone()).unwrap();
        let ring: Vec<Vec<Vert>> = ring.into_iter().map(VertSet::into_vec).collect();
        prop_assert_eq!(&ring, &expect);

        let mut w2 = SimWorld::bluegene(grid);
        let two = two_phase_fold(&mut w2, OpClass::Fold, &groups, blocks).unwrap();
        let two: Vec<Vec<Vert>> = two.into_iter().map(VertSet::into_vec).collect();
        prop_assert_eq!(&two, &expect);
    }

    #[test]
    fn expand_strategies_deliver_everything(
        p in 1usize..14,
        seed in any::<u64>(),
    ) {
        let groups_vec = {
            let mut v = Vec::new();
            let mut start = 0usize;
            let mut size = (seed % 3 + 1) as usize;
            while start < p {
                let end = (start + size).min(p);
                v.push((start..end).collect::<Vec<_>>());
                start = end;
                size = size % 4 + 2;
            }
            v
        };
        let groups = Groups::new(p, groups_vec);
        let contribution: Vec<Vec<Vert>> = (0..p)
            .map(|r| (0..(r as u64 % 4)).map(|i| r as u64 * 10 + i).collect())
            .collect();

        let grid = ProcessorGrid::one_d(p);
        let mut w1 = SimWorld::bluegene(grid);
        let ring = allgather_ring(&mut w1, OpClass::Expand, &groups, contribution.clone()).unwrap();
        let mut w2 = SimWorld::bluegene(grid);
        let two =
            two_phase_expand(&mut w2, OpClass::Expand, &groups, contribution.clone()).unwrap();

        for rank in 0..p {
            let group = groups.group_of(rank);
            // Both must hold exactly one entry per group member, equal to
            // that member's contribution.
            prop_assert_eq!(ring[rank].len(), group.len());
            prop_assert_eq!(two[rank].len(), group.len());
            for &(src, ref payload) in &ring[rank] {
                prop_assert_eq!(payload, &contribution[src]);
            }
            for &(src, ref payload) in &two[rank] {
                prop_assert_eq!(payload, &contribution[src]);
            }
        }
    }

    #[test]
    fn alltoallv_routes_exactly(
        p in 2usize..12,
        seed in any::<u64>(),
    ) {
        let groups = Groups::world(p);
        let grid = ProcessorGrid::one_d(p);
        let mut w = SimWorld::bluegene(grid);
        // Every rank sends a tagged payload to (rank + offset) % p.
        let offset = (seed as usize % (p - 1)) + 1;
        let sends: Vec<Vec<(usize, Vec<Vert>)>> = (0..p)
            .map(|r| vec![((r + offset) % p, vec![r as Vert + 1000])])
            .collect();
        let inboxes = alltoallv(&mut w, OpClass::Fold, &groups, sends).unwrap();
        for (rank, inbox) in inboxes.iter().enumerate() {
            let src = (rank + p - offset) % p;
            prop_assert_eq!(inbox.clone(), vec![(src, vec![src as Vert + 1000])]);
        }
    }

    #[test]
    fn setops_union_is_correct_set_union(
        mut a in prop::collection::vec(0u64..100, 0..30),
        mut b in prop::collection::vec(0u64..100, 0..30),
    ) {
        setops::normalize(&mut a);
        setops::normalize(&mut b);
        let (u, dups) = setops::union(&a, &b);
        let mut expect: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let total = expect.len();
        setops::normalize(&mut expect);
        prop_assert_eq!(&u, &expect);
        prop_assert_eq!(dups, total - expect.len());
        prop_assert!(setops::is_normalized(&u));
    }
}
