//! Lane-masked vertex sets for multi-source (batched) BFS.
//!
//! A *lane* is one of up to 64 concurrently advancing BFS sources. A
//! [`LaneSet`] associates each vertex with the bitmask of lanes it
//! belongs to, so one superstep wave of communication advances every
//! lane at once: where a single-source exchange ships a sorted vertex
//! list, a batched exchange ships the same sorted list plus one mask
//! word per vertex. Sources whose frontiers overlap (the common case on
//! low-diameter scale-free graphs, where every search floods the same
//! high-degree core after a hop or two) share both the vertex payload
//! and the per-edge hash work — this is where batching beats running
//! the sources back to back.
//!
//! On the wire a lane set travels as **two payloads in one exchange
//! round** (see [`crate::collectives::lane`]): the vertex list is
//! sorted, so it rides the delta/bitmap frames of the adaptive codec;
//! the mask words are arbitrary `u64`s, which the codec's sortedness
//! scan routes to raw frames — never mis-coded, still exactly charged.

use crate::Vert;

/// Bitmask of lanes (bit `l` set ⇒ the vertex is in lane `l`).
pub type LaneMask = u64;

/// Maximum number of concurrent lanes (one bit each in a [`LaneMask`]).
pub const MAX_LANES: usize = 64;

/// A sorted set of vertices, each carrying the mask of lanes it belongs
/// to. Invariants: `verts` strictly ascending, `masks.len() ==
/// verts.len()`, no zero mask stored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaneSet {
    verts: Vec<Vert>,
    masks: Vec<LaneMask>,
}

impl LaneSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary `(vertex, mask)` pairs: sorts by vertex and
    /// OR-merges duplicate vertices (zero-mask pairs are dropped).
    pub fn from_pairs(mut pairs: Vec<(Vert, LaneMask)>) -> Self {
        pairs.retain(|&(_, m)| m != 0);
        pairs.sort_unstable_by_key(|&(v, _)| v);
        let mut set = LaneSet {
            verts: Vec::with_capacity(pairs.len()),
            masks: Vec::with_capacity(pairs.len()),
        };
        for (v, m) in pairs {
            if set.verts.last() == Some(&v) {
                // bgl-lint: allow(r1, reason = "verts and masks grow in lockstep, so a matched verts.last() implies masks is non-empty")
                *set.masks.last_mut().unwrap() |= m;
            } else {
                set.verts.push(v);
                set.masks.push(m);
            }
        }
        set
    }

    /// Number of vertices in the set.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Total `(vertex, lane)` memberships — the sum of mask popcounts.
    pub fn lane_pairs(&self) -> u64 {
        self.masks.iter().map(|m| m.count_ones() as u64).sum()
    }

    /// The sorted vertex list.
    pub fn verts(&self) -> &[Vert] {
        &self.verts
    }

    /// The mask words, parallel to [`LaneSet::verts`].
    pub fn masks(&self) -> &[LaneMask] {
        &self.masks
    }

    /// Iterate `(vertex, mask)` pairs in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (Vert, LaneMask)> + '_ {
        self.verts.iter().copied().zip(self.masks.iter().copied())
    }

    /// Append a pair; `v` must be greater than the last stored vertex
    /// (callers iterate ascending sources). Zero masks are dropped.
    pub fn push(&mut self, v: Vert, mask: LaneMask) {
        if mask == 0 {
            return;
        }
        debug_assert!(self.verts.last().is_none_or(|&last| last < v));
        self.verts.push(v);
        self.masks.push(mask);
    }

    /// OR `other` into `self` (sorted two-pointer merge). Returns the
    /// number of vertices present in both sets (duplicates a per-lane
    /// exchange would have shipped twice).
    pub fn union_in(&mut self, other: &LaneSet) -> usize {
        if other.is_empty() {
            return 0;
        }
        if self.is_empty() {
            self.verts = other.verts.clone();
            self.masks = other.masks.clone();
            return 0;
        }
        let mut verts = Vec::with_capacity(self.verts.len() + other.verts.len());
        let mut masks = Vec::with_capacity(verts.capacity());
        let (mut i, mut j, mut dups) = (0usize, 0usize, 0usize);
        while i < self.verts.len() && j < other.verts.len() {
            match self.verts[i].cmp(&other.verts[j]) {
                std::cmp::Ordering::Less => {
                    verts.push(self.verts[i]);
                    masks.push(self.masks[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    verts.push(other.verts[j]);
                    masks.push(other.masks[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    verts.push(self.verts[i]);
                    masks.push(self.masks[i] | other.masks[j]);
                    dups += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        verts.extend_from_slice(&self.verts[i..]);
        masks.extend_from_slice(&self.masks[i..]);
        verts.extend_from_slice(&other.verts[j..]);
        masks.extend_from_slice(&other.masks[j..]);
        self.verts = verts;
        self.masks = masks;
        dups
    }

    /// Split into the two wire payloads: the sorted vertex list and the
    /// mask words (masks reinterpreted as [`Vert`] — same 64-bit width).
    pub fn into_payloads(self) -> (Vec<Vert>, Vec<Vert>) {
        (self.verts, self.masks)
    }

    /// Reassemble from the two wire payloads. Panics if the payloads
    /// disagree in length or the vertex list is not strictly ascending —
    /// either means a framing bug, not a data condition.
    pub fn from_payloads(verts: Vec<Vert>, masks: Vec<Vert>) -> Self {
        assert_eq!(
            verts.len(),
            masks.len(),
            "lane payload framing: vertex and mask payloads differ in length"
        );
        assert!(
            verts.windows(2).all(|w| w[0] < w[1]),
            "lane payload framing: vertex payload is not strictly ascending"
        );
        debug_assert!(masks.iter().all(|&m| m != 0));
        LaneSet { verts, masks }
    }
}

impl<'a> IntoIterator for &'a LaneSet {
    type Item = (Vert, LaneMask);
    type IntoIter = std::iter::Zip<
        std::iter::Copied<std::slice::Iter<'a, Vert>>,
        std::iter::Copied<std::slice::Iter<'a, LaneMask>>,
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.verts.iter().copied().zip(self.masks.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let s = LaneSet::from_pairs(vec![(5, 0b10), (1, 0b01), (5, 0b01), (3, 0b100), (7, 0)]);
        assert_eq!(s.verts(), &[1, 3, 5]);
        assert_eq!(s.masks(), &[0b01, 0b100, 0b11]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.lane_pairs(), 4);
    }

    #[test]
    fn union_counts_dups_and_ors_masks() {
        let mut a = LaneSet::from_pairs(vec![(1, 1), (4, 2), (9, 4)]);
        let b = LaneSet::from_pairs(vec![(2, 8), (4, 1), (9, 4)]);
        let dups = a.union_in(&b);
        assert_eq!(dups, 2);
        assert_eq!(a.verts(), &[1, 2, 4, 9]);
        assert_eq!(a.masks(), &[1, 8, 3, 4]);
    }

    #[test]
    fn union_into_empty_and_with_empty() {
        let mut a = LaneSet::new();
        let b = LaneSet::from_pairs(vec![(3, 2)]);
        assert_eq!(a.union_in(&b), 0);
        assert_eq!(a.verts(), &[3]);
        assert_eq!(a.union_in(&LaneSet::new()), 0);
        assert_eq!(a.verts(), &[3]);
    }

    #[test]
    fn payload_roundtrip() {
        let s = LaneSet::from_pairs(vec![(10, 3), (20, 0x8000_0000_0000_0001), (30, 7)]);
        let (verts, masks) = s.clone().into_payloads();
        assert_eq!(LaneSet::from_payloads(verts, masks), s);
    }

    #[test]
    #[should_panic(expected = "differ in length")]
    fn mismatched_payloads_rejected() {
        let _ = LaneSet::from_payloads(vec![1, 2], vec![1]);
    }

    #[test]
    #[should_panic(expected = "not strictly ascending")]
    fn unsorted_vertex_payload_rejected() {
        let _ = LaneSet::from_payloads(vec![2, 1], vec![1, 1]);
    }
}
