//! The superstep simulator.
//!
//! Level-synchronous BFS only lets ranks interact at collective
//! boundaries, so a faithful execution needs no real concurrency: run
//! every rank's compute phase, exchange messages, repeat. [`SimWorld`]
//! does exactly that while keeping three clocks — total simulated time,
//! its communication component, and its computation component — derived
//! from the [`bgl_torus::CostModel`] (α–β–hop transfers, hash-probe
//! compute, memcpy for union buffer copying).
//!
//! Time composition rule: each global phase (a compute pass or one
//! message round) is synchronous across ranks, so its elapsed time is the
//! **maximum** over ranks of that rank's phase time. This is the standard
//! BSP accounting and matches how the paper's level-synchronized
//! algorithm actually behaves on a machine with barrier-style collectives.
//!
//! Message rounds also feed [`CommStats`] (volumes, per-rank receptions,
//! duplicate eliminations, peak buffer size) and, optionally, a per-link
//! [`LinkTraffic`] accumulator for congestion analysis.

use crate::buffer::ChunkPolicy;
use crate::buffer::ScratchPool;
use crate::error::CommError;
use crate::stats::{CommStats, OpClass};
use crate::topology::ProcessorGrid;
use crate::vset::VsetPolicy;
use crate::wire::{self, WirePolicy};
use crate::Vert;
use bgl_torus::{
    detour_hops, route_with_faults, CostModel, FaultPlan, LinkTraffic, MachineConfig, MachineKind,
    RouteStep, TaskMapping, TaskMappingKind,
};
use bgl_trace::{ComputeKind, EventKind, OpKind, Phase, TraceBuffer, TraceDetail, TraceSink};
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// One point-to-point message in a round: `(from, to, payload)`.
pub type Send = (usize, usize, Vec<Vert>);

/// A rank's inbox after a round: `(from, payload)` pairs, sorted by
/// sender for determinism.
pub type Inbox = Vec<(usize, Vec<Vert>)>;

/// Cached fault-aware route information for one rank pair.
#[derive(Debug, Clone)]
struct FaultRoute {
    hops: usize,
    bw: f64,
    detour: usize,
    route: Vec<RouteStep>,
}

/// Fault counters one send contributes (applied during the merge).
#[derive(Debug, Clone, Copy, Default)]
struct FaultDelta {
    dropped: u64,
    truncated: u64,
    duplicated: bool,
    detour: u64,
}

/// Precomputed outcome of one send: everything
/// [`SimWorld::exchange`]'s serial merge needs, derived purely from the
/// immutable world state so the precompute can fan out over host
/// threads without changing any result.
enum SendMeta {
    /// `from == to`: delivered locally, free, uncounted.
    SelfSend,
    /// A rank index outside the grid.
    OutOfRange,
    /// No fault-avoiding route exists between the pair.
    NoRoute,
    /// The fault schedule exhausted the retry budget.
    Unreachable { attempts: u32, detour: u64 },
    /// A normal wire transfer.
    Wire(WireSendMeta),
}

/// Per-send precompute results for a delivered message.
struct WireSendMeta {
    verts: usize,
    logical: u64,
    wire_bytes: u64,
    chunks: u64,
    hops: usize,
    t: f64,
    retries: u32,
    fault: FaultDelta,
}

/// Deterministic superstep simulation world for an `R × C` grid of ranks
/// placed on a modelled machine.
///
/// ```
/// use bgl_comm::{OpClass, ProcessorGrid, SimWorld};
/// let mut world = SimWorld::bluegene(ProcessorGrid::new(2, 2));
/// // rank 0 sends three vertices to rank 3:
/// let inboxes = world.exchange(OpClass::Fold, vec![(0, 3, vec![7, 8, 9])]).unwrap();
/// assert_eq!(inboxes[3], vec![(0, vec![7, 8, 9])]);
/// assert!(world.time() > 0.0); // α–β–hop cost was charged
/// ```
#[derive(Debug, Clone)]
pub struct SimWorld {
    grid: ProcessorGrid,
    mapping: TaskMapping,
    cost: CostModel,
    chunk: ChunkPolicy,
    /// Cumulative communication statistics (public for snapshotting).
    pub stats: CommStats,
    traffic: Option<LinkTraffic>,
    congestion: bool,
    sim_time: f64,
    comm_time: f64,
    comm_time_by_class: [f64; 3],
    compute_time: f64,
    hash_time: f64,
    memcpy_time: f64,
    codec_time: f64,
    /// The fault plan in effect (`FaultPlan::none()` by default, in which
    /// case every fault path below is skipped entirely).
    plan: FaultPlan,
    /// Ranks currently dead (scheduled deaths that have fired and not
    /// been revived by recovery).
    dead: Vec<bool>,
    /// Data-exchange round counter driving the fault schedule. Control
    /// traffic (BlueGene/L's separate reliable tree network) neither
    /// advances it nor suffers faults by default, so both runtimes
    /// number the expand/fold rounds identically.
    data_round: u64,
    /// Opt in to faulting [`OpClass::Control`] traffic (the recovery
    /// channel). Off by default: the seed behavior treated control as a
    /// separate reliable network. Resilient BFS turns this on so
    /// checkpoint mirroring and recovery exchanges face the same lossy
    /// fabric as data — with bounded retry at the protocol layer.
    control_faultable: bool,
    /// Separate round counter for faultable control exchanges. Control
    /// faults are hashed off this counter, never `data_round`, so
    /// enabling control faults cannot perturb the expand/fold fault
    /// schedule.
    control_round: u64,
    /// Fault-aware routes per rank pair (static for a fixed plan).
    /// FxHashMap: route lookups sit on every faulty-world send, and the
    /// keys are small integer pairs — SipHash is pure overhead here.
    route_cache: FxHashMap<(usize, usize), FaultRoute>,
    /// When hybrid vertex sets switch representation (see
    /// [`crate::vset`]).
    vset_policy: VsetPolicy,
    /// Wire codec applied to exchange payloads (see [`crate::wire`];
    /// [`WirePolicy::raw`] = codec off, the pre-codec behavior).
    wire_policy: WirePolicy,
    /// Run the per-send precompute of [`SimWorld::exchange`] on rayon
    /// worker threads (host-side only; never affects results or the
    /// simulated clock — the merge stays serial and ordered).
    parallel_sends: bool,
    /// Reusable merge/inbox scratch buffers for the collectives.
    scratch: ScratchPool,
    /// Structured event recorder (disabled by default: a single `None`
    /// word, no buffers — see [`SimWorld::enable_trace`]).
    trace: TraceSink,
}

impl SimWorld {
    /// Create a world for `grid` on `machine` with an explicit task
    /// mapping kind and chunking policy. Panics if the machine has fewer
    /// nodes than the grid has ranks.
    pub fn new(
        grid: ProcessorGrid,
        machine: MachineConfig,
        mapping_kind: TaskMappingKind,
        chunk: ChunkPolicy,
    ) -> Self {
        let mapping = TaskMapping::new(mapping_kind, grid.logical_array(), machine.dims);
        Self {
            grid,
            mapping,
            cost: CostModel::new(machine),
            chunk,
            stats: CommStats::new(grid.len()),
            traffic: None,
            congestion: false,
            sim_time: 0.0,
            comm_time: 0.0,
            comm_time_by_class: [0.0; 3],
            compute_time: 0.0,
            hash_time: 0.0,
            memcpy_time: 0.0,
            codec_time: 0.0,
            plan: FaultPlan::none(),
            dead: vec![false; grid.len()],
            data_round: 0,
            control_faultable: false,
            control_round: 0,
            // Pre-size from the grid: routes are per ordered rank pair,
            // but ring/tree traffic only ever touches O(1) neighbors per
            // rank, so a small multiple of p covers steady state.
            route_cache: FxHashMap::with_capacity_and_hasher(4 * grid.len(), Default::default()),
            vset_policy: VsetPolicy::default(),
            wire_policy: WirePolicy::default(),
            parallel_sends: false,
            scratch: ScratchPool::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Like [`SimWorld::new`] but returns a typed error instead of
    /// panicking when the machine is too small for the grid.
    pub fn try_new(
        grid: ProcessorGrid,
        machine: MachineConfig,
        mapping_kind: TaskMappingKind,
        chunk: ChunkPolicy,
    ) -> Result<Self, CommError> {
        let ranks = grid.len();
        let nodes = machine.dims.node_count();
        if ranks > nodes {
            return Err(CommError::MachineTooSmall { ranks, nodes });
        }
        Ok(Self::new(grid, machine, mapping_kind, chunk))
    }

    /// Convenience constructor: a BlueGene/L partition just large enough
    /// for the grid, with the paper's folded-planes task mapping and
    /// unbounded buffers.
    pub fn bluegene(grid: ProcessorGrid) -> Self {
        let dims = MachineConfig::fit_partition(grid.len());
        Self::new(
            grid,
            MachineConfig::bluegene_l_partition(dims),
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::Unbounded,
        )
    }

    /// Builder-style: attach a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Install a fault plan. Resets the fault schedule clock and the
    /// route cache (routes depend on the plan's dead links/nodes), but
    /// not the time/statistics clocks.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.dead = vec![false; self.grid.len()];
        self.data_round = 0;
        self.control_round = 0;
        self.route_cache.clear();
    }

    /// Opt [`OpClass::Control`] traffic in to (or out of) the fault
    /// plan. See the `control_faultable` field: off by default, turned
    /// on by resilient BFS so recovery traffic shares the lossy fabric.
    pub fn set_control_faultable(&mut self, on: bool) {
        self.control_faultable = on;
    }

    /// Builder-style [`SimWorld::set_control_faultable`].
    pub fn with_faulty_control(mut self) -> Self {
        self.control_faultable = true;
        self
    }

    /// Whether control traffic is subject to the fault plan.
    pub fn control_faultable(&self) -> bool {
        self.control_faultable
    }

    /// Faultable control-exchange rounds performed so far.
    pub fn control_round(&self) -> u64 {
        self.control_round
    }

    /// Charge the modelled ack-timeout backoff for one failed recovery
    /// exchange attempt: `software_overhead * 2^min(retry, 6)`, the same
    /// bounded exponential the per-message retransmission model uses,
    /// billed to control-class communication time.
    pub fn charge_recovery_backoff(&mut self, retry: u32) {
        let elapsed = self.cost.machine().software_overhead * (1u64 << retry.min(6)) as f64;
        self.sim_time += elapsed;
        self.comm_time += elapsed;
        self.comm_time_by_class[OpClass::Control.index()] += elapsed;
    }

    /// The fault plan in effect.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Ranks currently dead (scheduled deaths that have fired).
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&r| self.dead[r]).collect()
    }

    /// Data-exchange rounds performed so far (the fault schedule clock).
    pub fn data_round(&self) -> u64 {
        self.data_round
    }

    /// Bring a dead rank back (models activating a spare node during
    /// checkpoint recovery). A revived rank will not re-die: scheduled
    /// deaths fire on an exact round match, and the round has advanced.
    pub fn revive(&mut self, rank: usize) {
        self.dead[rank] = false;
    }

    /// Record one completed checkpoint recovery in the fault counters.
    pub fn note_recovery(&mut self) {
        self.stats.faults.recoveries += 1;
    }

    /// Enable per-link traffic accounting (off by default — it costs a
    /// hash map update per route hop per message).
    pub fn enable_traffic_accounting(&mut self) {
        if self.traffic.is_none() {
            self.traffic = Some(LinkTraffic::new());
        }
    }

    /// The per-link traffic accumulator, if enabled.
    pub fn traffic(&self) -> Option<&LinkTraffic> {
        self.traffic.as_ref()
    }

    /// Enable the congestion-aware round cost: each message round is
    /// additionally lower-bounded by the busiest physical link's drain
    /// time along dimension-ordered routes. Off by default (the pure
    /// α–β–hop model); turning it on models a contended torus.
    pub fn enable_congestion_model(&mut self) {
        self.congestion = true;
    }

    /// Whether the congestion-aware cost is active.
    pub fn congestion_model(&self) -> bool {
        self.congestion
    }

    /// The processor grid.
    pub fn grid(&self) -> ProcessorGrid {
        self.grid
    }

    /// Number of ranks.
    pub fn p(&self) -> usize {
        self.grid.len()
    }

    /// The task mapping in effect.
    pub fn mapping(&self) -> &TaskMapping {
        &self.mapping
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The chunking policy in effect.
    pub fn chunk_policy(&self) -> ChunkPolicy {
        self.chunk
    }

    /// Total simulated elapsed time in seconds.
    pub fn time(&self) -> f64 {
        self.sim_time
    }

    /// Communication component of [`SimWorld::time`].
    pub fn comm_time(&self) -> f64 {
        self.comm_time
    }

    /// Computation component of [`SimWorld::time`].
    pub fn compute_time(&self) -> f64 {
        self.compute_time
    }

    /// Communication time attributed to one operation class (expand,
    /// fold, or control). Sums to [`SimWorld::comm_time`].
    pub fn comm_time_for(&self, class: OpClass) -> f64 {
        self.comm_time_by_class[class.index()]
    }

    /// Compute time spent in modelled hash probes.
    pub fn hash_time(&self) -> f64 {
        self.hash_time
    }

    /// Compute time spent in modelled buffer copies (union merges).
    pub fn memcpy_time(&self) -> f64 {
        self.memcpy_time
    }

    /// Compute time spent in modelled wire-codec encode/decode passes
    /// (zero with the codec off).
    pub fn codec_time(&self) -> f64 {
        self.codec_time
    }

    /// Enable structured tracing at `detail`: per-rank ring recorders
    /// plus a world track, keyed to the simulated clock. Replaces any
    /// previously recorded trace.
    pub fn enable_trace(&mut self, detail: TraceDetail) {
        self.trace = TraceSink::enabled(self.p(), detail);
    }

    /// The trace sink (disabled unless [`SimWorld::enable_trace`] ran).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable trace sink access (the BFS loops emit phase spans).
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// Take the recorded trace buffer out, leaving tracing disabled.
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take_buffer()
    }

    /// Record a phase span from `t0` (an earlier [`SimWorld::time`]
    /// reading) to the current simulated time. No-op when disabled.
    pub fn trace_span(&mut self, phase: Phase, level: u32, t0: f64) {
        let t1 = self.sim_time;
        self.trace.span(phase, level, t0, t1);
    }

    /// Reset clocks and statistics (keeps topology and model; an
    /// enabled trace sink stays enabled but drops its recorded events).
    pub fn reset(&mut self) {
        self.stats = CommStats::new(self.grid.len());
        if let Some(t) = &mut self.traffic {
            t.clear();
        }
        self.trace.clear_events();
        self.sim_time = 0.0;
        self.comm_time = 0.0;
        self.comm_time_by_class = [0.0; 3];
        self.compute_time = 0.0;
        self.hash_time = 0.0;
        self.memcpy_time = 0.0;
        self.codec_time = 0.0;
        self.dead = vec![false; self.grid.len()];
        self.data_round = 0;
        self.control_round = 0;
        self.scratch.reset();
    }

    /// The hybrid vertex-set representation policy collectives consult.
    pub fn vset_policy(&self) -> VsetPolicy {
        self.vset_policy
    }

    /// Override the hybrid vertex-set policy (e.g.
    /// [`VsetPolicy::list_only`] for A/B determinism checks).
    pub fn set_vset_policy(&mut self, policy: VsetPolicy) {
        self.vset_policy = policy;
    }

    /// Builder-style [`SimWorld::set_vset_policy`].
    pub fn with_vset_policy(mut self, policy: VsetPolicy) -> Self {
        self.vset_policy = policy;
        self
    }

    /// The wire-codec policy exchanges apply to payloads.
    pub fn wire_policy(&self) -> WirePolicy {
        self.wire_policy
    }

    /// Set the wire-codec policy ([`WirePolicy::raw`] disables the
    /// codec entirely; [`WirePolicy::auto`] picks per-message formats
    /// by density).
    pub fn set_wire_policy(&mut self, policy: WirePolicy) {
        self.wire_policy = policy;
    }

    /// Builder-style [`SimWorld::set_wire_policy`].
    pub fn with_wire_policy(mut self, policy: WirePolicy) -> Self {
        self.wire_policy = policy;
        self
    }

    /// Toggle host-parallel per-send precompute in
    /// [`SimWorld::exchange`]. Purely a wall-clock knob: results,
    /// statistics, traces and the simulated clock are bit-identical
    /// either way (the merge is serial and ordered).
    pub fn set_parallel_exchange(&mut self, on: bool) {
        self.parallel_sends = on;
    }

    /// Whether the parallel per-send precompute is on.
    pub fn parallel_exchange(&self) -> bool {
        self.parallel_sends
    }

    /// Take a scratch buffer from the per-world pool (cleared, capacity
    /// retained from earlier supersteps).
    pub fn scratch_take(&mut self) -> Vec<Vert> {
        let v = self.scratch.take();
        self.stats.setops.pool_reuses = self.scratch.reuses();
        v
    }

    /// Return a scratch buffer to the pool and refresh the high-water
    /// statistic.
    pub fn scratch_put(&mut self, v: Vec<Vert>) {
        self.scratch.put(v);
        self.stats.setops.pool_high_water_verts = self
            .stats
            .setops
            .pool_high_water_verts
            .max(self.scratch.high_water_verts());
    }

    /// Fault-aware route lookup for `(from, to)`: `(hops, bandwidth
    /// factor, detour hops)`. Routes are static for a fixed plan, so the
    /// BFS result (and the explicit route, for traffic attribution) is
    /// cached per rank pair.
    fn route_info(&mut self, from: usize, to: usize) -> Result<(usize, f64, usize), CommError> {
        if let Some(fr) = self.route_cache.get(&(from, to)) {
            return Ok((fr.hops, fr.bw, fr.detour));
        }
        let dims = self.cost.machine().dims;
        let a = self.mapping.coord_of(from);
        let b = self.mapping.coord_of(to);
        let route = route_with_faults(dims, a, b, &self.plan)
            .map_err(|_| CommError::NoRoute { from, to })?;
        let fr = FaultRoute {
            hops: route.len(),
            bw: self.plan.route_bandwidth_factor(&route),
            detour: detour_hops(dims, &route),
            route,
        };
        let out = (fr.hops, fr.bw, fr.detour);
        self.route_cache.insert((from, to), fr);
        Ok(out)
    }

    /// Execute one message round: deliver every `(from, to, payload)`,
    /// charge communication time, and return per-rank inboxes.
    ///
    /// Self-sends are delivered for free and excluded from wire
    /// statistics (they never leave the node). Empty payloads are legal
    /// and cost one chunk of software overhead (an explicit empty
    /// message); callers that can skip empties should not emit them.
    ///
    /// With an active fault plan, [`OpClass::Expand`]/[`OpClass::Fold`]
    /// rounds advance the fault schedule clock and are subject to
    /// injected faults: drops/truncations trigger modelled ack-timeout
    /// retransmission with bounded exponential backoff (charged as extra
    /// simulated time and counted in `stats.faults`), routes detour
    /// around dead links/nodes through the α–β–hop cost, and scheduled
    /// rank deaths surface as [`CommError::RankDead`] before anything is
    /// charged. [`OpClass::Control`] traffic rides BlueGene/L's separate
    /// reliable tree network by default: never faulted, never advances
    /// the clock. With [`SimWorld::set_control_faultable`] on, control
    /// rounds draw message faults from their own round counter (so the
    /// data schedule is untouched) and only reject sends whose endpoints
    /// are dead — a death elsewhere must not block recovery traffic
    /// among survivors.
    pub fn exchange(&mut self, class: OpClass, sends: Vec<Send>) -> Result<Vec<Inbox>, CommError> {
        let p = self.p();
        let traced = self.trace.is_enabled();
        let trace_sends = self.trace.wants_sends();
        let control = class == OpClass::Control;
        let faultable = self.plan.is_active() && (!control || self.control_faultable);
        let mut fault_round = 0u64;
        if faultable && control {
            fault_round = self.control_round;
            self.control_round += 1;
            // Scheduled deaths fire only on data rounds; here we just
            // refuse traffic that names an already-dead endpoint.
            for &(from, to, _) in &sends {
                for r in [from, to] {
                    if r < p && self.dead[r] {
                        return Err(CommError::RankDead { rank: r });
                    }
                }
            }
        } else if faultable {
            fault_round = self.data_round;
            self.data_round += 1;
            if self.plan.has_deaths() {
                let newly: Vec<usize> = self.plan.deaths_at(fault_round).collect();
                for r in newly {
                    if r < p {
                        self.dead[r] = true;
                    }
                }
            }
            if let Some(r) = self.dead.iter().position(|&d| d) {
                self.trace.world_event(
                    EventKind::RankDeath {
                        rank: r as u32,
                        round: fault_round,
                    },
                    self.sim_time,
                    self.sim_time,
                );
                return Err(CommError::RankDead { rank: r });
            }
        }
        let msg_faults = faultable && self.plan.has_message_faults();
        let topo_faults = faultable
            && self.plan.has_topology_faults()
            && self.cost.machine().kind == MachineKind::Torus3D;

        // Warm the fault-aware route cache serially: it is the only
        // `&mut` state the per-send precompute consults. A pair still
        // missing after warming has no fault-avoiding route; the merge
        // loop surfaces that error at the offending send, with the same
        // partially accumulated statistics as the old fused loop.
        if topo_faults {
            for &(from, to, _) in &sends {
                if from < p && to < p && from != to {
                    let _ = self.route_info(from, to);
                }
            }
        }

        // --- Phase 1: per-send precompute. Wire measurement, routing,
        // α–β–hop arithmetic and the fault schedule are pure functions
        // of the immutable world state, so this is the part that fans
        // out over rayon workers when the compute engine asks for it.
        // Results are positional either way, so the serial merge below
        // is bit-identical to the old fused loop.
        let codec_on = !self.wire_policy.is_raw();
        let mut sends = sends;
        let metas: Vec<SendMeta> = {
            let cost = &self.cost;
            let mapping = &self.mapping;
            let chunk = self.chunk;
            let plan = &self.plan;
            let routes = &self.route_cache;
            let policy = self.wire_policy;
            let machine = *self.cost.machine();
            let pre = |s: &Send| -> SendMeta {
                let (from, to, ref payload) = *s;
                if from >= p || to >= p {
                    return SendMeta::OutOfRange;
                }
                if from == to {
                    return SendMeta::SelfSend;
                }
                let verts = payload.len();
                let w = wire::measure(payload, &policy);
                let chunks = chunk.message_count(verts) as u64;
                let (hops, bw, detour) = if topo_faults {
                    match routes.get(&(from, to)) {
                        Some(fr) => (fr.hops, fr.bw, fr.detour as u64),
                        None => return SendMeta::NoRoute,
                    }
                } else {
                    (
                        cost.hops(mapping.coord_of(from), mapping.coord_of(to)),
                        1.0,
                        0,
                    )
                };
                let base = chunks as f64 * machine.software_overhead
                    + hops as f64 * machine.hop_latency
                    + w.wire_bytes as f64 / (machine.link_bandwidth * bw);
                let mut t = base;
                let mut retries = 0u32;
                let mut fault = FaultDelta {
                    detour,
                    ..FaultDelta::default()
                };
                if msg_faults {
                    match plan.delivery(class.index() as u8, fault_round, from, to) {
                        Ok(d) => {
                            let failed = d.attempts - 1;
                            let dropped = failed - d.truncated_attempts;
                            // A dropped attempt loses the payload in
                            // transit: the header went out, the ack
                            // timer expired.
                            t += dropped as f64
                                * (machine.software_overhead + hops as f64 * machine.hop_latency);
                            // A truncated attempt transits fully before
                            // the receiver rejects the short payload.
                            t += d.truncated_attempts as f64 * base;
                            // Bounded exponential backoff per retry.
                            for k in 0..failed {
                                t += machine.software_overhead * (1u64 << k.min(6)) as f64;
                            }
                            if d.duplicated {
                                t += base;
                                fault.duplicated = true;
                            }
                            fault.dropped = dropped as u64;
                            fault.truncated = d.truncated_attempts as u64;
                            retries = failed;
                        }
                        Err(attempts) => return SendMeta::Unreachable { attempts, detour },
                    }
                }
                SendMeta::Wire(WireSendMeta {
                    verts,
                    logical: w.logical_bytes,
                    wire_bytes: w.wire_bytes,
                    chunks,
                    hops,
                    t,
                    retries,
                    fault,
                })
            };
            if self.parallel_sends && sends.len() > 1 {
                sends.par_iter_mut().map(|s| pre(s)).collect()
            } else {
                sends.iter().map(pre).collect()
            }
        };

        // Encode phase: every rank packs its outgoing payloads before
        // anything enters the wire (BSP rule: elapsed = max over ranks).
        // Charged even if a later send errors out — the encode happened.
        let mut dec_units = vec![0u64; p];
        if codec_on {
            let mut enc_units = vec![0u64; p];
            for (s, meta) in sends.iter().zip(&metas) {
                if let SendMeta::Wire(w) = meta {
                    enc_units[s.0] += w.logical;
                    dec_units[s.1] += w.logical;
                }
            }
            self.codec_phase(&enc_units);
        }
        let t_round0 = self.sim_time;

        let mut out_time = vec![0.0f64; p];
        let mut in_time = vec![0.0f64; p];
        let mut inboxes: Vec<Inbox> = vec![Vec::new(); p];
        let mut round_traffic = if self.congestion {
            Some(LinkTraffic::new())
        } else {
            None
        };

        // --- Phase 2: serial in-order merge of the precomputed sends
        // into clocks, statistics, traces, traffic and inboxes.
        for ((from, to, payload), meta) in sends.into_iter().zip(metas) {
            let w = match meta {
                SendMeta::OutOfRange => {
                    return Err(CommError::DestinationOutOfRange {
                        dest: from.max(to),
                        p,
                    });
                }
                SendMeta::SelfSend => {
                    inboxes[to].push((from, payload));
                    continue;
                }
                SendMeta::NoRoute => return Err(CommError::NoRoute { from, to }),
                SendMeta::Unreachable { attempts, detour } => {
                    self.stats.faults.detour_hops += detour;
                    return Err(CommError::Unreachable { from, to, attempts });
                }
                SendMeta::Wire(w) => w,
            };
            self.stats.faults.detour_hops += w.fault.detour;
            if w.fault.duplicated {
                self.stats.faults.duplicates_injected += 1;
            }
            self.stats.faults.drops_injected += w.fault.dropped;
            self.stats.faults.truncations_injected += w.fault.truncated;
            self.stats.faults.retransmissions += u64::from(w.retries);
            if traced {
                if trace_sends {
                    self.trace.rank_event(
                        from,
                        EventKind::Send {
                            from: from as u32,
                            to: to as u32,
                            bytes: w.wire_bytes,
                            hops: w.hops as u32,
                        },
                        t_round0,
                        t_round0 + w.t,
                    );
                }
                if w.retries > 0 {
                    self.trace.rank_event(
                        from,
                        EventKind::Retransmit {
                            from: from as u32,
                            to: to as u32,
                            retries: w.retries,
                        },
                        t_round0,
                        t_round0 + w.t,
                    );
                }
            }
            out_time[from] += w.t;
            in_time[to] += w.t;

            self.stats.note_message(class, to, w.verts, w.chunks);
            self.stats.note_wire_bytes(class, w.logical, w.wire_bytes);
            // Peak buffer is per wire message, i.e. per chunk.
            self.stats.note_peak(self.chunk.peak_message_len(w.verts));
            if self.traffic.is_some() || round_traffic.is_some() {
                let detoured = if topo_faults {
                    self.route_cache.get(&(from, to))
                } else {
                    None
                };
                for tr in [&mut self.traffic, &mut round_traffic]
                    .into_iter()
                    .flatten()
                {
                    match detoured {
                        Some(fr) => tr.record_route(&fr.route, w.wire_bytes),
                        None => tr.record(
                            self.cost.machine(),
                            self.mapping.coord_of(from),
                            self.mapping.coord_of(to),
                            w.wire_bytes,
                        ),
                    }
                }
            }
            inboxes[to].push((from, payload));
        }

        let mut elapsed = (0..p)
            .map(|r| out_time[r].max(in_time[r]))
            .fold(0.0f64, f64::max);
        if let Some(rt) = &round_traffic {
            elapsed = elapsed.max(rt.congestion_time(self.cost.machine()));
        }
        self.sim_time += elapsed;
        self.comm_time += elapsed;
        self.comm_time_by_class[class.index()] += elapsed;

        if traced {
            let mut bottleneck = 0usize;
            let mut messages = 0u32;
            let mut verts = 0u64;
            for r in 0..p {
                if out_time[r].max(in_time[r]) > out_time[bottleneck].max(in_time[bottleneck]) {
                    bottleneck = r;
                }
            }
            for (r, inbox) in inboxes.iter().enumerate() {
                for (from, payload) in inbox {
                    if *from != r {
                        messages += 1;
                        verts += payload.len() as u64;
                    }
                }
            }
            // Skip the all-empty round (a free no-op, e.g. a barrier
            // with nothing to say): it carries no information.
            if messages > 0 || elapsed > 0.0 {
                self.trace.world_event(
                    EventKind::Round {
                        op: OpKind::from_index(class.index()),
                        messages,
                        verts,
                        bottleneck: bottleneck as u32,
                    },
                    t_round0,
                    self.sim_time,
                );
            }
        }

        // Decode phase: receivers unpack after the round completes.
        if codec_on {
            self.codec_phase(&dec_units);
        }

        for inbox in &mut inboxes {
            inbox.sort_by_key(|(from, _)| *from);
        }
        Ok(inboxes)
    }

    /// Charge a wire-codec pass (payload bytes pushed through the codec
    /// per rank), following the same max-over-ranks BSP rule as the
    /// other compute phases.
    fn codec_phase(&mut self, bytes_per_rank: &[u64]) {
        let t0 = self.sim_time;
        let elapsed = bytes_per_rank
            .iter()
            .map(|&b| self.cost.codec_time(b))
            .fold(0.0f64, f64::max);
        self.sim_time += elapsed;
        self.compute_time += elapsed;
        self.codec_time += elapsed;
        if self.trace.is_enabled() && elapsed > 0.0 {
            self.trace_compute(ComputeKind::Codec, bytes_per_rank, t0);
        }
    }

    /// Charge a synchronous compute phase: elapsed time is the maximum of
    /// the per-rank times.
    pub fn compute_phase(&mut self, per_rank_seconds: &[f64]) {
        debug_assert_eq!(per_rank_seconds.len(), self.p());
        let elapsed = per_rank_seconds.iter().copied().fold(0.0f64, f64::max);
        self.sim_time += elapsed;
        self.compute_time += elapsed;
    }

    /// Charge a compute phase expressed in hash probes per rank (the
    /// paper's dominant compute cost).
    pub fn hash_phase(&mut self, probes_per_rank: &[u64]) {
        debug_assert_eq!(probes_per_rank.len(), self.p());
        let t0 = self.sim_time;
        let elapsed = probes_per_rank
            .iter()
            .map(|&n| self.cost.hash_time(n))
            .fold(0.0f64, f64::max);
        self.sim_time += elapsed;
        self.compute_time += elapsed;
        self.hash_time += elapsed;
        if self.trace.is_enabled() && elapsed > 0.0 {
            self.trace_compute(ComputeKind::Hash, probes_per_rank, t0);
        }
    }

    /// Charge a compute phase expressed in copied bytes per rank (buffer
    /// copying during union operations, §4.2).
    pub fn memcpy_phase(&mut self, bytes_per_rank: &[u64]) {
        debug_assert_eq!(bytes_per_rank.len(), self.p());
        let t0 = self.sim_time;
        let elapsed = bytes_per_rank
            .iter()
            .map(|&b| self.cost.memcpy_time(b))
            .fold(0.0f64, f64::max);
        self.sim_time += elapsed;
        self.compute_time += elapsed;
        self.memcpy_time += elapsed;
        if self.trace.is_enabled() && elapsed > 0.0 {
            self.trace_compute(ComputeKind::Memcpy, bytes_per_rank, t0);
        }
    }

    /// Emit a compute-pass event bounded by the argmax rank. Both
    /// modelled compute costs are monotone in their per-rank unit
    /// counts, so the largest count names the bottleneck.
    fn trace_compute(&mut self, comp: ComputeKind, units_per_rank: &[u64], t0: f64) {
        let mut bottleneck = 0usize;
        for (r, &u) in units_per_rank.iter().enumerate() {
            if u > units_per_rank[bottleneck] {
                bottleneck = r;
            }
        }
        self.trace.world_event(
            EventKind::Compute {
                comp,
                bottleneck: bottleneck as u32,
            },
            t0,
            self.sim_time,
        );
    }

    /// Record duplicates eliminated by a union performed at `rank`.
    pub fn note_dups(&mut self, rank: usize, n: usize) {
        self.stats.note_dups(rank, n);
    }

    /// Global OR over per-rank flags (termination detection). BlueGene/L
    /// performs this on its dedicated tree network; modelled as a
    /// log₂(P)-depth combining tree of tiny control messages.
    pub fn allreduce_or(&mut self, flags: &[bool]) -> bool {
        debug_assert_eq!(flags.len(), self.p());
        self.charge_tree_allreduce();
        flags.iter().any(|&f| f)
    }

    /// Global sum over per-rank values, same tree-network model.
    pub fn allreduce_sum(&mut self, vals: &[u64]) -> u64 {
        debug_assert_eq!(vals.len(), self.p());
        self.charge_tree_allreduce();
        vals.iter().sum()
    }

    /// Global minimum over per-rank values, same tree-network model.
    pub fn allreduce_min(&mut self, vals: &[u64]) -> u64 {
        debug_assert_eq!(vals.len(), self.p());
        self.charge_tree_allreduce();
        vals.iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Three global sums in one tree traversal: a single allreduce round
    /// carrying a three-word payload instead of one word. The
    /// direction-optimizing BFS rides its α/β inputs (frontier size,
    /// frontier-edge and unexplored-edge counts) on the termination
    /// check this way — same round count as [`SimWorld::allreduce_sum`],
    /// just a wider message.
    pub fn allreduce_sum3(&mut self, a: &[u64], b: &[u64], c: &[u64]) -> (u64, u64, u64) {
        debug_assert_eq!(a.len(), self.p());
        debug_assert_eq!(b.len(), self.p());
        debug_assert_eq!(c.len(), self.p());
        self.charge_tree_allreduce_words(3);
        (a.iter().sum(), b.iter().sum(), c.iter().sum())
    }

    fn charge_tree_allreduce(&mut self) {
        self.charge_tree_allreduce_words(1);
    }

    fn charge_tree_allreduce_words(&mut self, words: u32) {
        let p = self.p();
        if p <= 1 {
            return;
        }
        let depth = (usize::BITS - (p - 1).leading_zeros()) as f64;
        let m = self.cost.machine();
        // Up-sweep + down-sweep of `words`-word messages.
        let elapsed = 2.0
            * depth
            * (m.software_overhead + m.hop_latency + (8.0 * words as f64) / m.link_bandwidth);
        let t0 = self.sim_time;
        self.sim_time += elapsed;
        self.comm_time += elapsed;
        self.comm_time_by_class[OpClass::Control.index()] += elapsed;
        self.trace
            .world_event(EventKind::TreeAllreduce, t0, self.sim_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(p: usize) -> SimWorld {
        SimWorld::bluegene(ProcessorGrid::square_ish(p))
    }

    #[test]
    fn exchange_delivers_sorted_by_sender() {
        let mut w = world(4);
        let inboxes = w
            .exchange(
                OpClass::Fold,
                vec![(3, 0, vec![30]), (1, 0, vec![10]), (2, 0, vec![20])],
            )
            .unwrap();
        assert_eq!(
            inboxes[0],
            vec![(1, vec![10]), (2, vec![20]), (3, vec![30])]
        );
        assert!(inboxes[1].is_empty());
    }

    #[test]
    fn exchange_charges_time_and_stats() {
        let mut w = world(4);
        assert_eq!(w.time(), 0.0);
        w.exchange(OpClass::Expand, vec![(0, 1, vec![1, 2, 3])])
            .unwrap();
        assert!(w.time() > 0.0);
        assert_eq!(w.comm_time(), w.time());
        assert_eq!(w.stats.class(OpClass::Expand).received_verts, 3);
        assert_eq!(w.stats.received_per_rank[1], 3);
    }

    #[test]
    fn self_sends_are_free_and_uncounted() {
        let mut w = world(4);
        let inboxes = w.exchange(OpClass::Fold, vec![(2, 2, vec![7, 8])]).unwrap();
        assert_eq!(inboxes[2], vec![(2, vec![7, 8])]);
        assert_eq!(w.time(), 0.0);
        assert_eq!(w.stats.total_received(), 0);
    }

    #[test]
    fn round_elapsed_is_max_not_sum() {
        // Two disjoint transfers of equal size: elapsed equals one
        // transfer, not two.
        let mut w = world(4);
        w.exchange(OpClass::Fold, vec![(0, 1, vec![0; 100])])
            .unwrap();
        let t1 = w.time();
        w.reset();
        w.exchange(
            OpClass::Fold,
            vec![(0, 1, vec![0; 100]), (2, 3, vec![0; 100])],
        )
        .unwrap();
        let t2 = w.time();
        // Hop counts may differ between the pairs; allow a small slack.
        assert!(t2 < 1.5 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn chunking_multiplies_software_overhead() {
        let grid = ProcessorGrid::square_ish(2);
        let dims = MachineConfig::fit_partition(2);
        let machine = MachineConfig::bluegene_l_partition(dims);
        let mut unbounded = SimWorld::new(
            grid,
            machine,
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::Unbounded,
        );
        let mut chunked = SimWorld::new(
            grid,
            machine,
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::fixed(10),
        );
        unbounded
            .exchange(OpClass::Fold, vec![(0, 1, vec![0; 1000])])
            .unwrap();
        chunked
            .exchange(OpClass::Fold, vec![(0, 1, vec![0; 1000])])
            .unwrap();
        assert!(chunked.time() > unbounded.time());
        assert_eq!(chunked.stats.class(OpClass::Fold).messages, 100);
        assert_eq!(chunked.stats.peak_buffer_verts, 10);
        assert_eq!(unbounded.stats.peak_buffer_verts, 1000);
    }

    #[test]
    fn compute_phase_is_max() {
        let mut w = world(2);
        w.compute_phase(&[1.0, 3.0]);
        assert_eq!(w.time(), 3.0);
        assert_eq!(w.compute_time(), 3.0);
        assert_eq!(w.comm_time(), 0.0);
    }

    #[test]
    fn hash_phase_uses_machine_rate() {
        let mut w = world(1);
        let rate = w.cost_model().machine().hash_rate;
        w.hash_phase(&[1_000_000]);
        assert!((w.time() - 1_000_000.0 / rate).abs() < 1e-12);
    }

    #[test]
    fn allreduce_or_and_sum() {
        let mut w = world(8);
        assert!(!w.allreduce_or(&[false; 8]));
        assert!(w.allreduce_or(&[false, false, true, false, false, false, false, false]));
        assert_eq!(w.allreduce_sum(&[1, 2, 3, 4, 5, 6, 7, 8]), 36);
        assert!(w.comm_time() > 0.0);
    }

    #[test]
    fn allreduce_free_on_single_rank() {
        let mut w = world(1);
        w.allreduce_or(&[true]);
        assert_eq!(w.time(), 0.0);
    }

    #[test]
    fn empty_round_is_free() {
        let mut w = world(4);
        let inboxes = w.exchange(OpClass::Control, Vec::new()).unwrap();
        assert!(inboxes.iter().all(Vec::is_empty));
        assert_eq!(w.time(), 0.0);
        assert_eq!(w.stats.total_received(), 0);
    }

    #[test]
    fn empty_payload_still_costs_alpha() {
        let mut w = world(2);
        w.exchange(OpClass::Control, vec![(0, 1, Vec::new())])
            .unwrap();
        assert!(w.time() > 0.0, "explicit empty message pays overhead");
        assert_eq!(w.stats.class(OpClass::Control).messages, 1);
        assert_eq!(w.stats.class(OpClass::Control).received_verts, 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut w = world(4);
        w.exchange(OpClass::Fold, vec![(0, 1, vec![1])]).unwrap();
        w.compute_phase(&[1.0; 4]);
        w.reset();
        assert_eq!(w.time(), 0.0);
        assert_eq!(w.stats.total_received(), 0);
    }

    #[test]
    fn congestion_model_penalizes_shared_links() {
        // Build a world where several senders funnel through one link:
        // on a small torus, many ranks sending to rank 0 share its
        // incident links. With the congestion model the round is at
        // least the busiest link's drain time.
        let grid = ProcessorGrid::square_ish(16);
        let mut plain = SimWorld::bluegene(grid);
        let mut congested = SimWorld::bluegene(grid);
        congested.enable_congestion_model();
        assert!(congested.congestion_model());
        let sends: Vec<Send> = (1..16).map(|r| (r, 0, vec![0u64; 50_000])).collect();
        plain.exchange(OpClass::Fold, sends.clone()).unwrap();
        congested.exchange(OpClass::Fold, sends).unwrap();
        // Deliveries are identical; only time differs (>= plain).
        assert!(congested.time() >= plain.time());
        // rank 0 has at most 6 incident links on the torus, so 15 large
        // messages must queue: the congestion bound exceeds a single
        // message's bandwidth term.
        let m = *plain.cost_model().machine();
        let one_msg = 50_000.0 * 8.0 / m.link_bandwidth;
        assert!(congested.time() > 2.0 * one_msg);
    }

    #[test]
    fn congestion_model_no_penalty_for_disjoint_neighbors() {
        // Nearest-neighbour disjoint transfers have no shared links, so
        // both models agree.
        let grid = ProcessorGrid::square_ish(4);
        let mut plain = SimWorld::bluegene(grid);
        let mut congested = SimWorld::bluegene(grid);
        congested.enable_congestion_model();
        // Find two rank pairs with disjoint single-hop routes.
        let sends: Vec<Send> = vec![(0, 1, vec![1; 100]), (2, 3, vec![2; 100])];
        plain.exchange(OpClass::Fold, sends.clone()).unwrap();
        congested.exchange(OpClass::Fold, sends).unwrap();
        // Congestion bound is bytes/bandwidth for the busiest link,
        // which is at most the endpoint cost: no slowdown.
        assert!((congested.time() - plain.time()).abs() < plain.time() * 0.5 + 1e-12);
    }

    #[test]
    fn time_breakdown_sums_to_totals() {
        let mut w = world(4);
        w.exchange(OpClass::Expand, vec![(0, 1, vec![1; 100])])
            .unwrap();
        w.exchange(OpClass::Fold, vec![(1, 2, vec![2; 200])])
            .unwrap();
        w.allreduce_or(&[false; 4]);
        w.hash_phase(&[500, 100, 0, 0]);
        w.memcpy_phase(&[4096, 0, 0, 0]);
        let by_class = w.comm_time_for(OpClass::Expand)
            + w.comm_time_for(OpClass::Fold)
            + w.comm_time_for(OpClass::Control);
        assert!((by_class - w.comm_time()).abs() < 1e-15);
        assert!(
            (w.hash_time() + w.memcpy_time() + w.codec_time() - w.compute_time()).abs() < 1e-15
        );
        assert!((w.comm_time() + w.compute_time() - w.time()).abs() < 1e-15);
        assert!(w.comm_time_for(OpClass::Fold) > w.comm_time_for(OpClass::Expand));
        assert_eq!(w.codec_time(), 0.0, "codec off by default");
    }

    #[test]
    fn wire_codec_shrinks_rounds_and_charges_codec_time() {
        // A dense sorted payload: delta/bitmap framing beats raw 8-byte
        // words by far more than the encode/decode compute it costs.
        let payload: Vec<Vert> = (10_000..20_000).collect();
        let mut raw = world(4);
        let mut coded = world(4).with_wire_policy(WirePolicy::auto());
        raw.exchange(OpClass::Fold, vec![(0, 1, payload.clone())])
            .unwrap();
        coded
            .exchange(OpClass::Fold, vec![(0, 1, payload.clone())])
            .unwrap();
        let rc = raw.stats.class(OpClass::Fold);
        let cc = coded.stats.class(OpClass::Fold);
        assert_eq!(rc.logical_bytes, payload.len() as u64 * 8);
        assert_eq!(rc.wire_bytes, rc.logical_bytes, "codec off: wire = logical");
        assert_eq!(cc.logical_bytes, rc.logical_bytes);
        assert!(
            cc.wire_bytes * 10 < cc.logical_bytes,
            "a contiguous range must compress >=10x, got {} of {}",
            cc.wire_bytes,
            cc.logical_bytes
        );
        assert!(coded.codec_time() > 0.0);
        assert!(
            coded.time() < raw.time(),
            "compressed round must be faster: {} vs {}",
            coded.time(),
            raw.time()
        );
        // Logical accounting (verts, messages) is codec-invariant.
        assert_eq!(cc.messages, rc.messages);
        assert_eq!(cc.received_verts, rc.received_verts);
    }

    #[test]
    fn wire_codec_charges_compressed_bytes_to_links() {
        let payload: Vec<Vert> = (0..4096).collect();
        let mut w = world(4).with_wire_policy(WirePolicy::auto());
        w.enable_traffic_accounting();
        w.exchange(OpClass::Fold, vec![(0, 3, payload)]).unwrap();
        let cc = w.stats.class(OpClass::Fold);
        assert_eq!(
            w.traffic().unwrap().total_bytes(),
            cc.wire_bytes,
            "link accounting must carry post-codec bytes"
        );
    }

    #[test]
    fn parallel_exchange_is_bit_identical_to_serial() {
        let payloads: Vec<Send> = (0..16)
            .flat_map(|i| {
                (0..16).filter(move |&j| j != i).map(move |j| {
                    let base = (i * 131 + j) as Vert * 1000;
                    (i, j, (base..base + 200 + (i as Vert * 7)).collect())
                })
            })
            .collect();
        let run = |parallel: bool| {
            let mut w =
                SimWorld::bluegene(ProcessorGrid::new(4, 4)).with_wire_policy(WirePolicy::auto());
            w.set_parallel_exchange(parallel);
            w.enable_traffic_accounting();
            let inboxes = w.exchange(OpClass::Expand, payloads.clone()).unwrap();
            (
                inboxes,
                w.time().to_bits(),
                w.codec_time().to_bits(),
                w.stats.clone(),
                w.traffic().unwrap().sum_link_bytes(),
            )
        };
        let serial = run(false);
        let parallel = run(true);
        assert_eq!(serial.0, parallel.0);
        assert_eq!(serial.1, parallel.1, "sim clock must be bit-identical");
        assert_eq!(serial.2, parallel.2);
        assert_eq!(serial.3, parallel.3);
        assert_eq!(serial.4, parallel.4);
    }

    #[test]
    fn parallel_exchange_preserves_fault_schedule() {
        let plan = FaultPlan::seeded(11).with_drop_prob(0.3);
        let sends: Vec<Send> = (1..4).map(|r| (0, r, vec![5; 500])).collect();
        let run = |parallel: bool| {
            let mut w = world(4).with_fault_plan(plan.clone());
            w.set_parallel_exchange(parallel);
            for _ in 0..6 {
                w.exchange(OpClass::Fold, sends.clone()).unwrap();
            }
            (w.time().to_bits(), w.stats.clone())
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a, b);
        assert!(b.1.faults.retransmissions > 0, "plan must actually fire");
    }

    #[test]
    fn traffic_accounting_optional() {
        let mut w = world(4);
        assert!(w.traffic().is_none());
        w.enable_traffic_accounting();
        w.exchange(OpClass::Fold, vec![(0, 1, vec![1, 2])]).unwrap();
        assert!(w.traffic().unwrap().total_bytes() > 0);
    }

    #[test]
    fn try_new_rejects_too_small_machine() {
        let grid = ProcessorGrid::new(8, 8);
        let machine = MachineConfig::bluegene_l_partition(bgl_torus::TorusDims::new(2, 2, 2));
        let err = SimWorld::try_new(
            grid,
            machine,
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::Unbounded,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CommError::MachineTooSmall {
                ranks: 64,
                nodes: 8
            }
        );
    }

    #[test]
    fn out_of_range_destination_is_typed_error() {
        let mut w = world(4);
        let err = w
            .exchange(OpClass::Fold, vec![(0, 9, vec![1])])
            .unwrap_err();
        assert_eq!(err, CommError::DestinationOutOfRange { dest: 9, p: 4 });
    }

    #[test]
    fn none_plan_is_byte_identical_to_fault_free() {
        let mut a = world(4);
        let mut b = world(4).with_fault_plan(FaultPlan::none());
        let sends: Vec<Send> = vec![(0, 1, vec![1, 2, 3]), (2, 3, vec![4; 100])];
        let ia = a.exchange(OpClass::Expand, sends.clone()).unwrap();
        let ib = b.exchange(OpClass::Expand, sends).unwrap();
        assert_eq!(ia, ib);
        assert_eq!(a.time(), b.time());
        assert_eq!(a.stats, b.stats);
        assert!(!b.stats.faults.any());
    }

    #[test]
    fn drops_slow_the_round_and_count_retransmissions() {
        let plan = FaultPlan::seeded(7).with_drop_prob(0.4);
        let mut faulty = world(4).with_fault_plan(plan);
        let mut clean = world(4);
        // Enough messages that a 40% drop rate certainly fires.
        let sends: Vec<Send> = (1..4).map(|r| (0, r, vec![0u64; 1000])).collect();
        for _ in 0..8 {
            let ia = faulty.exchange(OpClass::Fold, sends.clone()).unwrap();
            let ib = clean.exchange(OpClass::Fold, sends.clone()).unwrap();
            assert_eq!(ia, ib, "faults delay but never change deliveries");
        }
        assert!(faulty.stats.faults.drops_injected > 0);
        assert!(faulty.stats.faults.retransmissions >= faulty.stats.faults.drops_injected);
        assert!(faulty.time() > clean.time(), "retries cost simulated time");
        // Logical message accounting is unchanged by retransmission.
        assert_eq!(
            faulty.stats.class(OpClass::Fold).messages,
            clean.stats.class(OpClass::Fold).messages
        );
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let mk = || world(4).with_fault_plan(FaultPlan::seeded(42).with_drop_prob(0.3));
        let run = |w: &mut SimWorld| {
            for _ in 0..10 {
                w.exchange(
                    OpClass::Expand,
                    vec![(0, 1, vec![0; 64]), (2, 3, vec![0; 64])],
                )
                .unwrap();
            }
            (w.stats.faults, w.time())
        };
        let (f1, t1) = run(&mut mk());
        let (f2, t2) = run(&mut mk());
        assert_eq!(f1, f2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn control_class_is_exempt_from_faults() {
        let plan = FaultPlan::seeded(3).with_drop_prob(1.0);
        let mut w = world(4).with_fault_plan(plan);
        // drop_prob 1.0 would make any data message unreachable; control
        // traffic sails through and does not advance the fault clock.
        w.exchange(OpClass::Control, vec![(0, 1, vec![9])]).unwrap();
        assert_eq!(w.data_round(), 0);
        assert!(!w.stats.faults.any());
        let err = w
            .exchange(OpClass::Fold, vec![(0, 1, vec![9])])
            .unwrap_err();
        assert!(matches!(err, CommError::Unreachable { .. }));
    }

    #[test]
    fn faulty_control_channel_retransmits_without_touching_data_schedule() {
        // Opting control traffic in to a lossy plan produces control
        // retransmissions hashed off a separate round counter: the data
        // fault schedule (and thus the BFS answer) is untouched.
        let plan = FaultPlan::seeded(11).with_drop_prob(0.6);
        let reference = {
            let mut w = world(4).with_fault_plan(plan.clone());
            w.exchange(OpClass::Expand, vec![(0, 1, vec![1, 2, 3])])
                .map(|_| (w.stats.faults.clone(), w.data_round()))
        };
        let mut w = world(4).with_fault_plan(plan).with_faulty_control();
        assert!(w.control_faultable());
        // Burn several control rounds first; with the old shared clock
        // this would shift the data schedule.
        let mut control_retries = 0;
        for _ in 0..6 {
            if w.exchange(OpClass::Control, vec![(0, 1, vec![9])]).is_err() {
                // Unreachable is a legal outcome at drop 0.6; callers
                // retry at the protocol layer.
            }
            control_retries = w.stats.faults.retransmissions;
        }
        assert_eq!(w.control_round(), 6);
        assert_eq!(w.data_round(), 0, "control rounds must not advance data");
        assert!(
            control_retries > 0,
            "drop 0.6 over 6 control rounds must retransmit"
        );
        let before = w.stats.faults.clone();
        let got = w
            .exchange(OpClass::Expand, vec![(0, 1, vec![1, 2, 3])])
            .map(|_| {
                let mut f = w.stats.faults.clone();
                f.drops_injected -= before.drops_injected;
                f.truncations_injected -= before.truncations_injected;
                f.duplicates_injected -= before.duplicates_injected;
                f.retransmissions -= before.retransmissions;
                f.detour_hops -= before.detour_hops;
                (f, w.data_round())
            });
        match (reference, got) {
            (Ok((rf, rr)), Ok((gf, gr))) => {
                assert_eq!(rf, gf, "data-round fault deltas must match");
                assert_eq!(rr, gr);
            }
            (Err(re), Err(ge)) => assert_eq!(re, ge),
            (r, g) => panic!("outcomes diverged: {r:?} vs {g:?}"),
        }
    }

    #[test]
    fn faulty_control_rejects_dead_endpoints_only() {
        let plan = FaultPlan::seeded(5).kill_rank_at(2, 0);
        let mut w = world(4).with_fault_plan(plan).with_faulty_control();
        // Round 0 fires the death.
        let err = w
            .exchange(OpClass::Expand, vec![(0, 1, vec![5])])
            .unwrap_err();
        assert_eq!(err, CommError::RankDead { rank: 2 });
        // Control among survivors flows despite the dead rank...
        w.exchange(OpClass::Control, vec![(0, 1, vec![7])]).unwrap();
        // ...but naming the corpse as an endpoint is refused.
        let err = w
            .exchange(OpClass::Control, vec![(0, 2, vec![7])])
            .unwrap_err();
        assert_eq!(err, CommError::RankDead { rank: 2 });
    }

    #[test]
    fn recovery_backoff_is_charged_to_control_time() {
        let mut w = world(4);
        let t0 = w.time();
        w.charge_recovery_backoff(0);
        w.charge_recovery_backoff(3);
        w.charge_recovery_backoff(40); // exponent capped at 6
        let elapsed = w.time() - t0;
        let overhead = w.cost_model().machine().software_overhead;
        assert!((elapsed - overhead * (1.0 + 8.0 + 64.0)).abs() < 1e-12);
        assert!((w.comm_time_for(OpClass::Control) - elapsed).abs() < 1e-12);
    }

    #[test]
    fn scheduled_death_fires_and_revive_recovers() {
        let plan = FaultPlan::seeded(1).kill_rank_at(2, 1);
        let mut w = world(4).with_fault_plan(plan);
        let sends = vec![(0, 1, vec![5u64])];
        w.exchange(OpClass::Expand, sends.clone()).unwrap(); // round 0: fine
        let err = w.exchange(OpClass::Fold, sends.clone()).unwrap_err();
        assert_eq!(err, CommError::RankDead { rank: 2 });
        assert_eq!(w.dead_ranks(), vec![2]);
        // The failed round charged nothing and delivered nothing, but did
        // advance the clock; revival makes the next round succeed and the
        // death never refires.
        w.revive(2);
        assert!(w.dead_ranks().is_empty());
        for _ in 0..4 {
            w.exchange(OpClass::Fold, sends.clone()).unwrap();
        }
        w.note_recovery();
        assert_eq!(w.stats.faults.recoveries, 1);
    }

    #[test]
    fn dead_link_detour_charges_more_hops() {
        // Kill a link on the direct route between two mapped neighbours;
        // the detour must cost more time than the clean route and count
        // detour hops.
        let grid = ProcessorGrid::square_ish(16);
        let mut clean = SimWorld::bluegene(grid);
        let sends = vec![(0usize, 1usize, vec![0u64; 100])];
        clean.exchange(OpClass::Fold, sends.clone()).unwrap();
        let a = clean.mapping().coord_of(0);
        let b = clean.mapping().coord_of(1);
        // Only a meaningful test if the pair is a single hop apart.
        let dims = clean.cost_model().machine().dims;
        if bgl_torus::hop_distance(dims, a, b) == 1 {
            let plan = FaultPlan::seeded(0).kill_link(a, b);
            let mut faulty = SimWorld::bluegene(grid).with_fault_plan(plan);
            faulty.exchange(OpClass::Fold, sends).unwrap();
            assert!(faulty.stats.faults.detour_hops > 0);
            assert!(faulty.time() > clean.time());
        }
    }

    #[test]
    fn degraded_link_slows_transfers() {
        let grid = ProcessorGrid::square_ish(4);
        let mut clean = SimWorld::bluegene(grid);
        let sends = vec![(0usize, 1usize, vec![0u64; 10_000])];
        clean.exchange(OpClass::Fold, sends.clone()).unwrap();
        let a = clean.mapping().coord_of(0);
        let b = clean.mapping().coord_of(1);
        let dims = clean.cost_model().machine().dims;
        if bgl_torus::hop_distance(dims, a, b) == 1 {
            let plan = FaultPlan::seeded(0).degrade_link(a, b, 0.25);
            let mut faulty = SimWorld::bluegene(grid).with_fault_plan(plan);
            faulty.exchange(OpClass::Fold, sends).unwrap();
            assert!(faulty.time() > clean.time());
        }
    }
}
