//! Sorted-set operations on vertex lists.
//!
//! The union-fold (§2.2, §3.2.2) reduces messages with a *set-union*
//! operation while they travel: "all the messages are scanned while being
//! transmitted to ensure that the messages do not contain duplicate
//! vertices". We represent vertex sets as **sorted, duplicate-free
//! `Vec<u64>`** so unions are linear merges — cache-friendly and
//! allocation-light, as the perf guide recommends over hash sets for
//! bulk merge workloads.

use crate::Vert;

/// Sort and deduplicate a vertex list in place; returns the number of
/// duplicates removed.
pub fn normalize(v: &mut Vec<Vert>) -> usize {
    let before = v.len();
    v.sort_unstable();
    v.dedup();
    before - v.len()
}

/// True if `v` is sorted strictly ascending (the canonical set form).
pub fn is_normalized(v: &[Vert]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

/// Union of two normalized sets into a fresh vector; returns
/// `(union, duplicates)` where `duplicates` is the number of elements
/// present in both inputs (i.e. eliminated by the union).
pub fn union(a: &[Vert], b: &[Vert]) -> (Vec<Vert>, usize) {
    debug_assert!(is_normalized(a) && is_normalized(b));
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j, mut dups) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
                dups += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    (out, dups)
}

/// Union `b` into the accumulator `a` (both normalized), reusing `a`'s
/// allocation when possible. Returns the number of duplicates eliminated.
pub fn union_into(a: &mut Vec<Vert>, b: &[Vert]) -> usize {
    if b.is_empty() {
        return 0;
    }
    if a.is_empty() {
        a.extend_from_slice(b);
        return 0;
    }
    // Fast path: disjoint ranges append/prepend without a merge pass.
    if *a.last().unwrap() < b[0] {
        a.extend_from_slice(b);
        return 0;
    }
    let (merged, dups) = union(a, b);
    *a = merged;
    dups
}

/// Union many normalized sets; returns `(union, duplicates)` where
/// duplicates counts every eliminated occurrence across all inputs.
pub fn union_many(sets: &[Vec<Vert>]) -> (Vec<Vert>, usize) {
    let mut acc: Vec<Vert> = Vec::new();
    let mut dups = 0;
    for s in sets {
        dups += union_into(&mut acc, s);
    }
    (acc, dups)
}

/// Intersection of two normalized sets (used for bi-directional BFS meet
/// detection).
pub fn intersect(a: &[Vert], b: &[Vert]) -> Vec<Vert> {
    debug_assert!(is_normalized(a) && is_normalized(b));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_counts() {
        let mut v = vec![5, 1, 5, 3, 1];
        let dups = normalize(&mut v);
        assert_eq!(v, vec![1, 3, 5]);
        assert_eq!(dups, 2);
        assert!(is_normalized(&v));
    }

    #[test]
    fn union_counts_duplicates() {
        let (u, d) = union(&[1, 3, 5], &[2, 3, 5, 7]);
        assert_eq!(u, vec![1, 2, 3, 5, 7]);
        assert_eq!(d, 2);
    }

    #[test]
    fn union_empty_sides() {
        assert_eq!(union(&[], &[1, 2]).0, vec![1, 2]);
        assert_eq!(union(&[1, 2], &[]).0, vec![1, 2]);
        assert_eq!(union(&[], &[]).0, Vec::<Vert>::new());
    }

    #[test]
    fn union_into_fast_append() {
        let mut a = vec![1, 2, 3];
        let d = union_into(&mut a, &[4, 5]);
        assert_eq!(a, vec![1, 2, 3, 4, 5]);
        assert_eq!(d, 0);
    }

    #[test]
    fn union_into_overlapping() {
        let mut a = vec![1, 4, 9];
        let d = union_into(&mut a, &[4, 5, 9]);
        assert_eq!(a, vec![1, 4, 5, 9]);
        assert_eq!(d, 2);
    }

    #[test]
    fn union_many_total_dups() {
        let sets = vec![vec![1, 2], vec![2, 3], vec![1, 3]];
        let (u, d) = union_many(&sets);
        assert_eq!(u, vec![1, 2, 3]);
        // 2 (from second set), 1 and 3 (from third) => 3 eliminated.
        assert_eq!(d, 3);
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 2, 4, 8], &[2, 3, 8]), vec![2, 8]);
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<Vert>::new());
        assert_eq!(intersect(&[], &[1]), Vec::<Vert>::new());
    }
}
