//! Sorted-set operations on vertex lists.
//!
//! The union-fold (§2.2, §3.2.2) reduces messages with a *set-union*
//! operation while they travel: "all the messages are scanned while being
//! transmitted to ensure that the messages do not contain duplicate
//! vertices". We represent vertex sets as **sorted, duplicate-free
//! `Vec<u64>`** so unions are linear merges — cache-friendly and
//! allocation-light, as the perf guide recommends over hash sets for
//! bulk merge workloads.

use crate::Vert;

/// Sort and deduplicate a vertex list in place; returns the number of
/// duplicates removed.
pub fn normalize(v: &mut Vec<Vert>) -> usize {
    let before = v.len();
    v.sort_unstable();
    v.dedup();
    before - v.len()
}

/// True if `v` is sorted strictly ascending (the canonical set form).
pub fn is_normalized(v: &[Vert]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

/// Union of two normalized sets into a fresh vector; returns
/// `(union, duplicates)` where `duplicates` is the number of elements
/// present in both inputs (i.e. eliminated by the union).
pub fn union(a: &[Vert], b: &[Vert]) -> (Vec<Vert>, usize) {
    debug_assert!(is_normalized(a) && is_normalized(b));
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j, mut dups) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
                dups += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    (out, dups)
}

/// Union `b` into the accumulator `a` (both normalized), merging in
/// place from the tail — no fresh vector is allocated even when the
/// ranges overlap. Returns the number of duplicates eliminated.
pub fn union_into(a: &mut Vec<Vert>, b: &[Vert]) -> usize {
    debug_assert!(is_normalized(a) && is_normalized(b));
    if b.is_empty() {
        return 0;
    }
    if a.is_empty() {
        a.extend_from_slice(b);
        return 0;
    }
    // Fast path: disjoint ranges append without a merge pass.
    // bgl-lint: allow(r1, reason = "the is_empty early-return above guarantees `a` is non-empty here")
    if *a.last().unwrap() < b[0] {
        a.extend_from_slice(b);
        return 0;
    }
    // Backward merge: grow `a` to the worst-case length and merge from
    // the tails toward the front. Writes never overtake the unread part
    // of `a` because `w` stays at least `j` slots ahead of `i`.
    let old_len = a.len();
    a.resize(old_len + b.len(), 0);
    let (mut i, mut j, mut w) = (old_len, b.len(), old_len + b.len());
    let mut dups = 0;
    while i > 0 && j > 0 {
        w -= 1;
        let (x, y) = (a[i - 1], b[j - 1]);
        match x.cmp(&y) {
            std::cmp::Ordering::Greater => {
                a[w] = x;
                i -= 1;
            }
            std::cmp::Ordering::Less => {
                a[w] = y;
                j -= 1;
            }
            std::cmp::Ordering::Equal => {
                a[w] = x;
                i -= 1;
                j -= 1;
                dups += 1;
            }
        }
    }
    while j > 0 {
        w -= 1;
        j -= 1;
        a[w] = b[j];
    }
    // `a[..i]` is already in place; duplicates left a gap before `w`.
    if i < w {
        a.copy_within(w.., i);
    }
    a.truncate(old_len + b.len() - dups);
    dups
}

/// Union many normalized sets; returns `(union, duplicates)` where
/// duplicates counts every eliminated occurrence across all inputs.
pub fn union_many(sets: &[Vec<Vert>]) -> (Vec<Vert>, usize) {
    let mut acc: Vec<Vert> = Vec::new();
    let mut dups = 0;
    for s in sets {
        dups += union_into(&mut acc, s);
    }
    (acc, dups)
}

/// Intersection of two normalized sets (used for bi-directional BFS meet
/// detection).
pub fn intersect(a: &[Vert], b: &[Vert]) -> Vec<Vert> {
    debug_assert!(is_normalized(a) && is_normalized(b));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sorts_and_counts() {
        let mut v = vec![5, 1, 5, 3, 1];
        let dups = normalize(&mut v);
        assert_eq!(v, vec![1, 3, 5]);
        assert_eq!(dups, 2);
        assert!(is_normalized(&v));
    }

    #[test]
    fn union_counts_duplicates() {
        let (u, d) = union(&[1, 3, 5], &[2, 3, 5, 7]);
        assert_eq!(u, vec![1, 2, 3, 5, 7]);
        assert_eq!(d, 2);
    }

    #[test]
    fn union_empty_sides() {
        assert_eq!(union(&[], &[1, 2]).0, vec![1, 2]);
        assert_eq!(union(&[1, 2], &[]).0, vec![1, 2]);
        assert_eq!(union(&[], &[]).0, Vec::<Vert>::new());
    }

    #[test]
    fn union_into_fast_append() {
        let mut a = vec![1, 2, 3];
        let d = union_into(&mut a, &[4, 5]);
        assert_eq!(a, vec![1, 2, 3, 4, 5]);
        assert_eq!(d, 0);
    }

    #[test]
    fn union_into_overlapping() {
        let mut a = vec![1, 4, 9];
        let d = union_into(&mut a, &[4, 5, 9]);
        assert_eq!(a, vec![1, 4, 5, 9]);
        assert_eq!(d, 2);
    }

    #[test]
    fn union_into_prepend_and_interleave() {
        // b entirely below a: every element lands before the old prefix.
        let mut a = vec![10, 20, 30];
        let d = union_into(&mut a, &[1, 2, 3]);
        assert_eq!(a, vec![1, 2, 3, 10, 20, 30]);
        assert_eq!(d, 0);
        // Full interleave with duplicates at both ends.
        let mut a = vec![1, 3, 5, 7];
        let d = union_into(&mut a, &[1, 2, 6, 7, 8]);
        assert_eq!(a, vec![1, 2, 3, 5, 6, 7, 8]);
        assert_eq!(d, 2);
    }

    #[test]
    fn union_into_matches_union_on_random_sets() {
        // Deterministic pseudo-random cross-check of the in-place tail
        // merge against the allocating reference merge.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for case in 0..200 {
            let mut a: Vec<Vert> = (0..(case % 17)).map(|_| step() % 100).collect();
            let mut b: Vec<Vert> = (0..(case % 23)).map(|_| step() % 100).collect();
            normalize(&mut a);
            normalize(&mut b);
            let (expect, expect_dups) = union(&a, &b);
            let mut got = a.clone();
            let got_dups = union_into(&mut got, &b);
            assert_eq!(got, expect, "a={a:?} b={b:?}");
            assert_eq!(got_dups, expect_dups);
        }
    }

    #[test]
    fn union_into_is_subset_absorbing() {
        let mut a = vec![1, 2, 3, 4, 5];
        let d = union_into(&mut a, &[2, 3, 4]);
        assert_eq!(a, vec![1, 2, 3, 4, 5]);
        assert_eq!(d, 3);
    }

    #[test]
    fn union_many_total_dups() {
        let sets = vec![vec![1, 2], vec![2, 3], vec![1, 3]];
        let (u, d) = union_many(&sets);
        assert_eq!(u, vec![1, 2, 3]);
        // 2 (from second set), 1 and 3 (from third) => 3 eliminated.
        assert_eq!(d, 3);
    }

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 2, 4, 8], &[2, 3, 8]), vec![2, 8]);
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<Vert>::new());
        assert_eq!(intersect(&[], &[1]), Vec::<Vert>::new());
    }
}
