//! Adaptive wire codecs for exchange payloads.
//!
//! The collectives ship sorted vertex lists almost exclusively, and
//! sorted lists compress well: delta+varint encoding exploits small
//! gaps (Lv et al., "Compression and Sieve"), and dense frontiers are
//! cheaper still as bitmaps (Buluç & Madduri). This module implements
//! four frame formats — raw list, delta+varint, fixed-range bitmap and
//! run-length bitmap — plus a density-driven adaptive chooser in the
//! same style as [`crate::VsetPolicy`]'s list/bitmap switch.
//!
//! **Determinism contract.** The format choice is a *pure function of
//! the payload content and the policy* — deliberately stateless, unlike
//! `VsetPolicy`'s keeps-band hysteresis. The superstep simulator
//! processes sends in a global order while the threaded runtime
//! processes them per rank; any cross-message state would make the two
//! runtimes pick different formats for the same message and break the
//! bit-identity the equivalence suite pins. The hysteresis *style*
//! survives as the shifted density threshold (`count << density_shift
//! >= span`); the band itself cannot exist on the wire.
//!
//! The simulator never materializes frames: [`measure`] returns the
//! exact encoded size, and [`encode`] (used by the threaded runtime,
//! which really ships bytes) is guaranteed to produce exactly that many
//! bytes for the same payload and policy — the property tests pin this.

use crate::{Vert, VERT_BYTES};
use serde::{Deserialize, Serialize};

/// Which codec family the world applies to exchange payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WireMode {
    /// Codec off: payloads ship as raw vertex words with no framing.
    /// Wire bytes equal logical bytes and no encode/decode time is
    /// charged — bit-identical to the pre-codec behavior.
    #[default]
    Raw,
    /// Density-adaptive per-message choice among all four formats.
    Auto,
    /// Force delta+varint (raw fallback for unsorted payloads).
    Delta,
    /// Force a bitmap format (delta/raw fallback where invalid).
    Bitmap,
}

impl WireMode {
    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "raw" => Some(Self::Raw),
            "auto" => Some(Self::Auto),
            "delta" => Some(Self::Delta),
            "bitmap" => Some(Self::Bitmap),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Raw => "raw",
            Self::Auto => "auto",
            Self::Delta => "delta",
            Self::Bitmap => "bitmap",
        }
    }
}

/// Wire-codec policy: the mode plus the density thresholds the adaptive
/// chooser consults (mirroring [`crate::VsetPolicy::hybrid`]'s values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WirePolicy {
    /// Codec family.
    pub mode: WireMode,
    /// Below this payload length a bitmap is never chosen (framing
    /// overhead dominates).
    pub min_bitmap_len: usize,
    /// Density threshold: choose a bitmap when
    /// `count << density_shift >= span`. Shift 6 ⇒ ≥ 1 vertex per 64
    /// slots, i.e. ≥ 1 set bit per bitmap word on average.
    pub density_shift: u32,
}

impl WirePolicy {
    /// Codec off (the default): raw words, no framing, no charge.
    pub fn raw() -> Self {
        Self::with_mode(WireMode::Raw)
    }

    /// The density-adaptive chooser with `VsetPolicy::hybrid`-style
    /// thresholds.
    pub fn auto() -> Self {
        Self::with_mode(WireMode::Auto)
    }

    /// A policy with the standard thresholds and the given mode.
    pub fn with_mode(mode: WireMode) -> Self {
        Self {
            mode,
            min_bitmap_len: 64,
            density_shift: 6,
        }
    }

    /// Whether the codec layer is off entirely.
    pub fn is_raw(&self) -> bool {
        self.mode == WireMode::Raw
    }

    /// Density test for the bitmap family, same shape as
    /// `VsetPolicy::prefers_bitmap`: `count << shift >= span`.
    fn prefers_bitmap(&self, count: usize, span: u64) -> bool {
        count >= self.min_bitmap_len
            && (count as u64)
                .checked_shl(self.density_shift)
                .is_some_and(|lhs| lhs >= span)
    }
}

impl Default for WirePolicy {
    fn default() -> Self {
        Self::raw()
    }
}

/// One frame format (the tag byte on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFormat {
    /// Tag 0: varint count, then `count` 8-byte LE words.
    Raw,
    /// Tag 1: varint count, varint first value, then varint deltas.
    /// Valid for non-decreasing payloads (delta 0 carries duplicates).
    Delta,
    /// Tag 2: varint count, varint first value, varint word count, then
    /// a fixed-range bitmap of offsets. Valid for strictly increasing
    /// payloads.
    Bitmap,
    /// Tag 3: varint count, varint first value, then alternating
    /// varint run-length / gap pairs. Valid for strictly increasing
    /// payloads; wins on clustered sets.
    Rle,
}

impl WireFormat {
    fn tag(self) -> u8 {
        match self {
            Self::Raw => 0,
            Self::Delta => 1,
            Self::Bitmap => 2,
            Self::Rle => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Self::Raw),
            1 => Some(Self::Delta),
            2 => Some(Self::Bitmap),
            3 => Some(Self::Rle),
            _ => None,
        }
    }

    /// Display name (stats/CLI).
    pub fn name(self) -> &'static str {
        match self {
            Self::Raw => "raw",
            Self::Delta => "delta",
            Self::Bitmap => "bitmap",
            Self::Rle => "rle",
        }
    }
}

/// Frame-header bound: tag byte plus a maximal varint count. The
/// adaptive chooser never exceeds the raw *payload* size (8 bytes per
/// vertex) by more than this.
pub const HEADER_BOUND: u64 = 1 + MAX_VARINT_LEN;

/// A varint never exceeds 10 bytes for a 64-bit value.
const MAX_VARINT_LEN: u64 = 10;

/// The exact wire accounting for one payload under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMeasure {
    /// Chosen frame format.
    pub format: WireFormat,
    /// Exact encoded frame size in bytes ([`encode`] produces exactly
    /// this many).
    pub wire_bytes: u64,
    /// Uncompressed payload size: `count * VERT_BYTES`.
    pub logical_bytes: u64,
}

/// Encoded LEB128 length of `v`.
fn varint_len(v: u64) -> u64 {
    if v == 0 {
        return 1;
    }
    (70 - u64::from(v.leading_zeros())) / 7
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        v |= u64::from(b & 0x7f).checked_shl(shift)?;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// One-pass payload shape scan: everything the chooser and the exact
/// size formulas need.
struct Scan {
    non_decreasing: bool,
    strictly_increasing: bool,
    /// Body bytes of a delta frame (first + deltas), valid when
    /// non-decreasing.
    delta_body: u64,
    /// Body bytes of an RLE frame (first + run/gap varints), valid when
    /// strictly increasing.
    rle_body: u64,
    first: Vert,
    last: Vert,
}

fn scan(payload: &[Vert]) -> Scan {
    let mut s = Scan {
        non_decreasing: true,
        strictly_increasing: true,
        delta_body: 0,
        rle_body: 0,
        first: 0,
        last: 0,
    };
    let Some((&first, rest)) = payload.split_first() else {
        return s;
    };
    s.first = first;
    s.delta_body = varint_len(first);
    s.rle_body = varint_len(first);
    let mut prev = first;
    let mut run = 1u64;
    for &v in rest {
        if v < prev {
            s.non_decreasing = false;
            s.strictly_increasing = false;
            break;
        }
        if v == prev {
            s.strictly_increasing = false;
        }
        s.delta_body += varint_len(v - prev);
        if v == prev.wrapping_add(1) {
            run += 1;
        } else if v > prev {
            s.rle_body += varint_len(run) + varint_len(v - prev - 1);
            run = 1;
        }
        prev = v;
    }
    s.last = prev;
    s.rle_body += varint_len(run);
    s
}

/// Frame size of a raw-format message.
fn raw_frame_bytes(count: usize) -> u64 {
    1 + varint_len(count as u64) + count as u64 * VERT_BYTES
}

/// Bitmap words spanned by `[first, last]`.
fn bitmap_words(first: Vert, last: Vert) -> u64 {
    (last - first) / 64 + 1
}

/// Choose the frame format for `payload` under `policy` and return its
/// exact encoded size. Pure: depends only on the arguments.
///
/// [`WireMode::Raw`] (codec off) is special-cased to *logical* bytes
/// with no framing — callers should skip the codec path entirely.
pub fn measure(payload: &[Vert], policy: &WirePolicy) -> WireMeasure {
    let count = payload.len();
    let logical_bytes = count as u64 * VERT_BYTES;
    if policy.is_raw() {
        return WireMeasure {
            format: WireFormat::Raw,
            wire_bytes: logical_bytes,
            logical_bytes,
        };
    }
    let (format, wire_bytes) = choose(payload, policy);
    WireMeasure {
        format,
        wire_bytes,
        logical_bytes,
    }
}

/// The shared chooser behind [`measure`] and [`encode`].
fn choose(payload: &[Vert], policy: &WirePolicy) -> (WireFormat, u64) {
    let count = payload.len();
    let raw = raw_frame_bytes(count);
    if count == 0 {
        return (WireFormat::Raw, raw);
    }
    let s = scan(payload);
    let header = 1 + varint_len(count as u64);
    let delta = header + s.delta_body;
    let bitmap_pair = if s.strictly_increasing {
        let words = bitmap_words(s.first, s.last);
        let fixed = header + varint_len(s.first) + varint_len(words) + words * 8;
        let rle = header + s.rle_body;
        Some(if rle < fixed {
            (WireFormat::Rle, rle)
        } else {
            (WireFormat::Bitmap, fixed)
        })
    } else {
        None
    };
    match policy.mode {
        WireMode::Raw => (WireFormat::Raw, raw),
        WireMode::Delta => {
            if s.non_decreasing {
                (WireFormat::Delta, delta)
            } else {
                (WireFormat::Raw, raw)
            }
        }
        WireMode::Bitmap => match bitmap_pair {
            Some(b) => b,
            None if s.non_decreasing => (WireFormat::Delta, delta),
            None => (WireFormat::Raw, raw),
        },
        WireMode::Auto => {
            let span = (s.last - s.first).saturating_add(1);
            let candidate = match bitmap_pair {
                Some(b) if policy.prefers_bitmap(count, span) => b,
                _ if s.non_decreasing => (WireFormat::Delta, delta),
                _ => (WireFormat::Raw, raw),
            };
            // The adaptive chooser never ships a frame larger than the
            // raw frame — the proptest suite pins this bound.
            if candidate.1 <= raw {
                candidate
            } else {
                (WireFormat::Raw, raw)
            }
        }
    }
}

/// Encode `payload` into a framed byte vector. The frame length always
/// equals `measure(payload, policy).wire_bytes` for non-`Raw` modes.
pub fn encode(payload: &[Vert], policy: &WirePolicy) -> Vec<u8> {
    let (format, wire_bytes) = choose(payload, policy);
    let mut out = Vec::with_capacity(wire_bytes as usize);
    out.push(format.tag());
    push_varint(&mut out, payload.len() as u64);
    match format {
        WireFormat::Raw => {
            for &v in payload {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        WireFormat::Delta => {
            if let Some((&first, rest)) = payload.split_first() {
                push_varint(&mut out, first);
                let mut prev = first;
                for &v in rest {
                    push_varint(&mut out, v - prev);
                    prev = v;
                }
            }
        }
        WireFormat::Bitmap => {
            let first = payload[0];
            // bgl-lint: allow(r1, reason = "choose() returns Raw for empty payloads, so the Bitmap arm sees at least one element")
            let last = *payload.last().unwrap();
            let words = bitmap_words(first, last);
            push_varint(&mut out, first);
            push_varint(&mut out, words);
            let mut bits = vec![0u64; words as usize];
            for &v in payload {
                let off = v - first;
                bits[(off / 64) as usize] |= 1u64 << (off % 64);
            }
            for w in bits {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        WireFormat::Rle => {
            let first = payload[0];
            push_varint(&mut out, first);
            let mut prev = first;
            let mut run = 1u64;
            for &v in &payload[1..] {
                if v == prev + 1 {
                    run += 1;
                } else {
                    push_varint(&mut out, run);
                    push_varint(&mut out, v - prev - 1);
                    run = 1;
                }
                prev = v;
            }
            push_varint(&mut out, run);
        }
    }
    debug_assert_eq!(out.len() as u64, wire_bytes);
    out
}

/// Decode a frame produced by [`encode`]. Returns `None` on a corrupt
/// frame (bad tag, truncated body, overflowing varint).
pub fn decode(frame: &[u8]) -> Option<Vec<Vert>> {
    let mut pos = 0usize;
    let format = WireFormat::from_tag(*frame.get(pos)?)?;
    pos += 1;
    let count = read_varint(frame, &mut pos)? as usize;
    let mut out = Vec::with_capacity(count);
    match format {
        WireFormat::Raw => {
            for _ in 0..count {
                let bytes = frame.get(pos..pos + 8)?;
                out.push(Vert::from_le_bytes(bytes.try_into().ok()?));
                pos += 8;
            }
        }
        WireFormat::Delta => {
            if count > 0 {
                let mut v = read_varint(frame, &mut pos)?;
                out.push(v);
                for _ in 1..count {
                    v = v.checked_add(read_varint(frame, &mut pos)?)?;
                    out.push(v);
                }
            }
        }
        WireFormat::Bitmap => {
            let first = read_varint(frame, &mut pos)?;
            let words = read_varint(frame, &mut pos)? as usize;
            for w in 0..words {
                let bytes = frame.get(pos..pos + 8)?;
                let mut word = u64::from_le_bytes(bytes.try_into().ok()?);
                pos += 8;
                while word != 0 {
                    let bit = word.trailing_zeros() as u64;
                    out.push(first.checked_add(w as u64 * 64 + bit)?);
                    word &= word - 1;
                }
            }
            if out.len() != count {
                return None;
            }
        }
        WireFormat::Rle => {
            if count > 0 {
                let mut v = read_varint(frame, &mut pos)?;
                loop {
                    let run = read_varint(frame, &mut pos)?;
                    for _ in 0..run {
                        out.push(v);
                        v = v.checked_add(1)?;
                    }
                    if out.len() >= count {
                        break;
                    }
                    let gap = read_varint(frame, &mut pos)?;
                    v = v.checked_add(gap)?;
                }
                if out.len() != count {
                    return None;
                }
            }
        }
    }
    if pos != frame.len() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[Vert], policy: &WirePolicy) -> WireFormat {
        let frame = encode(payload, policy);
        let m = measure(payload, policy);
        assert_eq!(frame.len() as u64, m.wire_bytes, "measure must be exact");
        assert_eq!(decode(&frame).expect("decode"), payload);
        assert_eq!(m.format, {
            let (f, _) = choose(payload, policy);
            f
        });
        m.format
    }

    #[test]
    fn trace_crate_agrees_on_vertex_width() {
        // `bgl_trace::WireSummary` converts Round vertex counts back to
        // logical bytes with its own constant (it sits below this
        // crate); the two must never drift.
        assert_eq!(crate::VERT_BYTES, bgl_trace::WIRE_VERT_BYTES);
    }

    #[test]
    fn empty_payload_roundtrips_as_raw() {
        for mode in [WireMode::Auto, WireMode::Delta, WireMode::Bitmap] {
            assert_eq!(
                roundtrip(&[], &WirePolicy::with_mode(mode)),
                WireFormat::Raw
            );
        }
    }

    #[test]
    fn sparse_sorted_set_picks_delta() {
        let payload: Vec<Vert> = (0..100).map(|i| i * 1000 + 7).collect();
        assert_eq!(roundtrip(&payload, &WirePolicy::auto()), WireFormat::Delta);
    }

    #[test]
    fn dense_set_picks_a_bitmap_family() {
        // Every other slot of a small span: density 1/2 ≫ 1/64.
        let payload: Vec<Vert> = (0..512).map(|i| 10_000 + 2 * i).collect();
        let f = roundtrip(&payload, &WirePolicy::auto());
        assert!(matches!(f, WireFormat::Bitmap | WireFormat::Rle), "{f:?}");
    }

    #[test]
    fn clustered_runs_pick_rle() {
        // A few long runs with huge gaps: RLE beats the fixed bitmap.
        let mut payload = Vec::new();
        for base in [0u64, 1 << 20, 1 << 30] {
            payload.extend(base..base + 200);
        }
        // Force the bitmap family; the chooser must take RLE (the fixed
        // bitmap would span 2^30 slots).
        assert_eq!(
            roundtrip(&payload, &WirePolicy::with_mode(WireMode::Bitmap)),
            WireFormat::Rle
        );
    }

    #[test]
    fn unsorted_payload_falls_back_to_raw() {
        let payload = vec![5, 3, 9, 1];
        for mode in [WireMode::Auto, WireMode::Delta, WireMode::Bitmap] {
            assert_eq!(
                roundtrip(&payload, &WirePolicy::with_mode(mode)),
                WireFormat::Raw
            );
        }
    }

    #[test]
    fn duplicates_survive_delta_but_not_bitmaps() {
        let payload = vec![4, 4, 7, 7, 7, 9];
        assert_eq!(roundtrip(&payload, &WirePolicy::auto()), WireFormat::Delta);
        assert_eq!(
            roundtrip(&payload, &WirePolicy::with_mode(WireMode::Bitmap)),
            WireFormat::Delta
        );
    }

    #[test]
    fn auto_never_exceeds_raw_frame() {
        let adversarial: Vec<Vec<Vert>> = vec![
            vec![],
            vec![u64::MAX],
            vec![0, u64::MAX],
            (0..64).map(|i| i * (1 << 50)).collect(),
            vec![9, 8, 7],
        ];
        for payload in &adversarial {
            let m = measure(payload, &WirePolicy::auto());
            assert!(
                m.wire_bytes <= payload.len() as u64 * VERT_BYTES + HEADER_BOUND,
                "{payload:?} -> {m:?}"
            );
        }
    }

    #[test]
    fn raw_mode_measures_logical_bytes_unframed() {
        let payload = vec![1, 2, 3];
        let m = measure(&payload, &WirePolicy::raw());
        assert_eq!(m.wire_bytes, 24);
        assert_eq!(m.logical_bytes, 24);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u64::MAX >> 1, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert_eq!(buf.len() as u64, varint_len(v), "v={v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[9, 0]), None); // bad tag
        assert_eq!(decode(&[0, 2, 1, 0, 0, 0, 0, 0, 0, 0]), None); // short
        let mut frame = encode(&[1, 2, 3], &WirePolicy::auto());
        frame.push(0); // trailing garbage
        assert_eq!(decode(&frame), None);
    }

    #[test]
    fn compression_pays_on_bfs_shaped_payloads() {
        // Contiguous owner-block destinations, the fold-message shape.
        let payload: Vec<Vert> = (50_000..58_000).filter(|v| v % 3 != 0).collect();
        let m = measure(&payload, &WirePolicy::auto());
        assert!(
            m.wire_bytes * 4 <= m.logical_bytes,
            "expected >=4x on dense sorted payloads, got {} vs {}",
            m.wire_bytes,
            m.logical_bytes
        );
    }
}
