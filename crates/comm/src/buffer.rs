//! Fixed-length message buffers (paper §3.1).
//!
//! "A major factor limiting the scalability of our distributed BFS
//! algorithm is the fact that the length of message buffers used in
//! all-to-all collective communications grows as the number of processors
//! increases. A key to overcoming this limitation is to use message
//! buffers of fixed length."
//!
//! [`ChunkPolicy`] captures that choice: a payload of `L` vertices is
//! transmitted as `ceil(L / capacity)` fixed-capacity chunks, each paying
//! the per-message software overhead. The simulator uses the policy both
//! for cost accounting and to report the **peak buffer size** a run would
//! need — the quantity whose P-independence the paper's §3.1 analysis
//! establishes.

use crate::{Vert, VERT_BYTES};
use serde::{Deserialize, Serialize};

/// How payloads are broken into wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChunkPolicy {
    /// One message per payload, however large (the naive all-to-all
    /// buffer the paper replaces).
    #[default]
    Unbounded,
    /// Fixed-capacity buffers of `capacity` vertices per message.
    Fixed {
        /// Maximum number of vertex indices per wire message.
        capacity: usize,
    },
}

impl ChunkPolicy {
    /// A fixed policy sized in vertices.
    pub fn fixed(capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        ChunkPolicy::Fixed { capacity }
    }

    /// Number of wire messages needed for a payload of `len` vertices.
    /// An empty payload still costs one (empty) message when the protocol
    /// requires an explicit "nothing for you" notification; callers that
    /// skip empty sends should not call this with `len == 0`.
    pub fn message_count(&self, len: usize) -> usize {
        match self {
            ChunkPolicy::Unbounded => 1,
            ChunkPolicy::Fixed { capacity } => len.div_ceil(*capacity).max(1),
        }
    }

    /// Size in vertices of the largest single wire message for a payload
    /// of `len` vertices.
    pub fn peak_message_len(&self, len: usize) -> usize {
        match self {
            ChunkPolicy::Unbounded => len,
            ChunkPolicy::Fixed { capacity } => len.min(*capacity),
        }
    }

    /// Buffer bytes for the largest single wire message.
    pub fn peak_message_bytes(&self, len: usize) -> u64 {
        self.peak_message_len(len) as u64 * VERT_BYTES
    }

    /// Split a payload into chunks under this policy (used by the
    /// threaded runtime, which sends real messages).
    pub fn split(&self, payload: Vec<Vert>) -> Vec<Vec<Vert>> {
        match self {
            ChunkPolicy::Unbounded => vec![payload],
            ChunkPolicy::Fixed { capacity } => {
                if payload.len() <= *capacity {
                    return vec![payload];
                }
                payload.chunks(*capacity).map(|c| c.to_vec()).collect()
            }
        }
    }
}

/// Retained scratch vectors above this count are dropped instead of
/// pooled, bounding idle pool memory.
const POOL_MAX_RETAINED: usize = 64;

/// A pool of reusable `Vec<Vert>` scratch buffers.
///
/// The collectives previously allocated a fresh merge/inbox vector per
/// ring step per level; the pool hands allocations back out instead, so
/// steady-state supersteps run allocation-free. Purely a host-side
/// optimization: pooling never touches modelled time.
#[derive(Debug, Clone, Default)]
pub struct ScratchPool {
    free: Vec<Vec<Vert>>,
    reuses: u64,
    high_water_verts: u64,
}

impl ScratchPool {
    /// A new, empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer from the pool (or allocate a fresh one).
    pub fn take(&mut self) -> Vec<Vert> {
        match self.free.pop() {
            Some(v) => {
                self.reuses += 1;
                v
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer to the pool for reuse. Its capacity counts
    /// toward the pool's high-water mark.
    pub fn put(&mut self, mut v: Vec<Vert>) {
        v.clear();
        if v.capacity() == 0 || self.free.len() >= POOL_MAX_RETAINED {
            return;
        }
        self.free.push(v);
        let retained: u64 = self.free.iter().map(|b| b.capacity() as u64).sum();
        self.high_water_verts = self.high_water_verts.max(retained);
    }

    /// Times a pooled buffer was handed back out instead of allocated.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Peak total capacity (in vertices) retained by the pool.
    pub fn high_water_verts(&self) -> u64 {
        self.high_water_verts
    }

    /// Forget all retained buffers and counters.
    pub fn reset(&mut self) {
        self.free.clear();
        self.reuses = 0;
        self.high_water_verts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_capacity() {
        let mut pool = ScratchPool::new();
        let mut v = pool.take();
        assert_eq!(pool.reuses(), 0);
        v.extend_from_slice(&[1, 2, 3, 4]);
        let cap = v.capacity();
        pool.put(v);
        assert!(pool.high_water_verts() >= 4);
        let v2 = pool.take();
        assert_eq!(pool.reuses(), 1);
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
    }

    #[test]
    fn pool_drops_capacityless_buffers() {
        let mut pool = ScratchPool::new();
        pool.put(Vec::new());
        assert_eq!(pool.take().capacity(), 0);
        assert_eq!(pool.reuses(), 0);
    }

    #[test]
    fn pool_reset_clears_state() {
        let mut pool = ScratchPool::new();
        pool.put(vec![1, 2, 3]);
        let _ = pool.take();
        pool.reset();
        assert_eq!(pool.reuses(), 0);
        assert_eq!(pool.high_water_verts(), 0);
    }

    #[test]
    fn unbounded_is_single_message() {
        let p = ChunkPolicy::Unbounded;
        assert_eq!(p.message_count(0), 1);
        assert_eq!(p.message_count(1_000_000), 1);
        assert_eq!(p.peak_message_len(12345), 12345);
    }

    #[test]
    fn fixed_chunk_counts() {
        let p = ChunkPolicy::fixed(100);
        assert_eq!(p.message_count(1), 1);
        assert_eq!(p.message_count(100), 1);
        assert_eq!(p.message_count(101), 2);
        assert_eq!(p.message_count(1000), 10);
        assert_eq!(p.peak_message_len(42), 42);
        assert_eq!(p.peak_message_len(4200), 100);
    }

    #[test]
    fn split_roundtrip() {
        let p = ChunkPolicy::fixed(3);
        let chunks = p.split(vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() <= 3));
        let rejoined: Vec<Vert> = chunks.into_iter().flatten().collect();
        assert_eq!(rejoined, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn peak_bytes() {
        let p = ChunkPolicy::fixed(16);
        assert_eq!(p.peak_message_bytes(1000), 16 * VERT_BYTES);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        ChunkPolicy::fixed(0);
    }
}
