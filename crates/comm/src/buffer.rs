//! Fixed-length message buffers (paper §3.1).
//!
//! "A major factor limiting the scalability of our distributed BFS
//! algorithm is the fact that the length of message buffers used in
//! all-to-all collective communications grows as the number of processors
//! increases. A key to overcoming this limitation is to use message
//! buffers of fixed length."
//!
//! [`ChunkPolicy`] captures that choice: a payload of `L` vertices is
//! transmitted as `ceil(L / capacity)` fixed-capacity chunks, each paying
//! the per-message software overhead. The simulator uses the policy both
//! for cost accounting and to report the **peak buffer size** a run would
//! need — the quantity whose P-independence the paper's §3.1 analysis
//! establishes.

use crate::{Vert, VERT_BYTES};
use serde::{Deserialize, Serialize};

/// How payloads are broken into wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChunkPolicy {
    /// One message per payload, however large (the naive all-to-all
    /// buffer the paper replaces).
    #[default]
    Unbounded,
    /// Fixed-capacity buffers of `capacity` vertices per message.
    Fixed {
        /// Maximum number of vertex indices per wire message.
        capacity: usize,
    },
}

impl ChunkPolicy {
    /// A fixed policy sized in vertices.
    pub fn fixed(capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        ChunkPolicy::Fixed { capacity }
    }

    /// Number of wire messages needed for a payload of `len` vertices.
    /// An empty payload still costs one (empty) message when the protocol
    /// requires an explicit "nothing for you" notification; callers that
    /// skip empty sends should not call this with `len == 0`.
    pub fn message_count(&self, len: usize) -> usize {
        match self {
            ChunkPolicy::Unbounded => 1,
            ChunkPolicy::Fixed { capacity } => len.div_ceil(*capacity).max(1),
        }
    }

    /// Size in vertices of the largest single wire message for a payload
    /// of `len` vertices.
    pub fn peak_message_len(&self, len: usize) -> usize {
        match self {
            ChunkPolicy::Unbounded => len,
            ChunkPolicy::Fixed { capacity } => len.min(*capacity),
        }
    }

    /// Buffer bytes for the largest single wire message.
    pub fn peak_message_bytes(&self, len: usize) -> u64 {
        self.peak_message_len(len) as u64 * VERT_BYTES
    }

    /// Split a payload into chunks under this policy (used by the
    /// threaded runtime, which sends real messages).
    pub fn split(&self, payload: Vec<Vert>) -> Vec<Vec<Vert>> {
        match self {
            ChunkPolicy::Unbounded => vec![payload],
            ChunkPolicy::Fixed { capacity } => {
                if payload.len() <= *capacity {
                    return vec![payload];
                }
                payload.chunks(*capacity).map(|c| c.to_vec()).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_is_single_message() {
        let p = ChunkPolicy::Unbounded;
        assert_eq!(p.message_count(0), 1);
        assert_eq!(p.message_count(1_000_000), 1);
        assert_eq!(p.peak_message_len(12345), 12345);
    }

    #[test]
    fn fixed_chunk_counts() {
        let p = ChunkPolicy::fixed(100);
        assert_eq!(p.message_count(1), 1);
        assert_eq!(p.message_count(100), 1);
        assert_eq!(p.message_count(101), 2);
        assert_eq!(p.message_count(1000), 10);
        assert_eq!(p.peak_message_len(42), 42);
        assert_eq!(p.peak_message_len(4200), 100);
    }

    #[test]
    fn split_roundtrip() {
        let p = ChunkPolicy::fixed(3);
        let chunks = p.split(vec![1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|c| c.len() <= 3));
        let rejoined: Vec<Vert> = chunks.into_iter().flatten().collect();
        assert_eq!(rejoined, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn peak_bytes() {
        let p = ChunkPolicy::fixed(16);
        assert_eq!(p.peak_message_bytes(1000), 16 * VERT_BYTES);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        ChunkPolicy::fixed(0);
    }
}
