//! Communication accounting.
//!
//! Everything the paper's evaluation section measures about messages is
//! recorded here, by the engine rather than by the algorithm, so that
//! different fold/expand strategies are compared fairly:
//!
//! * vertices sent and received per operation class (expand vs fold —
//!   Table 1's "Avg. Message Length per Level" columns),
//! * wire-level receptions per rank (ring algorithms forward messages,
//!   and the paper counts every reception — see the Figure 7 discussion),
//! * duplicates eliminated by union reductions per rank (numerator of the
//!   Figure 7 *redundancy ratio*),
//! * message counts and the peak single-message buffer size (§3.1).

use serde::{Deserialize, Serialize};

/// Which logical BFS operation a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Frontier propagation down a processor-column (paper steps 7–11).
    Expand,
    /// Neighbor delivery across a processor-row (paper steps 13–18).
    Fold,
    /// Everything else (termination detection, meet detection, ...).
    Control,
}

impl OpClass {
    /// Stable index for array-backed per-class storage.
    pub fn index(self) -> usize {
        match self {
            OpClass::Expand => 0,
            OpClass::Fold => 1,
            OpClass::Control => 2,
        }
    }

    /// All classes, in index order.
    pub const ALL: [OpClass; 3] = [OpClass::Expand, OpClass::Fold, OpClass::Control];
}

/// Counters for one operation class.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Wire messages sent (after chunking).
    pub messages: u64,
    /// Vertices placed on the wire (each forwarding hop of a ring
    /// algorithm counts again — this is transit volume).
    pub wire_verts: u64,
    /// Vertices received at final destinations (payload-level volume; a
    /// vertex forwarded through a ring counts once per reception, matching
    /// the paper's "total number of vertices received by a processor").
    pub received_verts: u64,
    /// Uncompressed payload volume in bytes (`wire_verts × 8`,
    /// excluding self-sends).
    #[serde(default)]
    pub logical_bytes: u64,
    /// Bytes actually placed on the wire after the codec (equals
    /// `logical_bytes` with the codec off).
    #[serde(default)]
    pub wire_bytes: u64,
}

impl ClassStats {
    fn merge(&mut self, o: &ClassStats) {
        self.messages += o.messages;
        self.wire_verts += o.wire_verts;
        self.received_verts += o.received_verts;
        self.logical_bytes += o.logical_bytes;
        self.wire_bytes += o.wire_bytes;
    }

    fn minus(&self, o: &ClassStats) -> ClassStats {
        ClassStats {
            messages: self.messages - o.messages,
            wire_verts: self.wire_verts - o.wire_verts,
            received_verts: self.received_verts - o.received_verts,
            logical_bytes: self.logical_bytes - o.logical_bytes,
            wire_bytes: self.wire_bytes - o.wire_bytes,
        }
    }
}

/// Counters for injected faults and the protocol work they caused.
///
/// All-zero for fault-free runs (and for runs under `FaultPlan::none()`),
/// so adding these fields never perturbs the fault-free statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Delivery attempts lost in transit (sender retried after an ack
    /// timeout).
    pub drops_injected: u64,
    /// Delivery attempts that arrived truncated (receiver rejected the
    /// short payload; the garbled bytes did transit the wire).
    pub truncations_injected: u64,
    /// Spurious duplicate deliveries (detected and discarded by the
    /// receiver's sequence check).
    pub duplicates_injected: u64,
    /// Retransmissions performed (failed attempts that were retried).
    pub retransmissions: u64,
    /// Extra hops taken by routes detouring around dead links/nodes,
    /// summed over messages.
    pub detour_hops: u64,
    /// Rank-death recoveries completed (checkpoint restore + replay).
    pub recoveries: u64,
}

impl FaultStats {
    /// Whether any fault was observed.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    fn merge(&mut self, o: &FaultStats) {
        self.drops_injected += o.drops_injected;
        self.truncations_injected += o.truncations_injected;
        self.duplicates_injected += o.duplicates_injected;
        self.retransmissions += o.retransmissions;
        self.detour_hops += o.detour_hops;
        self.recoveries += o.recoveries;
    }

    fn minus(&self, o: &FaultStats) -> FaultStats {
        FaultStats {
            drops_injected: self.drops_injected - o.drops_injected,
            truncations_injected: self.truncations_injected - o.truncations_injected,
            duplicates_injected: self.duplicates_injected - o.duplicates_injected,
            retransmissions: self.retransmissions - o.retransmissions,
            detour_hops: self.detour_hops - o.detour_hops,
            recoveries: self.recoveries - o.recoveries,
        }
    }
}

/// Counters for the hybrid vertex-set kernels and the scratch-buffer
/// pool (host-side representation choices; all zero when the hybrid
/// layer is disabled).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetOpStats {
    /// Union operations executed on the sorted-list representation.
    pub list_unions: u64,
    /// Union operations executed on the bitmap representation
    /// (word-wise OR).
    pub bitmap_unions: u64,
    /// List → bitmap representation switches (density threshold
    /// crossings).
    pub densify_switches: u64,
    /// Peak total capacity (vertices) retained by the scratch-buffer
    /// pool.
    pub pool_high_water_verts: u64,
    /// Times a pooled scratch buffer was reused instead of allocated.
    pub pool_reuses: u64,
}

impl SetOpStats {
    fn merge(&mut self, o: &SetOpStats) {
        self.list_unions += o.list_unions;
        self.bitmap_unions += o.bitmap_unions;
        self.densify_switches += o.densify_switches;
        self.pool_high_water_verts = self.pool_high_water_verts.max(o.pool_high_water_verts);
        self.pool_reuses += o.pool_reuses;
    }

    fn minus(&self, o: &SetOpStats) -> SetOpStats {
        SetOpStats {
            list_unions: self.list_unions - o.list_unions,
            bitmap_unions: self.bitmap_unions - o.bitmap_unions,
            densify_switches: self.densify_switches - o.densify_switches,
            // High-water is a running max, not a counter.
            pool_high_water_verts: self.pool_high_water_verts,
            pool_reuses: self.pool_reuses - o.pool_reuses,
        }
    }
}

/// Cumulative communication statistics for a world of `p` ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    per_class: [ClassStats; 3],
    /// Vertices received per rank (wire-level receptions).
    pub received_per_rank: Vec<u64>,
    /// Duplicate vertices eliminated by union reductions, per rank
    /// (counted at the rank that performed the union).
    pub dups_eliminated_per_rank: Vec<u64>,
    /// Largest single wire message observed, in vertices (§3.1 peak
    /// buffer requirement).
    pub peak_buffer_verts: usize,
    /// Injected-fault counters (all zero on fault-free runs).
    pub faults: FaultStats,
    /// Hybrid set-kernel and scratch-pool counters.
    #[serde(default)]
    pub setops: SetOpStats,
}

impl CommStats {
    /// Fresh zeroed statistics for `p` ranks.
    pub fn new(p: usize) -> Self {
        Self {
            per_class: [ClassStats::default(); 3],
            received_per_rank: vec![0; p],
            dups_eliminated_per_rank: vec![0; p],
            peak_buffer_verts: 0,
            faults: FaultStats::default(),
            setops: SetOpStats::default(),
        }
    }

    /// Number of ranks this accounting covers.
    pub fn ranks(&self) -> usize {
        self.received_per_rank.len()
    }

    /// Counters for one class.
    pub fn class(&self, c: OpClass) -> &ClassStats {
        &self.per_class[c.index()]
    }

    /// Record one wire message of `verts` vertices to `dst`.
    pub fn note_message(&mut self, class: OpClass, dst: usize, verts: usize, chunks: u64) {
        let cs = &mut self.per_class[class.index()];
        cs.messages += chunks;
        cs.wire_verts += verts as u64;
        cs.received_verts += verts as u64;
        self.received_per_rank[dst] += verts as u64;
    }

    /// Record one message's codec outcome: `logical` payload bytes
    /// carried as `wire` bytes on the physical links.
    pub fn note_wire_bytes(&mut self, class: OpClass, logical: u64, wire: u64) {
        let cs = &mut self.per_class[class.index()];
        cs.logical_bytes += logical;
        cs.wire_bytes += wire;
    }

    /// Uncompressed payload bytes across all classes.
    pub fn total_logical_bytes(&self) -> u64 {
        self.per_class.iter().map(|c| c.logical_bytes).sum()
    }

    /// Post-codec bytes across all classes.
    pub fn total_wire_bytes(&self) -> u64 {
        self.per_class.iter().map(|c| c.wire_bytes).sum()
    }

    /// Compression ratio `logical / wire` (1.0 when nothing was sent or
    /// the codec is off and sizes match).
    pub fn compression_ratio(&self) -> f64 {
        let wire = self.total_wire_bytes();
        if wire == 0 {
            1.0
        } else {
            self.total_logical_bytes() as f64 / wire as f64
        }
    }

    /// Record the size of a single wire message (after chunking) so the
    /// peak buffer requirement can be reported.
    pub fn note_peak(&mut self, verts: usize) {
        self.peak_buffer_verts = self.peak_buffer_verts.max(verts);
    }

    /// Record `n` duplicates eliminated by a union performed at `rank`.
    pub fn note_dups(&mut self, rank: usize, n: usize) {
        self.dups_eliminated_per_rank[rank] += n as u64;
    }

    /// Record one union, tagged with the representation that served it.
    pub fn note_union(&mut self, bitmap: bool) {
        if bitmap {
            self.setops.bitmap_unions += 1;
        } else {
            self.setops.list_unions += 1;
        }
    }

    /// Record a list → bitmap representation switch.
    pub fn note_densify(&mut self) {
        self.setops.densify_switches += 1;
    }

    /// Total vertices received across all ranks.
    pub fn total_received(&self) -> u64 {
        self.received_per_rank.iter().sum()
    }

    /// Total duplicates eliminated across all ranks.
    pub fn total_dups_eliminated(&self) -> u64 {
        self.dups_eliminated_per_rank.iter().sum()
    }

    /// The Figure 7 redundancy ratio, in percent: duplicates eliminated
    /// by union operations divided by total vertices received. Duplicates
    /// are removed *before* transmission, so the ratio is computed
    /// against what would have been received without elimination.
    pub fn redundancy_ratio_percent(&self) -> f64 {
        let dups = self.total_dups_eliminated() as f64;
        let recv = self.total_received() as f64;
        if dups + recv == 0.0 {
            0.0
        } else {
            100.0 * dups / (dups + recv)
        }
    }

    /// Merge another accounting (same rank count) into this one.
    pub fn merge(&mut self, o: &CommStats) {
        assert_eq!(self.ranks(), o.ranks());
        for i in 0..3 {
            self.per_class[i].merge(&o.per_class[i]);
        }
        for (a, b) in self.received_per_rank.iter_mut().zip(&o.received_per_rank) {
            *a += b;
        }
        for (a, b) in self
            .dups_eliminated_per_rank
            .iter_mut()
            .zip(&o.dups_eliminated_per_rank)
        {
            *a += b;
        }
        self.peak_buffer_verts = self.peak_buffer_verts.max(o.peak_buffer_verts);
        self.faults.merge(&o.faults);
        self.setops.merge(&o.setops);
    }

    /// Counter-wise difference `self - earlier` (both cumulative
    /// snapshots of the same world). Peak buffer is carried from `self`.
    pub fn minus(&self, earlier: &CommStats) -> CommStats {
        assert_eq!(self.ranks(), earlier.ranks());
        CommStats {
            per_class: [
                self.per_class[0].minus(&earlier.per_class[0]),
                self.per_class[1].minus(&earlier.per_class[1]),
                self.per_class[2].minus(&earlier.per_class[2]),
            ],
            received_per_rank: self
                .received_per_rank
                .iter()
                .zip(&earlier.received_per_rank)
                .map(|(a, b)| a - b)
                .collect(),
            dups_eliminated_per_rank: self
                .dups_eliminated_per_rank
                .iter()
                .zip(&earlier.dups_eliminated_per_rank)
                .map(|(a, b)| a - b)
                .collect(),
            peak_buffer_verts: self.peak_buffer_verts,
            faults: self.faults.minus(&earlier.faults),
            setops: self.setops.minus(&earlier.setops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_message_updates_all_counters() {
        let mut s = CommStats::new(4);
        s.note_message(OpClass::Fold, 2, 100, 1);
        s.note_message(OpClass::Fold, 2, 50, 2);
        s.note_message(OpClass::Expand, 0, 10, 1);
        s.note_peak(100);
        s.note_peak(50);
        assert_eq!(s.class(OpClass::Fold).messages, 3);
        assert_eq!(s.class(OpClass::Fold).wire_verts, 150);
        assert_eq!(s.received_per_rank[2], 150);
        assert_eq!(s.received_per_rank[0], 10);
        assert_eq!(s.peak_buffer_verts, 100);
        assert_eq!(s.total_received(), 160);
    }

    #[test]
    fn redundancy_ratio() {
        let mut s = CommStats::new(2);
        s.note_message(OpClass::Fold, 0, 80, 1);
        s.note_dups(0, 20);
        // 20 eliminated out of 100 that would have arrived.
        assert!((s.redundancy_ratio_percent() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn redundancy_ratio_empty_is_zero() {
        assert_eq!(CommStats::new(3).redundancy_ratio_percent(), 0.0);
    }

    #[test]
    fn minus_gives_per_window_counts() {
        let mut s = CommStats::new(2);
        s.note_message(OpClass::Expand, 1, 10, 1);
        let snap = s.clone();
        s.note_message(OpClass::Expand, 1, 30, 1);
        let d = s.minus(&snap);
        assert_eq!(d.class(OpClass::Expand).received_verts, 30);
        assert_eq!(d.received_per_rank[1], 30);
    }

    #[test]
    fn fault_counters_merge_and_subtract() {
        let mut s = CommStats::new(2);
        assert!(!s.faults.any(), "fresh stats carry no faults");
        s.faults.drops_injected = 4;
        s.faults.retransmissions = 5;
        let snap = s.clone();
        s.faults.drops_injected += 2;
        s.faults.recoveries += 1;
        let d = s.minus(&snap);
        assert_eq!(d.faults.drops_injected, 2);
        assert_eq!(d.faults.recoveries, 1);
        assert_eq!(d.faults.retransmissions, 0);
        let mut a = CommStats::new(2);
        a.merge(&s);
        assert_eq!(a.faults.drops_injected, 6);
        assert!(a.faults.any());
    }

    #[test]
    fn wire_byte_counters_track_compression() {
        let mut s = CommStats::new(2);
        assert_eq!(s.compression_ratio(), 1.0);
        s.note_wire_bytes(OpClass::Fold, 800, 200);
        s.note_wire_bytes(OpClass::Expand, 200, 300);
        assert_eq!(s.total_logical_bytes(), 1000);
        assert_eq!(s.total_wire_bytes(), 500);
        assert!((s.compression_ratio() - 2.0).abs() < 1e-12);
        let snap = s.clone();
        s.note_wire_bytes(OpClass::Fold, 100, 50);
        let d = s.minus(&snap);
        assert_eq!(d.class(OpClass::Fold).logical_bytes, 100);
        assert_eq!(d.class(OpClass::Fold).wire_bytes, 50);
        let mut m = CommStats::new(2);
        m.merge(&s);
        assert_eq!(m.total_wire_bytes(), 550);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CommStats::new(2);
        let mut b = CommStats::new(2);
        a.note_message(OpClass::Control, 0, 5, 1);
        b.note_message(OpClass::Control, 1, 7, 1);
        b.note_dups(1, 3);
        a.merge(&b);
        assert_eq!(a.total_received(), 12);
        assert_eq!(a.total_dups_eliminated(), 3);
    }
}
