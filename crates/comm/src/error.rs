//! Typed communication errors.
//!
//! The seed implementation treated every abnormal condition in the
//! message-passing substrate as a programming error (`panic!`,
//! `assert!`, indefinite blocking). Under fault injection those
//! conditions are *operating conditions*: a rank can die mid-round, a
//! retransmission budget can run out, dead links can disconnect a pair
//! of nodes. Public communication APIs therefore return [`CommError`]
//! so the BFS layer can distinguish recoverable faults (trigger
//! checkpoint recovery) from unrecoverable ones (surface to the caller).

use std::fmt;

/// Why a communication operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// A rank stopped participating (scheduled death from a
    /// `FaultPlan`, or a peer that hung up). Level-synchronous recovery
    /// in `bfs-core` catches this, revives the rank from its buddy
    /// checkpoint, and replays.
    RankDead {
        /// The rank that is no longer responding.
        rank: usize,
    },
    /// A message exhausted its retransmission budget without one intact
    /// delivery (every attempt dropped or truncated).
    Unreachable {
        /// Sending rank.
        from: usize,
        /// Destination rank.
        to: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Dead links/nodes disconnect the physical route between two ranks.
    NoRoute {
        /// Sending rank.
        from: usize,
        /// Destination rank.
        to: usize,
    },
    /// A send named a destination outside `0..p`.
    DestinationOutOfRange {
        /// The offending destination.
        dest: usize,
        /// World size.
        p: usize,
    },
    /// The modelled machine has fewer nodes than the grid has ranks.
    MachineTooSmall {
        /// Ranks requested.
        ranks: usize,
        /// Nodes available.
        nodes: usize,
    },
    /// A receive deadline expired without the expected traffic and no
    /// dead rank could be identified (threaded runtime only).
    Timeout {
        /// The rank that timed out waiting.
        rank: usize,
        /// The exchange round it was waiting on.
        round: u64,
    },
    /// Checkpoint recovery for a dead rank gave up: every bounded
    /// retry of the recovery exchange failed (the recovery channel is
    /// itself faulty) and degraded-mode fallback was disabled or also
    /// impossible.
    RecoveryFailed {
        /// The rank that could not be reconstructed.
        rank: usize,
        /// Recovery-exchange attempts made before giving up.
        attempts: u32,
    },
    /// A configuration value fails validation before the run starts
    /// (e.g. a zero checkpoint interval or a parity group of one).
    InvalidConfig {
        /// What was wrong, in plain words.
        reason: &'static str,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CommError::RankDead { rank } => write!(f, "rank {rank} is dead"),
            CommError::Unreachable { from, to, attempts } => write!(
                f,
                "message {from} -> {to} undeliverable after {attempts} attempts"
            ),
            CommError::NoRoute { from, to } => {
                write!(f, "dead links disconnect ranks {from} and {to}")
            }
            CommError::DestinationOutOfRange { dest, p } => {
                write!(f, "destination {dest} out of range for {p} ranks")
            }
            CommError::MachineTooSmall { ranks, nodes } => write!(
                f,
                "machine has {nodes} nodes but the grid needs {ranks} ranks"
            ),
            CommError::Timeout { rank, round } => {
                write!(f, "rank {rank} timed out waiting on round {round}")
            }
            CommError::RecoveryFailed { rank, attempts } => write!(
                f,
                "recovery of rank {rank} failed after {attempts} attempts"
            ),
            CommError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(CommError, &str)> = vec![
            (CommError::RankDead { rank: 3 }, "rank 3"),
            (
                CommError::Unreachable {
                    from: 1,
                    to: 2,
                    attempts: 16,
                },
                "16 attempts",
            ),
            (CommError::NoRoute { from: 0, to: 5 }, "disconnect"),
            (
                CommError::DestinationOutOfRange { dest: 9, p: 4 },
                "out of range",
            ),
            (
                CommError::MachineTooSmall {
                    ranks: 64,
                    nodes: 8,
                },
                "64 ranks",
            ),
            (CommError::Timeout { rank: 2, round: 7 }, "round 7"),
            (
                CommError::RecoveryFailed {
                    rank: 5,
                    attempts: 3,
                },
                "after 3 attempts",
            ),
            (
                CommError::InvalidConfig {
                    reason: "checkpoint_every must be nonzero",
                },
                "nonzero",
            ),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }
}
