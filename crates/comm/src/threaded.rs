//! Real multi-threaded SPMD runtime.
//!
//! One OS thread per rank, communicating through crossbeam channels.
//! This runtime executes the *same* per-rank BFS logic as the superstep
//! simulator, but with genuine concurrency — it exists to demonstrate the
//! algorithms on a real parallel substrate and to validate that the
//! simulator's message routing is faithful (integration tests assert
//! identical BFS results from both engines).
//!
//! The communication primitive is a bulk-synchronous `exchange`: each
//! round, every rank posts at most one packet to every other rank and
//! then collects exactly one packet from every other rank. Rounds are
//! tagged so fast senders can run ahead without corrupting slow
//! receivers' views. No cost model applies here — wall-clock time is
//! real.

// Parallel index loops over per-rank arrays are intentional here.
#![allow(clippy::needless_range_loop)]

use crate::topology::ProcessorGrid;
use crate::Vert;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;

/// A packet between ranks: all payloads `from` has for the receiver in
/// one round.
struct Packet {
    round: u64,
    from: usize,
    payloads: Vec<Vec<Vert>>,
}

/// Handle used inside a rank's closure to communicate.
pub struct RankCtx {
    rank: usize,
    grid: ProcessorGrid,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    round: u64,
    /// Packets that arrived early for future rounds.
    stash: HashMap<u64, Vec<Packet>>,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The processor grid.
    pub fn grid(&self) -> ProcessorGrid {
        self.grid
    }

    /// One bulk-synchronous message round. `sends` lists `(dest,
    /// payload)` pairs (multiple payloads to one destination are
    /// allowed). Returns every non-empty payload addressed to this rank,
    /// as `(from, payload)` sorted by sender. Acts as a world barrier.
    pub fn exchange(&mut self, sends: Vec<(usize, Vec<Vert>)>) -> Vec<(usize, Vec<Vert>)> {
        let p = self.grid.len();
        let round = self.round;
        self.round += 1;

        // Aggregate per destination.
        let mut per_dest: Vec<Vec<Vec<Vert>>> = vec![Vec::new(); p];
        let mut self_payloads = Vec::new();
        for (dest, payload) in sends {
            assert!(dest < p, "destination {dest} out of range");
            if dest == self.rank {
                if !payload.is_empty() {
                    self_payloads.push(payload);
                }
            } else {
                per_dest[dest].push(payload);
            }
        }
        // Post exactly one packet to every peer (possibly empty): this is
        // what lets receivers detect round completion.
        for dest in 0..p {
            if dest == self.rank {
                continue;
            }
            let payloads = std::mem::take(&mut per_dest[dest]);
            // Receiver side drops empties; keep the packet as the round marker.
            let _ = self.senders[dest].send(Packet {
                round,
                from: self.rank,
                payloads,
            });
        }

        // Collect one packet per peer for this round.
        let mut got: Vec<Packet> = self.stash.remove(&round).unwrap_or_default();
        while got.len() < p - 1 {
            let pkt = self
                .receiver
                .recv()
                .expect("peer thread hung up mid-round");
            if pkt.round == round {
                got.push(pkt);
            } else {
                debug_assert!(pkt.round > round, "stale packet from a past round");
                self.stash.entry(pkt.round).or_default().push(pkt);
            }
        }

        let mut out: Vec<(usize, Vec<Vert>)> = Vec::new();
        for payload in self_payloads {
            out.push((self.rank, payload));
        }
        for pkt in got {
            for payload in pkt.payloads {
                if !payload.is_empty() {
                    out.push((pkt.from, payload));
                }
            }
        }
        out.sort_by_key(|a| a.0);
        out
    }

    /// Global OR across all ranks (one exchange round).
    pub fn allreduce_or(&mut self, flag: bool) -> bool {
        self.allreduce_sum(flag as u64) > 0
    }

    /// Global sum across all ranks (one exchange round).
    pub fn allreduce_sum(&mut self, value: u64) -> u64 {
        let p = self.grid.len();
        let sends: Vec<(usize, Vec<Vert>)> =
            (0..p).filter(|&d| d != self.rank).map(|d| (d, vec![value + 1])).collect();
        let got = self.exchange(sends);
        // +1 shift lets zero values survive the empty-payload filter.
        let mut total = value;
        for (_, payload) in got {
            total += payload[0] - 1;
        }
        total
    }

    /// Barrier: an exchange with no payloads.
    pub fn barrier(&mut self) {
        let _ = self.exchange(Vec::new());
    }
}

/// The threaded SPMD world: spawns one thread per rank and runs `body`
/// in each, returning the per-rank results in rank order.
pub struct ThreadedWorld;

impl ThreadedWorld {
    /// Run `body` on every rank of `grid` concurrently.
    pub fn run<F, T>(grid: ProcessorGrid, body: F) -> Vec<T>
    where
        F: Fn(&mut RankCtx) -> T + Sync,
        T: Send,
    {
        let p = grid.len();
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }

        let body = &body;
        let senders_ref = &senders;
        let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let mut ctx = RankCtx {
                        rank,
                        grid,
                        senders: senders_ref.to_vec(),
                        receiver,
                        round: 0,
                        stash: HashMap::new(),
                    };
                    body(&mut ctx)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });
        results.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_routes_payloads() {
        let grid = ProcessorGrid::new(2, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            // Every rank sends its id to rank 0.
            let sends = if ctx.rank() == 0 {
                Vec::new()
            } else {
                vec![(0, vec![ctx.rank() as Vert])]
            };
            ctx.exchange(sends)
        });
        assert_eq!(
            results[0],
            vec![(1, vec![1]), (2, vec![2]), (3, vec![3])]
        );
        assert!(results[1].is_empty());
    }

    #[test]
    fn self_sends_are_delivered() {
        let grid = ProcessorGrid::new(1, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            ctx.exchange(vec![(ctx.rank(), vec![42])])
        });
        for (rank, inbox) in results.iter().enumerate() {
            assert_eq!(inbox, &vec![(rank, vec![42])]);
        }
    }

    #[test]
    fn multiple_rounds_do_not_cross() {
        let grid = ProcessorGrid::new(1, 4);
        let results = ThreadedWorld::run(grid, |ctx| {
            let mut seen = Vec::new();
            for round in 0..10u64 {
                let next = (ctx.rank() + 1) % 4;
                let got = ctx.exchange(vec![(next, vec![round * 100 + ctx.rank() as u64])]);
                assert_eq!(got.len(), 1);
                seen.push(got[0].1[0]);
            }
            seen
        });
        let prev = 3usize; // rank 0's predecessor
        for (round, &v) in results[0].iter().enumerate() {
            assert_eq!(v, round as u64 * 100 + prev as u64);
        }
    }

    #[test]
    fn allreduce_sum_and_or() {
        let grid = ProcessorGrid::new(2, 3);
        let sums = ThreadedWorld::run(grid, |ctx| ctx.allreduce_sum(ctx.rank() as u64));
        assert!(sums.iter().all(|&s| s == 15));
        let ors = ThreadedWorld::run(grid, |ctx| ctx.allreduce_or(ctx.rank() == 3));
        assert!(ors.iter().all(|&o| o));
        let ors = ThreadedWorld::run(grid, |ctx| ctx.allreduce_or(false));
        assert!(ors.iter().all(|&o| !o));
    }

    #[test]
    fn allreduce_sum_of_zeros() {
        let grid = ProcessorGrid::new(1, 3);
        let sums = ThreadedWorld::run(grid, |ctx| {
            let _ = ctx.rank();
            ctx.allreduce_sum(0)
        });
        assert!(sums.iter().all(|&s| s == 0));
    }

    #[test]
    fn single_rank_world() {
        let grid = ProcessorGrid::new(1, 1);
        let results = ThreadedWorld::run(grid, |ctx| {
            ctx.barrier();
            ctx.allreduce_sum(7)
        });
        assert_eq!(results, vec![7]);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates_to_caller() {
        // Failure injection: a crashing rank must not hang the world —
        // the scoped join surfaces the panic.
        let grid = ProcessorGrid::new(1, 2);
        let _ = ThreadedWorld::run(grid, |ctx| {
            if ctx.rank() == 1 {
                panic!("injected rank failure");
            }
            // Rank 0 does not communicate, so it finishes regardless.
            ctx.rank()
        });
    }

    #[test]
    fn empty_payloads_filtered() {
        let grid = ProcessorGrid::new(1, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            let other = 1 - ctx.rank();
            ctx.exchange(vec![(other, Vec::new())])
        });
        assert!(results[0].is_empty());
        assert!(results[1].is_empty());
    }
}
