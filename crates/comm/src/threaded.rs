//! Real multi-threaded SPMD runtime.
//!
//! One OS thread per rank, communicating through `std::sync::mpsc`
//! channels. This runtime executes the *same* per-rank BFS logic as the
//! superstep simulator, but with genuine concurrency — it exists to
//! demonstrate the algorithms on a real parallel substrate and to
//! validate that the simulator's message routing is faithful
//! (integration tests assert identical BFS results from both engines).
//!
//! The communication primitive is a bulk-synchronous `exchange`: each
//! round, every rank posts at most one packet to every other rank and
//! then collects exactly one packet from every other rank. Rounds are
//! tagged so fast senders can run ahead without corrupting slow
//! receivers' views. No cost model applies here — wall-clock time is
//! real.
//!
//! A shared [`FaultPlan`] injects the *same* deterministic fault
//! schedule as the simulator: sender-side `delivery` decisions count
//! drops/truncations/duplicates/retransmissions per rank (payloads
//! still arrive — the ack/retransmit protocol eventually succeeds
//! unless the budget is exhausted), and scheduled rank deaths surface
//! as [`CommError::RankDead`] at the same data round in every rank.
//! Receives use bounded timeouts instead of indefinite blocking, so a
//! rank that stops participating yields a typed error, not a hang.

// Parallel index loops over per-rank arrays are intentional here.
#![allow(clippy::needless_range_loop)]

use crate::buffer::ScratchPool;
use crate::error::CommError;
use crate::stats::{FaultStats, OpClass};
use crate::topology::ProcessorGrid;
use crate::wire::{self, WirePolicy};
use crate::{Vert, VERT_BYTES};
use bgl_torus::FaultPlan;
use bgl_trace::{EventKind, OpKind, Phase, TraceBuffer, TraceDetail, TraceSink};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a rank waits on a round before giving up with
/// [`CommError::Timeout`]. Generous: only reached if a peer hangs
/// without flagging itself dead.
const EXCHANGE_DEADLINE: Duration = Duration::from_secs(5);

/// Poll tick while waiting: each expiry re-checks peer liveness flags.
const POLL_TICK: Duration = Duration::from_millis(2);

/// A packet between ranks: all payloads `from` has for the receiver in
/// one round.
struct Packet {
    round: u64,
    from: usize,
    body: Body,
}

/// What one packet carries. With the wire codec off (the default
/// [`WirePolicy::raw`]) vertex lists travel untouched, byte-identical
/// to a codec-free build. With a codec policy set, every payload is
/// encoded to a wire frame on the sending rank and decoded on the
/// receiving rank — the same frames the superstep simulator charges to
/// its cost model, so wire-byte accounting agrees across runtimes.
enum Body {
    Verts(Vec<Vec<Vert>>),
    Wire(Vec<Vec<u8>>),
}

/// Sender-side byte accounting for one op class on one rank: payload
/// bytes before the codec and frame bytes actually shipped. Summing
/// either counter over all ranks reproduces the simulator's per-class
/// world totals (self-sends are excluded on both sides).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireCount {
    /// Uncompressed payload bytes (vertex count × 8).
    pub logical_bytes: u64,
    /// Bytes placed on the wire (equals `logical_bytes` with the codec
    /// off).
    pub wire_bytes: u64,
}

/// Handle used inside a rank's closure to communicate.
pub struct RankCtx {
    rank: usize,
    grid: ProcessorGrid,
    senders: Vec<Sender<Packet>>,
    receiver: Receiver<Packet>,
    round: u64,
    /// Packets that arrived early for future rounds.
    stash: BTreeMap<u64, Vec<Packet>>,
    plan: Arc<FaultPlan>,
    /// Liveness flags shared by all ranks; a rank that dies (scheduled
    /// death or unrecoverable send) clears its own flag so peers stop
    /// waiting for its packets.
    alive: Arc<Vec<AtomicBool>>,
    /// Data-exchange round counter driving the fault schedule. Control
    /// traffic neither advances it nor suffers faults by default,
    /// mirroring the simulator (BlueGene/L's separate reliable tree
    /// network).
    data_round: u64,
    /// Opt control traffic in to the fault plan (see
    /// [`SimWorld::set_control_faultable`](crate::SimWorld::set_control_faultable)).
    control_faultable: bool,
    /// Separate round counter for faultable control exchanges, so the
    /// data-round fault schedule is never perturbed.
    control_round: u64,
    /// Faults this rank injected on its sends (sender-side accounting;
    /// summing over ranks matches the simulator's world totals).
    pub faults: FaultStats,
    /// Per-rank reusable wire-buffer arena: received payloads recycled
    /// by the rank body come back out of [`RankCtx::scratch_take`]
    /// instead of fresh allocations.
    scratch: ScratchPool,
    /// Wire-codec policy for outbound payloads (raw = codec off).
    wire_policy: WirePolicy,
    /// Per-class sender-side logical/wire byte counters, indexed by
    /// [`OpClass::index`].
    wire_counts: [WireCount; 3],
    /// Per-rank trace recorder (disabled by default; one word, no heap).
    trace: TraceSink,
    /// Wall-clock origin for trace timestamps: every rank's events are
    /// keyed to seconds since the world was spawned, so per-rank tracks
    /// share one timeline.
    epoch: Instant,
}

impl RankCtx {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The processor grid.
    pub fn grid(&self) -> ProcessorGrid {
        self.grid
    }

    /// The fault plan in effect.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Opt [`OpClass::Control`] traffic in to the fault plan, mirroring
    /// the simulator's faultable recovery channel. Control faults are
    /// hashed off a separate round counter, so the data schedule (and
    /// the sim/threaded schedule agreement) is untouched.
    pub fn set_control_faultable(&mut self, on: bool) {
        self.control_faultable = on;
    }

    /// Faultable control-exchange rounds performed so far.
    pub fn control_round(&self) -> u64 {
        self.control_round
    }

    /// Take a cleared payload buffer from this rank's scratch pool (a
    /// fresh allocation when the pool is empty).
    pub fn scratch_take(&mut self) -> Vec<Vert> {
        self.scratch.take()
    }

    /// Return a no-longer-needed payload buffer to the pool for reuse.
    pub fn scratch_put(&mut self, buf: Vec<Vert>) {
        self.scratch.put(buf);
    }

    /// How many buffer allocations the scratch pool has saved so far.
    pub fn scratch_reuses(&self) -> u64 {
        self.scratch.reuses()
    }

    /// Set the wire-codec policy for this rank's outbound payloads.
    /// Every rank must use the same policy or receivers would misparse
    /// frames; callers set it once at the top of the rank body.
    pub fn set_wire_policy(&mut self, policy: WirePolicy) {
        self.wire_policy = policy;
    }

    /// The wire-codec policy in effect.
    pub fn wire_policy(&self) -> WirePolicy {
        self.wire_policy
    }

    /// Sender-side byte accounting for `class` on this rank.
    pub fn wire_count(&self, class: OpClass) -> WireCount {
        self.wire_counts[class.index()]
    }

    /// Enable structured tracing on this rank. Events land in a
    /// single-track buffer; the caller merges per-rank buffers (see
    /// [`TraceBuffer::absorb_rank`]) after the world joins.
    pub fn enable_trace(&mut self, detail: TraceDetail) {
        self.trace = TraceSink::enabled(0, detail);
    }

    /// This rank's trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Seconds since the world was spawned (the trace clock). Only
    /// meaningful while tracing; returns 0.0 when the sink is disabled
    /// so disabled runs never touch the OS clock.
    pub fn trace_now(&self) -> f64 {
        if self.trace.is_enabled() {
            self.epoch.elapsed().as_secs_f64()
        } else {
            0.0
        }
    }

    /// Record a phase span `[t0, now]` on this rank's track.
    pub fn trace_span(&mut self, phase: Phase, level: u32, t0: f64) {
        if self.trace.is_enabled() {
            let t1 = self.epoch.elapsed().as_secs_f64();
            self.trace.span(phase, level, t0, t1);
        }
    }

    /// Detach this rank's trace buffer (None when tracing is disabled).
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take_buffer()
    }

    /// Mark this rank dead (peers stop waiting for it) and return `e`.
    fn fail(&self, e: CommError) -> CommError {
        self.alive[self.rank].store(false, Ordering::SeqCst);
        e
    }

    /// One bulk-synchronous message round. `sends` lists `(dest,
    /// payload)` pairs (multiple payloads to one destination are
    /// allowed). Returns every non-empty payload addressed to this rank,
    /// as `(from, payload)` sorted by sender. Acts as a world barrier.
    ///
    /// With an active fault plan, [`OpClass::Expand`]/[`OpClass::Fold`]
    /// rounds advance the fault schedule clock, injected message faults
    /// are counted in [`RankCtx::faults`], and scheduled rank deaths
    /// surface as [`CommError::RankDead`] in *every* rank at the same
    /// round (the plan is shared, so survivors detect deaths without
    /// waiting for silence).
    pub fn exchange(
        &mut self,
        class: OpClass,
        sends: Vec<(usize, Vec<Vert>)>,
    ) -> Result<Vec<(usize, Vec<Vert>)>, CommError> {
        let p = self.grid.len();
        let control = class == OpClass::Control;
        let faultable = self.plan.is_active() && (!control || self.control_faultable);
        let mut fault_round = 0u64;
        if faultable && control {
            // Control faults draw from their own round counter;
            // scheduled deaths stay a data-round phenomenon.
            fault_round = self.control_round;
            self.control_round += 1;
        } else if faultable {
            fault_round = self.data_round;
            self.data_round += 1;
            if self.plan.has_deaths() {
                for r in self.plan.deaths_at(fault_round) {
                    if r < p {
                        self.alive[r].store(false, Ordering::SeqCst);
                    }
                }
                // Deterministic death check: every rank computes the same
                // schedule, so the whole world aborts this round together.
                let mut doomed = None;
                for d in self.plan.deaths() {
                    if d.at_round <= fault_round && d.rank < p {
                        doomed = match doomed {
                            Some(r) if r <= d.rank => Some(r),
                            _ => Some(d.rank),
                        };
                    }
                }
                if let Some(rank) = doomed {
                    if self.trace.is_enabled() {
                        let t = self.epoch.elapsed().as_secs_f64();
                        self.trace.world_event(
                            EventKind::RankDeath {
                                rank: rank as u32,
                                round: fault_round,
                            },
                            t,
                            t,
                        );
                    }
                    return Err(self.fail(CommError::RankDead { rank }));
                }
            }
        }
        let round = self.round;
        self.round += 1;

        let traced = self.trace.is_enabled();
        let trace_sends = self.trace.wants_sends();
        let t_round0 = if traced {
            self.epoch.elapsed().as_secs_f64()
        } else {
            0.0
        };
        let mut round_msgs = 0u64;
        let mut round_verts = 0u64;

        // Aggregate per destination, injecting sender-side faults and
        // (with a codec policy set) encoding each payload to a wire
        // frame. Self-sends never touch the codec, mirroring the
        // simulator's free local delivery.
        let codec_on = !self.wire_policy.is_raw();
        let mut per_dest: Vec<Vec<Vec<Vert>>> = vec![Vec::new(); p];
        let mut per_dest_wire: Vec<Vec<Vec<u8>>> = if codec_on {
            vec![Vec::new(); p]
        } else {
            Vec::new()
        };
        let mut self_payloads = Vec::new();
        let msg_faults = faultable && self.plan.has_message_faults();
        for (dest, payload) in sends {
            if dest >= p {
                return Err(self.fail(CommError::DestinationOutOfRange { dest, p }));
            }
            if dest == self.rank {
                if !payload.is_empty() {
                    self_payloads.push(payload);
                }
                continue;
            }
            let mut retries = 0u32;
            if msg_faults {
                match self
                    .plan
                    .delivery(class.index() as u8, fault_round, self.rank, dest)
                {
                    Ok(d) => {
                        let failed = d.attempts - 1;
                        let dropped = failed - d.truncated_attempts;
                        self.faults.drops_injected += dropped as u64;
                        self.faults.truncations_injected += d.truncated_attempts as u64;
                        self.faults.retransmissions += failed as u64;
                        if d.duplicated {
                            // Receiver-side sequence check discards the
                            // duplicate; only the counter observes it.
                            self.faults.duplicates_injected += 1;
                        }
                        retries = failed;
                    }
                    Err(attempts) => {
                        return Err(self.fail(CommError::Unreachable {
                            from: self.rank,
                            to: dest,
                            attempts,
                        }))
                    }
                }
            }
            let logical = payload.len() as u64 * VERT_BYTES;
            let frame = if codec_on {
                Some(wire::encode(&payload, &self.wire_policy))
            } else {
                None
            };
            let wire_bytes = frame.as_ref().map_or(logical, |f| f.len() as u64);
            let wc = &mut self.wire_counts[class.index()];
            wc.logical_bytes += logical;
            wc.wire_bytes += wire_bytes;
            if traced {
                round_msgs += 1;
                round_verts += payload.len() as u64;
                let t = self.epoch.elapsed().as_secs_f64();
                if trace_sends {
                    // No cost model on real threads: sends are recorded
                    // as instants; hop counts are the exporter's to
                    // derive from the task mapping if it wants them.
                    // Bytes are post-codec, matching the simulator.
                    self.trace.rank_event(
                        0,
                        EventKind::Send {
                            from: self.rank as u32,
                            to: dest as u32,
                            bytes: wire_bytes,
                            hops: 0,
                        },
                        t,
                        t,
                    );
                }
                if retries > 0 {
                    self.trace.rank_event(
                        0,
                        EventKind::Retransmit {
                            from: self.rank as u32,
                            to: dest as u32,
                            retries,
                        },
                        t,
                        t,
                    );
                }
            }
            match frame {
                Some(f) => {
                    per_dest_wire[dest].push(f);
                    // The vertex buffer stays on this rank: recycle it.
                    self.scratch.put(payload);
                }
                None => per_dest[dest].push(payload),
            }
        }

        // Post exactly one packet to every peer (possibly empty): this is
        // what lets receivers detect round completion. Send errors mean
        // the peer already exited; its dead flag covers it below.
        for dest in 0..p {
            if dest == self.rank {
                continue;
            }
            let body = if codec_on {
                Body::Wire(std::mem::take(&mut per_dest_wire[dest]))
            } else {
                Body::Verts(std::mem::take(&mut per_dest[dest]))
            };
            let _ = self.senders[dest].send(Packet {
                round,
                from: self.rank,
                body,
            });
        }

        // Collect one packet per peer for this round, with a bounded
        // wait: each poll tick re-checks liveness so a dead peer turns
        // into a typed error instead of a hang.
        // bgl-lint: allow(d2, reason = "threaded backend deadline is real wall-clock liveness detection, not simulated time")
        let deadline = Instant::now() + EXCHANGE_DEADLINE;
        let mut got: Vec<Packet> = self.stash.remove(&round).unwrap_or_default();
        let mut heard = vec![false; p];
        heard[self.rank] = true;
        for pkt in &got {
            heard[pkt.from] = true;
        }
        while got.len() < p - 1 {
            match self.receiver.recv_timeout(POLL_TICK) {
                Ok(pkt) => {
                    if pkt.round == round {
                        heard[pkt.from] = true;
                        got.push(pkt);
                    } else {
                        debug_assert!(pkt.round > round, "stale packet from a past round");
                        self.stash.entry(pkt.round).or_default().push(pkt);
                    }
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    for peer in 0..p {
                        if !heard[peer] && !self.alive[peer].load(Ordering::SeqCst) {
                            return Err(self.fail(CommError::RankDead { rank: peer }));
                        }
                    }
                    // bgl-lint: allow(d2, reason = "wall-clock re-check of the liveness deadline above")
                    if Instant::now() >= deadline {
                        return Err(self.fail(CommError::Timeout {
                            rank: self.rank,
                            round,
                        }));
                    }
                }
            }
        }

        let mut out: Vec<(usize, Vec<Vert>)> = Vec::new();
        for payload in self_payloads {
            out.push((self.rank, payload));
        }
        for pkt in got {
            let Packet { from, body, .. } = pkt;
            match body {
                Body::Verts(payloads) => {
                    for payload in payloads {
                        if !payload.is_empty() {
                            out.push((from, payload));
                        }
                    }
                }
                Body::Wire(frames) => {
                    for f in frames {
                        // Frames travel in-process over a channel, so a
                        // parse failure can only mean a codec bug — a
                        // panic (surfaced by the world join) beats
                        // silently dropping BFS traffic.
                        let payload =
                            // bgl-lint: allow(r1, reason = "in-process frames cannot corrupt; a decode failure is a codec bug, so aborting beats dropping traffic")
                            wire::decode(&f).expect("undecodable wire frame between ranks");
                        if !payload.is_empty() {
                            out.push((from, payload));
                        }
                    }
                }
            }
        }
        out.sort_by_key(|a| a.0);
        if traced && (round_msgs > 0 || class != OpClass::Control) {
            // Sender-side accounting: each rank's track records its own
            // outbound rounds (the world-total view comes from merging).
            self.trace.world_event(
                EventKind::Round {
                    op: OpKind::from_index(class.index()),
                    messages: round_msgs as u32,
                    verts: round_verts,
                    bottleneck: self.rank as u32,
                },
                t_round0,
                self.epoch.elapsed().as_secs_f64(),
            );
        }
        Ok(out)
    }

    /// Global OR across all ranks (one control round).
    pub fn allreduce_or(&mut self, flag: bool) -> Result<bool, CommError> {
        Ok(self.allreduce_sum(flag as u64)? > 0)
    }

    /// Global sum across all ranks (one control round).
    pub fn allreduce_sum(&mut self, value: u64) -> Result<u64, CommError> {
        let p = self.grid.len();
        let sends: Vec<(usize, Vec<Vert>)> = (0..p)
            .filter(|&d| d != self.rank)
            .map(|d| {
                let mut buf = self.scratch.take();
                buf.push(value + 1);
                (d, buf)
            })
            .collect();
        let got = self.exchange(OpClass::Control, sends)?;
        // +1 shift lets zero values survive the empty-payload filter.
        let mut total = value;
        for (_, payload) in got {
            total += payload[0] - 1;
            self.scratch.put(payload);
        }
        Ok(total)
    }

    /// Three global sums in one control round: the widened termination
    /// allreduce the direction-optimizing BFS uses. Mirrors
    /// [`RankCtx::allreduce_sum`] with a three-word payload, so the
    /// direction decision costs no extra round here either.
    pub fn allreduce_sum3(&mut self, a: u64, b: u64, c: u64) -> Result<(u64, u64, u64), CommError> {
        let p = self.grid.len();
        let sends: Vec<(usize, Vec<Vert>)> = (0..p)
            .filter(|&d| d != self.rank)
            .map(|d| {
                let mut buf = self.scratch.take();
                // +1 shift per word: all-zero triples survive the
                // empty-payload filter (the payload is never empty, but
                // the shift keeps the wire convention uniform).
                buf.extend_from_slice(&[a + 1, b + 1, c + 1]);
                (d, buf)
            })
            .collect();
        let got = self.exchange(OpClass::Control, sends)?;
        let (mut ta, mut tb, mut tc) = (a, b, c);
        for (_, payload) in got {
            ta += payload[0] - 1;
            tb += payload[1] - 1;
            tc += payload[2] - 1;
            self.scratch.put(payload);
        }
        Ok((ta, tb, tc))
    }

    /// Barrier: an exchange with no payloads.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let _ = self.exchange(OpClass::Control, Vec::new())?;
        Ok(())
    }
}

/// The threaded SPMD world: spawns one thread per rank and runs `body`
/// in each, returning the per-rank results in rank order.
pub struct ThreadedWorld;

impl ThreadedWorld {
    /// Run `body` on every rank of `grid` concurrently, fault-free.
    pub fn run<F, T>(grid: ProcessorGrid, body: F) -> Vec<T>
    where
        F: Fn(&mut RankCtx) -> T + Sync,
        T: Send,
    {
        Self::run_with(grid, FaultPlan::none(), body)
    }

    /// Run `body` on every rank of `grid` concurrently under `plan`.
    pub fn run_with<F, T>(grid: ProcessorGrid, plan: FaultPlan, body: F) -> Vec<T>
    where
        F: Fn(&mut RankCtx) -> T + Sync,
        T: Send,
    {
        let p = grid.len();
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let plan = Arc::new(plan);
        let alive: Arc<Vec<AtomicBool>> = Arc::new((0..p).map(|_| AtomicBool::new(true)).collect());
        // One shared origin so all ranks' trace timestamps align.
        // bgl-lint: allow(d2, reason = "trace timestamp origin for real threads; sim paths use the modelled clock")
        let epoch = Instant::now();

        let body = &body;
        let senders_ref = &senders;
        let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                let plan = Arc::clone(&plan);
                let alive = Arc::clone(&alive);
                handles.push(scope.spawn(move || {
                    let mut ctx = RankCtx {
                        rank,
                        grid,
                        senders: senders_ref.to_vec(),
                        receiver,
                        round: 0,
                        stash: BTreeMap::new(),
                        plan,
                        alive,
                        data_round: 0,
                        control_faultable: false,
                        control_round: 0,
                        faults: FaultStats::default(),
                        scratch: ScratchPool::new(),
                        wire_policy: WirePolicy::raw(),
                        wire_counts: [WireCount::default(); 3],
                        trace: TraceSink::disabled(),
                        epoch,
                    };
                    body(&mut ctx)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                // bgl-lint: allow(r1, reason = "join fails only if the rank thread panicked; re-raising the panic is the contract")
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });
        results.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_routes_payloads() {
        let grid = ProcessorGrid::new(2, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            // Every rank sends its id to rank 0.
            let sends = if ctx.rank() == 0 {
                Vec::new()
            } else {
                vec![(0, vec![ctx.rank() as Vert])]
            };
            ctx.exchange(OpClass::Fold, sends).unwrap()
        });
        assert_eq!(results[0], vec![(1, vec![1]), (2, vec![2]), (3, vec![3])]);
        assert!(results[1].is_empty());
    }

    #[test]
    fn self_sends_are_delivered() {
        let grid = ProcessorGrid::new(1, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            ctx.exchange(OpClass::Fold, vec![(ctx.rank(), vec![42])])
                .unwrap()
        });
        for (rank, inbox) in results.iter().enumerate() {
            assert_eq!(inbox, &vec![(rank, vec![42])]);
        }
    }

    #[test]
    fn multiple_rounds_do_not_cross() {
        let grid = ProcessorGrid::new(1, 4);
        let results = ThreadedWorld::run(grid, |ctx| {
            let mut seen = Vec::new();
            for round in 0..10u64 {
                let next = (ctx.rank() + 1) % 4;
                let got = ctx
                    .exchange(
                        OpClass::Expand,
                        vec![(next, vec![round * 100 + ctx.rank() as u64])],
                    )
                    .unwrap();
                assert_eq!(got.len(), 1);
                seen.push(got[0].1[0]);
            }
            seen
        });
        let prev = 3usize; // rank 0's predecessor
        for (round, &v) in results[0].iter().enumerate() {
            assert_eq!(v, round as u64 * 100 + prev as u64);
        }
    }

    #[test]
    fn allreduce_sum_and_or() {
        let grid = ProcessorGrid::new(2, 3);
        let sums = ThreadedWorld::run(grid, |ctx| ctx.allreduce_sum(ctx.rank() as u64).unwrap());
        assert!(sums.iter().all(|&s| s == 15));
        let ors = ThreadedWorld::run(grid, |ctx| ctx.allreduce_or(ctx.rank() == 3).unwrap());
        assert!(ors.iter().all(|&o| o));
        let ors = ThreadedWorld::run(grid, |ctx| ctx.allreduce_or(false).unwrap());
        assert!(ors.iter().all(|&o| !o));
    }

    #[test]
    fn allreduce_sum_of_zeros() {
        let grid = ProcessorGrid::new(1, 3);
        let sums = ThreadedWorld::run(grid, |ctx| {
            let _ = ctx.rank();
            ctx.allreduce_sum(0).unwrap()
        });
        assert!(sums.iter().all(|&s| s == 0));
    }

    #[test]
    fn single_rank_world() {
        let grid = ProcessorGrid::new(1, 1);
        let results = ThreadedWorld::run(grid, |ctx| {
            ctx.barrier().unwrap();
            ctx.allreduce_sum(7).unwrap()
        });
        assert_eq!(results, vec![7]);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates_to_caller() {
        // Failure injection: a crashing rank must not hang the world —
        // the scoped join surfaces the panic.
        let grid = ProcessorGrid::new(1, 2);
        let _ = ThreadedWorld::run(grid, |ctx| {
            if ctx.rank() == 1 {
                panic!("injected rank failure");
            }
            // Rank 0 does not communicate, so it finishes regardless.
            ctx.rank()
        });
    }

    #[test]
    fn empty_payloads_filtered() {
        let grid = ProcessorGrid::new(1, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            let other = 1 - ctx.rank();
            ctx.exchange(OpClass::Fold, vec![(other, Vec::new())])
                .unwrap()
        });
        assert!(results[0].is_empty());
        assert!(results[1].is_empty());
    }

    #[test]
    fn out_of_range_destination_is_typed_error() {
        let grid = ProcessorGrid::new(1, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            if ctx.rank() == 0 {
                ctx.exchange(OpClass::Fold, vec![(7, vec![1])])
            } else {
                // The peer sees rank 0 flag itself dead instead of hanging.
                ctx.exchange(OpClass::Fold, Vec::new())
            }
        });
        assert_eq!(
            results[0],
            Err(CommError::DestinationOutOfRange { dest: 7, p: 2 })
        );
        assert_eq!(results[1], Err(CommError::RankDead { rank: 0 }));
    }

    #[test]
    fn scheduled_death_aborts_world_at_same_round() {
        let grid = ProcessorGrid::new(2, 2);
        let plan = FaultPlan::seeded(5).kill_rank_at(2, 3);
        let results = ThreadedWorld::run_with(grid, plan, |ctx| {
            let mut rounds_done = 0u64;
            for i in 0..10u64 {
                let next = (ctx.rank() + 1) % 4;
                match ctx.exchange(OpClass::Expand, vec![(next, vec![i])]) {
                    Ok(_) => rounds_done += 1,
                    Err(e) => return (rounds_done, Some(e)),
                }
            }
            (rounds_done, None)
        });
        for (rounds_done, err) in results {
            assert_eq!(rounds_done, 3, "all ranks abort at the death round");
            assert_eq!(err, Some(CommError::RankDead { rank: 2 }));
        }
    }

    #[test]
    fn wire_codec_roundtrips_payloads() {
        // With a codec policy every payload travels as an encoded frame;
        // receivers must see exactly the vertices that were sent, and
        // the sender-side counters must show real compression on
        // BFS-shaped (sorted, dense-ish) payloads.
        let grid = ProcessorGrid::new(2, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            ctx.set_wire_policy(WirePolicy::auto());
            let next = (ctx.rank() + 1) % 4;
            let payload: Vec<Vert> = (0..512u64)
                .map(|k| ctx.rank() as u64 * 10_000 + k)
                .collect();
            let got = ctx
                .exchange(OpClass::Expand, vec![(next, payload)])
                .unwrap();
            (got, ctx.wire_count(OpClass::Expand))
        });
        for (rank, (inbox, count)) in results.iter().enumerate() {
            let prev = (rank + 3) % 4;
            let expect: Vec<Vert> = (0..512u64).map(|k| prev as u64 * 10_000 + k).collect();
            assert_eq!(inbox, &vec![(prev, expect)]);
            assert_eq!(count.logical_bytes, 512 * VERT_BYTES);
            assert!(
                count.wire_bytes * 4 < count.logical_bytes,
                "dense sorted run should compress >4x, got {} -> {}",
                count.logical_bytes,
                count.wire_bytes
            );
        }
    }

    #[test]
    fn raw_policy_ships_plain_vertex_lists() {
        // The default policy must count wire == logical and deliver the
        // exact same results as always (codec fully bypassed).
        let grid = ProcessorGrid::new(1, 2);
        let results = ThreadedWorld::run(grid, |ctx| {
            let other = 1 - ctx.rank();
            let got = ctx
                .exchange(OpClass::Fold, vec![(other, vec![5, 6, 7])])
                .unwrap();
            (got, ctx.wire_count(OpClass::Fold))
        });
        for (rank, (inbox, count)) in results.iter().enumerate() {
            assert_eq!(inbox, &vec![(1 - rank, vec![5, 6, 7])]);
            assert_eq!(count.logical_bytes, 3 * VERT_BYTES);
            assert_eq!(count.wire_bytes, 3 * VERT_BYTES);
        }
    }

    #[test]
    fn wire_totals_match_simulator() {
        // Same payload pattern, same codec policy, both runtimes:
        // identical world-total logical and wire byte counts (the codec
        // choice is a pure function of each payload).
        use crate::buffer::ChunkPolicy;
        use crate::sim::SimWorld;
        use bgl_torus::{MachineConfig, TaskMappingKind};

        let grid = ProcessorGrid::new(2, 2);
        let rounds = 4u64;
        let payload_for = |rank: usize, i: u64| -> Vec<Vert> {
            // Mix of shapes: dense runs, strided, and one empty payload.
            match (rank as u64 + i) % 3 {
                0 => (0..200u64).map(|k| i * 1000 + k).collect(),
                1 => (0..50u64).map(|k| i * 1000 + k * 97).collect(),
                _ => Vec::new(),
            }
        };

        let mut sim = SimWorld::new(
            grid,
            MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(4)),
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::Unbounded,
        )
        .with_wire_policy(WirePolicy::auto());
        for i in 0..rounds {
            let sends = (0..4)
                .map(|r| (r, (r + 1) % 4, payload_for(r, i)))
                .collect::<Vec<_>>();
            sim.exchange(OpClass::Expand, sends).unwrap();
        }

        let per_rank = ThreadedWorld::run(grid, |ctx| {
            ctx.set_wire_policy(WirePolicy::auto());
            for i in 0..rounds {
                let next = (ctx.rank() + 1) % 4;
                ctx.exchange(OpClass::Expand, vec![(next, payload_for(ctx.rank(), i))])
                    .unwrap();
            }
            ctx.wire_count(OpClass::Expand)
        });
        let logical: u64 = per_rank.iter().map(|c| c.logical_bytes).sum();
        let wire: u64 = per_rank.iter().map(|c| c.wire_bytes).sum();
        let cls = sim.stats.class(OpClass::Expand);
        assert_eq!(logical, cls.logical_bytes);
        assert_eq!(wire, cls.wire_bytes);
        assert!(wire < logical, "mixed payloads should still compress");
    }

    #[test]
    fn fault_counters_match_simulator() {
        // Same plan, same message pattern, both runtimes: identical
        // world-total fault counters (pure-hash decisions).
        use crate::buffer::ChunkPolicy;
        use crate::sim::SimWorld;
        use bgl_torus::{MachineConfig, TaskMappingKind};

        let grid = ProcessorGrid::new(2, 2);
        let mk_plan = || {
            FaultPlan::seeded(99)
                .with_drop_prob(0.3)
                .with_truncate_prob(0.1)
                .with_duplicate_prob(0.1)
        };
        let rounds = 6u64;

        let mut sim = SimWorld::new(
            grid,
            MachineConfig::bluegene_l_partition(MachineConfig::fit_partition(4)),
            TaskMappingKind::FoldedPlanes,
            ChunkPolicy::Unbounded,
        )
        .with_fault_plan(mk_plan());
        for i in 0..rounds {
            let sends = (0..4)
                .map(|r| (r, (r + 1) % 4, vec![i; 8]))
                .collect::<Vec<_>>();
            sim.exchange(OpClass::Expand, sends).unwrap();
        }

        let per_rank = ThreadedWorld::run_with(grid, mk_plan(), |ctx| {
            for i in 0..rounds {
                let next = (ctx.rank() + 1) % 4;
                ctx.exchange(OpClass::Expand, vec![(next, vec![i; 8])])
                    .unwrap();
            }
            ctx.faults
        });
        let mut total = FaultStats::default();
        for f in &per_rank {
            total.drops_injected += f.drops_injected;
            total.truncations_injected += f.truncations_injected;
            total.duplicates_injected += f.duplicates_injected;
            total.retransmissions += f.retransmissions;
        }
        assert!(total.retransmissions > 0, "plan should actually fire");
        assert_eq!(total.drops_injected, sim.stats.faults.drops_injected);
        assert_eq!(
            total.truncations_injected,
            sim.stats.faults.truncations_injected
        );
        assert_eq!(
            total.duplicates_injected,
            sim.stats.faults.duplicates_injected
        );
        assert_eq!(total.retransmissions, sim.stats.faults.retransmissions);
    }
}
