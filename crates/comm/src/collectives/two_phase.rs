//! The §3.2.2 two-phase grouped-ring collectives ("union-fold" and the
//! matching expand), the paper's BlueGene/L-specific optimization.
//!
//! A group of `g` processors is arranged as an `m × n` subgrid
//! (`m·n = g`, position `pos` ↦ `(pos / n, pos % n)`), shortening the
//! communication from one `g`-ring into rows/columns of the subgrid —
//! "the idea is to divide the processors in the ring into several groups
//! and perform the ring communication within each group in parallel".
//! Both operations finish in `O(m + n)` ring steps.
//!
//! **Fold** (paper Figure 2): phase 1 circulates, within each subgrid
//! row, one *bundle per target subgrid-column*; every holder unions its
//! own contributions into the bundle ("when a process adds its vertices
//! to a received message, it only adds those that are not already in the
//! message"), eliminating duplicates en route. Phase 2 scatters each
//! bundle's per-destination sets down the target column with direct
//! point-to-point sends, and destinations union the `m` arriving sets.
//!
//! **Expand** (paper Figure 3): phase 1 exchanges frontier contributions
//! within each subgrid *column* (all-to-all, one round); phase 2
//! circulates the resulting column-bundles around each subgrid row ring
//! so every member ends with every contribution.
//!
//! Wire accounting: a bundle travels as one message whose payload is the
//! concatenation of its sets. The per-set boundaries (≤ `m` small header
//! words in a real implementation) are carried out-of-band by the
//! simulator and excluded from vertex-volume statistics.

// Parallel index loops over per-rank arrays are intentional here.
#![allow(clippy::needless_range_loop)]

use super::Groups;
use crate::error::CommError;
use crate::setops;
use crate::sim::{Inbox, SimWorld};
use crate::stats::OpClass;
use crate::vset::VertSet;
use crate::{Vert, VERT_BYTES};

/// A fold bundle in flight: per-destination sets for the members of one
/// target subgrid column, held as hybrid [`VertSet`]s so dense bundles
/// union word-wise.
#[derive(Debug, Clone, Default)]
struct FoldBundle {
    /// `sets[r]` is destined to the member at subgrid position
    /// `(r, target_col)`.
    sets: Vec<VertSet>,
}

impl FoldBundle {
    /// Concatenated payload, built into a pooled scratch buffer. Only
    /// its *length* feeds the cost model, so the per-set order is free.
    fn wire_payload(&self, world: &mut SimWorld) -> Vec<Vert> {
        let mut out = world.scratch_take();
        for s in &self.sets {
            s.append_to(&mut out);
        }
        out
    }
}

/// Run the two-phase union-fold in every group simultaneously.
///
/// `blocks[rank][j]` is the normalized set of vertices `rank` wants
/// delivered to the member at position `j` of its group. Returns the
/// unioned set destined to each rank.
pub fn two_phase_fold(
    world: &mut SimWorld,
    class: OpClass,
    groups: &Groups,
    blocks: Vec<Vec<Vec<Vert>>>,
) -> Result<Vec<VertSet>, CommError> {
    debug_assert_eq!(blocks.len(), world.p());
    let p = world.p();
    for rank in 0..p {
        debug_assert_eq!(blocks[rank].len(), groups.group_of(rank).len());
        debug_assert!(blocks[rank].iter().all(|b| setops::is_normalized(b)));
    }

    // Subgrid shape per group.
    let shapes: Vec<(usize, usize)> = groups
        .groups()
        .iter()
        .map(|g| crate::topology::ProcessorGrid::subgrid_factor(g.len()))
        .collect();

    // ---- Phase 1: row-wise rings, one bundle per target column. ----
    // Member at subgrid (sr, c) initially holds the bundle for target
    // column (c - 1) mod n, seeded with its own contributions; the final
    // holder's contributions are folded in upon arrival.
    let mut held: Vec<FoldBundle> = vec![FoldBundle::default(); p];
    let mut held_target: Vec<usize> = vec![0; p];
    let mut merge_bytes_init = vec![0u64; p];
    for rank in 0..p {
        let (gi, pos) = groups.locate(rank);
        let (m, n) = shapes[gi];
        let (_, sc) = (pos / n, pos % n);
        let tc = (sc + n - 1) % n;
        held_target[rank] = tc;
        let mut bundle = FoldBundle {
            sets: vec![VertSet::new(); m],
        };
        seed_own(
            &mut bundle,
            &blocks[rank],
            n,
            tc,
            m,
            world,
            rank,
            &mut merge_bytes_init[rank],
        );
        held[rank] = bundle;
    }
    world.memcpy_phase(&merge_bytes_init);

    let max_n = shapes.iter().map(|&(_, n)| n).max().unwrap_or(1);
    for s in 0..max_n.saturating_sub(1) {
        let mut sends = Vec::new();
        for (gi, g) in groups.groups().iter().enumerate() {
            let (_, n) = shapes[gi];
            if n < 2 || s >= n - 1 {
                continue;
            }
            for (pos, &rank) in g.iter().enumerate() {
                let (sr, sc) = (pos / n, pos % n);
                let succ = g[sr * n + (sc + 1) % n];
                let payload = held[rank].wire_payload(world);
                sends.push((rank, succ, payload));
            }
        }
        let inboxes = world.exchange(class, sends)?;
        // Snapshot before applying receives: a predecessor processed
        // earlier in rank order must still expose the bundle it *sent*.
        let prev_held = held.clone();
        let prev_target = held_target.clone();
        let mut merge_bytes = vec![0u64; p];
        for (rank, mut inbox) in inboxes.into_iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            // The wire copy of the bundle is recycled; the authoritative
            // bundle moves out-of-band below.
            while let Some((_, wire)) = inbox.pop() {
                world.scratch_put(wire);
            }
            let (gi, pos) = groups.locate(rank);
            let (m, n) = shapes[gi];
            let (sr, sc) = (pos / n, pos % n);
            // Bundle arriving at step s targets column (sc - 2 - s) mod n.
            let tc = (sc + 2 * n - 2 - s % n) % n;
            // Move the bundle via the out-of-band channel: our ring
            // predecessor held it before this round.
            let g = &groups.groups()[gi];
            let pred = g[sr * n + (sc + n - 1) % n];
            let mut bundle = prev_held[pred].clone();
            debug_assert_eq!(prev_target[pred], tc);
            seed_own(
                &mut bundle,
                &blocks[rank],
                n,
                tc,
                m,
                world,
                rank,
                &mut merge_bytes[rank],
            );
            held[rank] = bundle;
            held_target[rank] = tc;
        }
        world.memcpy_phase(&merge_bytes);
    }

    // Every member (sr, tc) now holds the bundle for its own column tc.
    // ---- Phase 2: point-to-point scatter down each target column. ----
    let mut sends = Vec::new();
    let mut keep: Vec<VertSet> = vec![VertSet::new(); p];
    for (gi, g) in groups.groups().iter().enumerate() {
        let (m, n) = shapes[gi];
        for (pos, &rank) in g.iter().enumerate() {
            let (_, sc) = (pos / n, pos % n);
            debug_assert_eq!(held_target[rank] % n, sc % n);
            let bundle = std::mem::take(&mut held[rank]);
            for (r_dst, set) in bundle.sets.into_iter().enumerate() {
                let dst = g[r_dst * n + sc];
                if dst == rank {
                    keep[rank] = set;
                } else if !set.is_empty() {
                    let payload = match set {
                        VertSet::List(v) => v,
                        bm => {
                            let mut buf = world.scratch_take();
                            bm.append_to(&mut buf);
                            buf
                        }
                    };
                    sends.push((rank, dst, payload));
                }
            }
            let _ = m;
        }
    }
    let inboxes = world.exchange(class, sends)?;

    // Final union at each destination.
    let policy = world.vset_policy();
    let mut merge_bytes = vec![0u64; p];
    let mut out: Vec<VertSet> = vec![VertSet::new(); p];
    for (rank, inbox) in inboxes.into_iter().enumerate() {
        let mut acc = std::mem::take(&mut keep[rank]);
        for (_, set) in inbox {
            merge_bytes[rank] += (acc.len() + set.len()) as u64 * VERT_BYTES;
            let was_bitmap = acc.is_bitmap();
            let dups = acc.union_in(&set, &policy);
            world.note_dups(rank, dups);
            world.stats.note_union(acc.is_bitmap());
            if acc.is_bitmap() && !was_bitmap {
                world.stats.note_densify();
            }
            world.scratch_put(set);
        }
        out[rank] = acc;
    }
    world.memcpy_phase(&merge_bytes);
    Ok(out)
}

/// Union `rank`'s own blocks destined to the members of target column
/// `tc` into `bundle`, counting eliminated duplicates and merge bytes.
#[allow(clippy::too_many_arguments)]
fn seed_own(
    bundle: &mut FoldBundle,
    own_blocks: &[Vec<Vert>],
    n: usize,
    tc: usize,
    m: usize,
    world: &mut SimWorld,
    rank: usize,
    merge_bytes: &mut u64,
) {
    debug_assert_eq!(bundle.sets.len(), m);
    let policy = world.vset_policy();
    for r_dst in 0..m {
        let dest_pos = r_dst * n + tc;
        let own = &own_blocks[dest_pos];
        if own.is_empty() {
            continue;
        }
        *merge_bytes += (bundle.sets[r_dst].len() + own.len()) as u64 * VERT_BYTES;
        let set = &mut bundle.sets[r_dst];
        let was_bitmap = set.is_bitmap();
        let dups = set.union_in(own, &policy);
        world.note_dups(rank, dups);
        world.stats.note_union(set.is_bitmap());
        if set.is_bitmap() && !was_bitmap {
            world.stats.note_densify();
        }
    }
}

/// An expand bundle: the contributions of one subgrid column's members.
#[derive(Debug, Clone, Default)]
struct ExpandBundle {
    /// `(source rank, contribution)` for each member of the origin column.
    parts: Vec<(usize, Vec<Vert>)>,
}

impl ExpandBundle {
    fn wire_payload(&self) -> Vec<Vert> {
        let total: usize = self.parts.iter().map(|(_, c)| c.len()).sum();
        let mut out = Vec::with_capacity(total);
        for (_, c) in &self.parts {
            out.extend_from_slice(c);
        }
        out
    }
}

/// Run the two-phase expand in every group simultaneously.
///
/// `contribution[rank]` is the rank's frontier message (the same payload
/// goes to every group member). Returns, per rank, `(source, payload)`
/// for every member of its group, sorted by source rank.
pub fn two_phase_expand(
    world: &mut SimWorld,
    class: OpClass,
    groups: &Groups,
    contribution: Vec<Vec<Vert>>,
) -> Result<Vec<Inbox>, CommError> {
    debug_assert_eq!(contribution.len(), world.p());
    let p = world.p();
    let shapes: Vec<(usize, usize)> = groups
        .groups()
        .iter()
        .map(|g| crate::topology::ProcessorGrid::subgrid_factor(g.len()))
        .collect();

    // ---- Phase 1: all-to-all within each subgrid column. ----
    let mut sends = Vec::new();
    for (gi, g) in groups.groups().iter().enumerate() {
        let (m, n) = shapes[gi];
        if m >= 2 {
            for (pos, &rank) in g.iter().enumerate() {
                let (sr, sc) = (pos / n, pos % n);
                for r_dst in 0..m {
                    if r_dst == sr {
                        continue;
                    }
                    let dst = g[r_dst * n + sc];
                    sends.push((rank, dst, contribution[rank].clone()));
                }
            }
        }
    }
    let inboxes = world.exchange(class, sends)?;

    // Column bundles, ordered by subgrid row within the column.
    let mut held: Vec<ExpandBundle> = vec![ExpandBundle::default(); p];
    for rank in 0..p {
        let (gi, pos) = groups.locate(rank);
        let (m, n) = shapes[gi];
        let (_, sc) = (pos / n, pos % n);
        let g = &groups.groups()[gi];
        let mut parts: Vec<(usize, Vec<Vert>)> = Vec::with_capacity(m);
        for r_src in 0..m {
            let src = g[r_src * n + sc];
            if src == rank {
                parts.push((src, contribution[rank].clone()));
            } else {
                let payload = inboxes[rank]
                    .iter()
                    .find(|(from, _)| *from == src)
                    .map(|(_, pl)| pl.clone())
                    .unwrap_or_default();
                parts.push((src, payload));
            }
        }
        held[rank] = ExpandBundle { parts };
    }

    // Everyone keeps its own column bundle as received output.
    let mut gathered: Vec<Vec<(usize, Vec<Vert>)>> =
        (0..p).map(|r| held[r].parts.clone()).collect();

    // ---- Phase 2: circulate column bundles around each subgrid row. ----
    let max_n = shapes.iter().map(|&(_, n)| n).max().unwrap_or(1);
    for s in 0..max_n.saturating_sub(1) {
        let mut sends = Vec::new();
        for (gi, g) in groups.groups().iter().enumerate() {
            let (_, n) = shapes[gi];
            if n < 2 || s >= n - 1 {
                continue;
            }
            for (pos, &rank) in g.iter().enumerate() {
                let (sr, sc) = (pos / n, pos % n);
                let succ = g[sr * n + (sc + 1) % n];
                sends.push((rank, succ, held[rank].wire_payload()));
            }
        }
        let inboxes = world.exchange(class, sends)?;
        let mut next_held = held.clone();
        for (rank, inbox) in inboxes.into_iter().enumerate() {
            if inbox.is_empty() {
                continue;
            }
            let (gi, pos) = groups.locate(rank);
            let (_, n) = shapes[gi];
            let g = &groups.groups()[gi];
            let (sr, sc) = (pos / n, pos % n);
            let pred = g[sr * n + (sc + n - 1) % n];
            let bundle = held[pred].clone();
            gathered[rank].extend(bundle.parts.iter().cloned());
            next_held[rank] = bundle;
        }
        held = next_held;
    }

    for gparts in gathered.iter_mut() {
        gparts.sort_by_key(|(src, _)| *src);
    }
    Ok(gathered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcessorGrid;

    fn fold_reference(groups: &Groups, blocks: &[Vec<Vec<Vert>>]) -> Vec<Vec<Vert>> {
        (0..blocks.len())
            .map(|rank| {
                let (gi, pos) = groups.locate(rank);
                let g = &groups.groups()[gi];
                let sets: Vec<Vec<Vert>> = g.iter().map(|&mbr| blocks[mbr][pos].clone()).collect();
                setops::union_many(&sets).0
            })
            .collect()
    }

    fn pseudo_blocks(g: usize, salt: u64) -> Vec<Vec<Vec<Vert>>> {
        (0..g)
            .map(|r| {
                (0..g)
                    .map(|d| {
                        let mut v: Vec<Vert> = (0..5)
                            .map(|i| (r as u64 * 31 + d as u64 * 17 + i * 7 + salt) % 40)
                            .collect();
                        setops::normalize(&mut v);
                        v
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fold_matches_reference_across_group_sizes() {
        for g in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12] {
            let grid = ProcessorGrid::new(1, g);
            let groups = Groups::rows_of(grid);
            let blocks = pseudo_blocks(g, 3);
            let expect = fold_reference(&groups, &blocks);
            let mut w = SimWorld::bluegene(grid);
            let got = two_phase_fold(&mut w, OpClass::Fold, &groups, blocks).unwrap();
            let got: Vec<Vec<Vert>> = got.into_iter().map(VertSet::into_vec).collect();
            assert_eq!(got, expect, "group size {g}");
        }
    }

    #[test]
    fn fold_works_on_multiple_groups_simultaneously() {
        // 3 rows of 6 processors each fold at once.
        let grid = ProcessorGrid::new(3, 6);
        let groups = Groups::rows_of(grid);
        let p = grid.len();
        let blocks: Vec<Vec<Vec<Vert>>> = (0..p)
            .map(|rank| {
                (0..6)
                    .map(|d| {
                        let mut v: Vec<Vert> =
                            vec![(rank * 3 + d) as Vert % 20, (rank + d * 5) as Vert % 20];
                        setops::normalize(&mut v);
                        v
                    })
                    .collect()
            })
            .collect();
        let expect = fold_reference(&groups, &blocks);
        let mut w = SimWorld::bluegene(grid);
        let got = two_phase_fold(&mut w, OpClass::Fold, &groups, blocks).unwrap();
        let got: Vec<Vec<Vert>> = got.into_iter().map(VertSet::into_vec).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn fold_eliminates_duplicates_en_route() {
        let g = 6;
        let grid = ProcessorGrid::new(1, g);
        let groups = Groups::rows_of(grid);
        // All members want the same 50 vertices delivered to member 0.
        let common: Vec<Vert> = (0..50).collect();
        let blocks: Vec<Vec<Vec<Vert>>> = (0..g)
            .map(|_| {
                let mut b = vec![Vec::new(); g];
                b[0] = common.clone();
                b
            })
            .collect();
        let mut w = SimWorld::bluegene(grid);
        let got = two_phase_fold(&mut w, OpClass::Fold, &groups, blocks).unwrap();
        assert_eq!(got[0].to_vec(), common);
        // 6 copies collapse to 1: five eliminated, each of 50 vertices.
        assert_eq!(w.stats.total_dups_eliminated(), 250);
        // And the wire never carried anywhere near 6x50 to one dest:
        // phase-1 ring keeps one deduped copy per bundle.
        let wire = w.stats.class(OpClass::Fold).wire_verts;
        assert!(wire < 300, "wire={wire}");
    }

    #[test]
    fn expand_everyone_hears_everyone() {
        for g in [1usize, 2, 3, 4, 6, 8, 9, 12] {
            let grid = ProcessorGrid::new(g, 1);
            let groups = Groups::cols_of(grid);
            let contribution: Vec<Vec<Vert>> =
                (0..g).map(|r| vec![r as Vert, 100 + r as Vert]).collect();
            let mut w = SimWorld::bluegene(grid);
            let got =
                two_phase_expand(&mut w, OpClass::Expand, &groups, contribution.clone()).unwrap();
            for rank in 0..g {
                assert_eq!(got[rank].len(), g, "g={g} rank={rank}");
                for (src, payload) in &got[rank] {
                    assert_eq!(payload, &contribution[*src], "g={g}");
                }
            }
        }
    }

    #[test]
    fn expand_multiple_groups() {
        let grid = ProcessorGrid::new(4, 3); // 3 columns of 4
        let groups = Groups::cols_of(grid);
        let p = grid.len();
        let contribution: Vec<Vec<Vert>> = (0..p).map(|r| vec![r as Vert * 2]).collect();
        let mut w = SimWorld::bluegene(grid);
        let got = two_phase_expand(&mut w, OpClass::Expand, &groups, contribution.clone()).unwrap();
        for rank in 0..p {
            let group = groups.group_of(rank);
            assert_eq!(got[rank].len(), group.len());
            for (src, payload) in &got[rank] {
                assert!(group.contains(src));
                assert_eq!(payload, &contribution[*src]);
            }
        }
    }

    #[test]
    fn fold_on_subgrid_uses_fewer_rounds_than_full_ring() {
        // For g=16 (4x4 subgrid): phase1 = 3 ring steps + 1 scatter round
        // vs 15 ring steps for a full union ring. Compare simulated time.
        let g = 16;
        let grid = ProcessorGrid::new(1, g);
        let groups = Groups::rows_of(grid);
        let blocks = pseudo_blocks(g, 11);

        let mut w_two = SimWorld::bluegene(grid);
        let a = two_phase_fold(&mut w_two, OpClass::Fold, &groups, blocks.clone()).unwrap();
        let mut w_ring = SimWorld::bluegene(grid);
        let b = super::super::reduce_scatter::reduce_scatter_union_ring(
            &mut w_ring,
            OpClass::Fold,
            &groups,
            blocks,
        )
        .unwrap();
        assert_eq!(a, b, "both strategies must produce identical folds");
        assert!(
            w_two.time() < w_ring.time(),
            "two-phase {} vs ring {}",
            w_two.time(),
            w_ring.time()
        );
    }
}
