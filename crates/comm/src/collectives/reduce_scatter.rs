//! Ring reduce-scatter with set-union reduction.
//!
//! The paper (§2.2): "An alternative is to implement the fold operation
//! as a reduce-scatter operation. In this case, each processor receives
//! N̄ directly ... The reduction operation ... is a set-union and
//! eliminates all the duplicate vertices."
//!
//! Implementation: the classic ring reduce-scatter. Each member starts
//! with `g` blocks — block `j` holds the vertices it wants delivered to
//! the group member at position `j`. At step `s` (of `g−1`), the member
//! at position `i` sends its current copy of block `(i − s − 1) mod g` to
//! its ring successor, which unions the incoming block into its own copy
//! (counting the duplicates the union eliminates). After `g−1` steps the
//! member at position `i` holds the fully reduced block `i`.
//!
//! Unions cost real work: the simulator is charged memcpy time for the
//! merge traffic, reflecting the paper's note that "the proposed union
//! operation requires copying of received messages incurring additional
//! overhead". Accumulators are hybrid [`VertSet`]s: once a block crosses
//! the world's [`crate::vset::VsetPolicy`] density threshold it unions
//! as a bitmap in `O(span/64)` word ORs. All modelled time charges are
//! functions of set *cardinalities*, which are representation-invariant,
//! so the clocks are bit-identical to the sorted-list implementation.

// Parallel index loops over per-rank arrays are intentional here.
#![allow(clippy::needless_range_loop)]

use super::Groups;
use crate::error::CommError;
use crate::setops;
use crate::sim::SimWorld;
use crate::stats::OpClass;
use crate::vset::VertSet;
use crate::{Vert, VERT_BYTES};

/// Run a union reduce-scatter in every group simultaneously.
///
/// `blocks[rank][j]` is the **normalized** (sorted, deduplicated) set of
/// vertices rank wants delivered to the member at position `j` of its own
/// group; `blocks[rank].len()` must equal the rank's group size. Returns,
/// for every rank, the unioned set destined to it.
pub fn reduce_scatter_union_ring(
    world: &mut SimWorld,
    class: OpClass,
    groups: &Groups,
    blocks: Vec<Vec<Vec<Vert>>>,
) -> Result<Vec<VertSet>, CommError> {
    debug_assert_eq!(blocks.len(), world.p());
    let p = world.p();
    for rank in 0..p {
        debug_assert_eq!(
            blocks[rank].len(),
            groups.group_of(rank).len(),
            "rank {rank} must provide one block per group member"
        );
        debug_assert!(
            blocks[rank].iter().all(|b| setops::is_normalized(b)),
            "blocks must be normalized sets"
        );
    }

    let policy = world.vset_policy();
    let mut blocks: Vec<Vec<VertSet>> = blocks
        .into_iter()
        .map(|bs| bs.into_iter().map(VertSet::from_sorted).collect())
        .collect();
    let steps = groups.max_group_len().saturating_sub(1);
    for s in 0..steps {
        let mut sends = Vec::with_capacity(p);
        for g in groups.groups() {
            let glen = g.len();
            if glen < 2 || s >= glen - 1 {
                continue;
            }
            for (pos, &rank) in g.iter().enumerate() {
                let succ = g[(pos + 1) % glen];
                let block_idx = (pos + 2 * glen - s - 1) % glen;
                let set = std::mem::take(&mut blocks[rank][block_idx]);
                let payload = match set {
                    VertSet::List(v) => v,
                    bm => {
                        let mut buf = world.scratch_take();
                        bm.append_to(&mut buf);
                        buf
                    }
                };
                sends.push((rank, succ, payload));
            }
        }
        let inboxes = world.exchange(class, sends)?;
        let mut merge_bytes = vec![0u64; p];
        for (rank, mut inbox) in inboxes.into_iter().enumerate() {
            debug_assert!(inbox.len() <= 1);
            if let Some((_, piece)) = inbox.pop() {
                let (gi, pos) = groups.locate(rank);
                let glen = groups.groups()[gi].len();
                // The receiver gets the block its predecessor sent:
                // predecessor position is pos-1, so block (pos - s - 2).
                let block_idx = (pos + 2 * glen - s - 2) % glen;
                merge_bytes[rank] =
                    (piece.len() + blocks[rank][block_idx].len()) as u64 * VERT_BYTES;
                let own = &mut blocks[rank][block_idx];
                let was_bitmap = own.is_bitmap();
                let dups = own.union_in(&piece, &policy);
                let is_bitmap = own.is_bitmap();
                world.note_dups(rank, dups);
                world.stats.note_union(is_bitmap);
                if is_bitmap && !was_bitmap {
                    world.stats.note_densify();
                }
                world.scratch_put(piece);
            }
        }
        world.memcpy_phase(&merge_bytes);
    }

    // Member at position i now holds fully reduced block i.
    Ok((0..p)
        .map(|rank| {
            let (_, pos) = groups.locate(rank);
            std::mem::take(&mut blocks[rank][pos])
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcessorGrid;
    use crate::vset::VsetPolicy;

    /// Reference: direct union of everyone's block for each destination.
    fn reference(groups: &Groups, blocks: &[Vec<Vec<Vert>>]) -> Vec<Vec<Vert>> {
        (0..blocks.len())
            .map(|rank| {
                let (gi, pos) = groups.locate(rank);
                let g = &groups.groups()[gi];
                let sets: Vec<Vec<Vert>> = g.iter().map(|&m| blocks[m][pos].clone()).collect();
                setops::union_many(&sets).0
            })
            .collect()
    }

    fn run(grid: ProcessorGrid, groups: &Groups, blocks: Vec<Vec<Vec<Vert>>>) {
        let mut w = SimWorld::bluegene(grid);
        let expect = reference(groups, &blocks);
        let got = reduce_scatter_union_ring(&mut w, OpClass::Fold, groups, blocks).unwrap();
        let got: Vec<Vec<Vert>> = got.into_iter().map(VertSet::into_vec).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_reference_small() {
        let grid = ProcessorGrid::new(1, 3);
        let groups = Groups::rows_of(grid);
        // blocks[rank][dest_pos]
        let blocks = vec![
            vec![vec![0, 1], vec![10, 11], vec![20]],
            vec![vec![1, 2], vec![11], vec![]],
            vec![vec![0, 2], vec![12], vec![20, 21]],
        ];
        run(grid, &groups, blocks);
    }

    #[test]
    fn matches_reference_various_sizes() {
        for c in [1usize, 2, 3, 4, 5, 7, 8] {
            let grid = ProcessorGrid::new(1, c);
            let groups = Groups::rows_of(grid);
            // Deterministic pseudo-data: rank r sends {r, r+dest, 100+dest}.
            let blocks: Vec<Vec<Vec<Vert>>> = (0..c)
                .map(|r| {
                    (0..c)
                        .map(|d| {
                            let mut v = vec![r as Vert, (r + d) as Vert, 100 + d as Vert];
                            crate::setops::normalize(&mut v);
                            v
                        })
                        .collect()
                })
                .collect();
            run(grid, &groups, blocks);
        }
    }

    #[test]
    fn counts_eliminated_duplicates() {
        let grid = ProcessorGrid::new(1, 3);
        let groups = Groups::rows_of(grid);
        let mut w = SimWorld::bluegene(grid);
        // Everyone sends {42} to destination position 0: two duplicates
        // are eliminated along the way (union of three singletons).
        let blocks = vec![
            vec![vec![42], vec![], vec![]],
            vec![vec![42], vec![], vec![]],
            vec![vec![42], vec![], vec![]],
        ];
        let got = reduce_scatter_union_ring(&mut w, OpClass::Fold, &groups, blocks).unwrap();
        assert_eq!(got[0].to_vec(), vec![42]);
        assert_eq!(w.stats.total_dups_eliminated(), 2);
    }

    #[test]
    fn union_reduces_wire_volume_vs_alltoall() {
        // With heavy duplication, the ring's en-route union moves fewer
        // vertices than a direct all-to-all would (3 senders x 100 verts
        // each to one dest = 200 on the wire for a2a from non-owners;
        // ring caps each hop at 100).
        let grid = ProcessorGrid::new(1, 4);
        let groups = Groups::rows_of(grid);
        let mut w = SimWorld::bluegene(grid);
        let common: Vec<Vert> = (0..100).collect();
        let blocks: Vec<Vec<Vec<Vert>>> = (0..4)
            .map(|_| vec![common.clone(), vec![], vec![], vec![]])
            .collect();
        reduce_scatter_union_ring(&mut w, OpClass::Fold, &groups, blocks).unwrap();
        // Each of the 3 ring steps moves at most 100 verts into the next
        // holder for block 0 (plus zero-size blocks skipped as empty...
        // empty payloads still sent: ring always forwards). Upper bound:
        let wire = w.stats.class(OpClass::Fold).wire_verts;
        assert!(wire <= 3 * 100, "wire={wire}");
        assert_eq!(w.stats.total_dups_eliminated(), 300);
    }

    #[test]
    fn singleton_groups_are_identity() {
        let grid = ProcessorGrid::new(2, 1); // rows of 1 member each
        let groups = Groups::rows_of(grid);
        let mut w = SimWorld::bluegene(grid);
        let blocks = vec![vec![vec![1, 2, 3]], vec![vec![4]]];
        let got = reduce_scatter_union_ring(&mut w, OpClass::Fold, &groups, blocks).unwrap();
        let got: Vec<Vec<Vert>> = got.into_iter().map(VertSet::into_vec).collect();
        assert_eq!(got, vec![vec![1, 2, 3], vec![4]]);
        assert_eq!(w.time(), 0.0);
    }

    #[test]
    fn hybrid_policy_matches_list_only_bit_for_bit() {
        // A/B determinism: dense blocks densify to bitmaps under the
        // hybrid policy, yet results, duplicate counts, and simulated
        // clocks stay bit-identical to the list-only run.
        let grid = ProcessorGrid::new(1, 6);
        let groups = Groups::rows_of(grid);
        let mk_blocks = || -> Vec<Vec<Vec<Vert>>> {
            (0..6)
                .map(|r| {
                    (0..6)
                        .map(|d| {
                            // Dense overlapping ranges: ripe for bitmaps.
                            ((r * 40) as Vert..(r * 40 + 400 + d as u64)).collect()
                        })
                        .collect()
                })
                .collect()
        };
        let mut hybrid = SimWorld::bluegene(grid);
        let got_h =
            reduce_scatter_union_ring(&mut hybrid, OpClass::Fold, &groups, mk_blocks()).unwrap();
        let mut listy = SimWorld::bluegene(grid).with_vset_policy(VsetPolicy::list_only());
        let got_l =
            reduce_scatter_union_ring(&mut listy, OpClass::Fold, &groups, mk_blocks()).unwrap();
        assert!(
            hybrid.stats.setops.bitmap_unions > 0,
            "dense blocks must actually exercise the bitmap path"
        );
        assert_eq!(listy.stats.setops.bitmap_unions, 0);
        assert!(got_h.iter().any(VertSet::is_bitmap));
        for (h, l) in got_h.iter().zip(&got_l) {
            assert_eq!(h.to_vec(), l.to_vec());
        }
        assert_eq!(hybrid.time().to_bits(), listy.time().to_bits());
        assert_eq!(
            hybrid.memcpy_time().to_bits(),
            listy.memcpy_time().to_bits()
        );
        assert_eq!(
            hybrid.stats.total_dups_eliminated(),
            listy.stats.total_dups_eliminated()
        );
    }
}
