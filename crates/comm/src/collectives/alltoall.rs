//! Direct (targeted) all-to-all exchange within groups.
//!
//! This is the paper's baseline implementation of both expand and fold:
//! every rank sends each peer exactly the vertices that peer needs, in a
//! single message round. Message lengths follow the §3.1 bounds
//! (`(n/P)·γ(·)·(group−1)` in expectation), but every rank pays one
//! software-overhead α per peer, and no en-route duplicate elimination
//! happens.

use super::Groups;
use crate::error::CommError;
use crate::sim::{Inbox, SimWorld};
use crate::stats::OpClass;
use crate::Vert;

/// Per-rank send list: `(destination rank, payload)`. Destinations must
/// be in the sender's group. Empty payloads are skipped (no message).
pub type SendList = Vec<(usize, Vec<Vert>)>;

/// Execute a targeted all-to-all within every group simultaneously.
///
/// `sends[rank]` lists that rank's outgoing messages. Returns per-rank
/// inboxes sorted by sender.
pub fn alltoallv(
    world: &mut SimWorld,
    class: OpClass,
    groups: &Groups,
    sends: Vec<SendList>,
) -> Result<Vec<Inbox>, CommError> {
    debug_assert_eq!(sends.len(), world.p());
    let mut flat = Vec::new();
    for (from, list) in sends.into_iter().enumerate() {
        for (to, payload) in list {
            debug_assert_eq!(
                groups.locate(from).0,
                groups.locate(to).0,
                "all-to-all destination {to} is outside {from}'s group"
            );
            if payload.is_empty() {
                continue;
            }
            flat.push((from, to, payload));
        }
    }
    world.exchange(class, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcessorGrid;

    #[test]
    fn delivers_within_rows() {
        let grid = ProcessorGrid::new(2, 3);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::rows_of(grid);
        // Rank 0 (row 0) sends to ranks 1 and 2; rank 4 (row 1) to rank 5.
        let mut sends: Vec<SendList> = vec![Vec::new(); 6];
        sends[0] = vec![(1, vec![10]), (2, vec![20, 21])];
        sends[4] = vec![(5, vec![50])];
        let inboxes = alltoallv(&mut w, OpClass::Fold, &groups, sends).unwrap();
        assert_eq!(inboxes[1], vec![(0, vec![10])]);
        assert_eq!(inboxes[2], vec![(0, vec![20, 21])]);
        assert_eq!(inboxes[5], vec![(4, vec![50])]);
        assert_eq!(w.stats.class(OpClass::Fold).received_verts, 4);
    }

    #[test]
    fn empty_payloads_send_nothing() {
        let grid = ProcessorGrid::new(1, 2);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::rows_of(grid);
        let sends: Vec<SendList> = vec![vec![(1, vec![])], Vec::new()];
        let inboxes = alltoallv(&mut w, OpClass::Fold, &groups, sends).unwrap();
        assert!(inboxes[1].is_empty());
        assert_eq!(w.stats.class(OpClass::Fold).messages, 0);
        assert_eq!(w.time(), 0.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn cross_group_send_rejected() {
        let grid = ProcessorGrid::new(2, 2);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::rows_of(grid);
        // Rank 0 is in row 0; rank 2 is in row 1.
        let mut sends: Vec<SendList> = vec![Vec::new(); 4];
        sends[0] = vec![(2, vec![1])];
        let _ = alltoallv(&mut w, OpClass::Fold, &groups, sends);
    }
}
