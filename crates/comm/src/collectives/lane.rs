//! Lane-masked targeted all-to-all for multi-source BFS waves.
//!
//! The batched executor exchanges [`LaneSet`]s — sorted vertex lists
//! with one lane-mask word per vertex — over the same exchange
//! machinery as every other collective. Each non-empty set travels as
//! **two payloads to the same destination in one round**: first the
//! sorted vertex list (rides the adaptive codec's delta/bitmap frames),
//! then the mask words (arbitrary `u64`s, so the codec's sortedness
//! scan falls back to raw frames — correct under every `WirePolicy`).
//! Inbox entries are sorted by sender and *stable* for multiple
//! payloads from one sender, so the receiver re-pairs the two payloads
//! positionally. Faults, retransmits, α–β–hop charges, and wire-byte
//! accounting all apply unchanged because the payloads are ordinary
//! exchange messages.

use super::Groups;
use crate::error::CommError;
use crate::lane::LaneSet;
use crate::sim::SimWorld;
use crate::stats::OpClass;

/// Per-rank send list: `(destination rank, lane set)`. Destinations
/// must be in the sender's group. Empty sets are skipped entirely (no
/// message, matching [`super::alltoall::alltoallv`]).
pub type LaneSendList = Vec<(usize, LaneSet)>;

/// Execute a lane-masked targeted all-to-all within every group
/// simultaneously. Returns per-rank inboxes of reassembled lane sets in
/// sender order.
pub fn lane_alltoallv(
    world: &mut SimWorld,
    class: OpClass,
    groups: &Groups,
    sends: Vec<LaneSendList>,
) -> Result<Vec<Vec<LaneSet>>, CommError> {
    debug_assert_eq!(sends.len(), world.p());
    let mut flat = Vec::new();
    for (from, list) in sends.into_iter().enumerate() {
        for (to, set) in list {
            debug_assert_eq!(
                groups.locate(from).0,
                groups.locate(to).0,
                "lane all-to-all destination {to} is outside {from}'s group"
            );
            flat.push((from, to, set));
        }
    }
    lane_exchange(world, class, flat)
}

/// Execute one round of lane-set point-to-point sends with no group
/// structure — the control-shaped twin of [`lane_alltoallv`], used by
/// the batched path walk whose reply round crosses both rows and
/// columns (candidate owners answer the walked vertex's owner wherever
/// it sits on the grid). Each non-empty set still travels as two
/// payloads (sorted vertex list on the codec frames, mask words raw),
/// and faults, retransmits, and α–β–hop charges apply unchanged.
pub fn lane_exchange(
    world: &mut SimWorld,
    class: OpClass,
    sends: Vec<(usize, usize, LaneSet)>,
) -> Result<Vec<Vec<LaneSet>>, CommError> {
    let mut flat = Vec::new();
    for (from, to, set) in sends {
        if set.is_empty() {
            continue;
        }
        let (verts, masks) = set.into_payloads();
        flat.push((from, to, verts));
        flat.push((from, to, masks));
    }
    let inboxes = world.exchange(class, flat)?;
    Ok(inboxes
        .into_iter()
        .map(|inbox| {
            debug_assert!(
                inbox.len().is_multiple_of(2),
                "lane framing: odd payload count in inbox"
            );
            inbox
                .chunks_exact(2)
                .map(|pair| {
                    let (s0, ref verts) = pair[0];
                    let (s1, ref masks) = pair[1];
                    assert_eq!(
                        s0, s1,
                        "lane framing: vertex and mask payloads from different senders"
                    );
                    LaneSet::from_payloads(verts.clone(), masks.clone())
                })
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcessorGrid;
    use crate::wire::WirePolicy;

    fn set(pairs: &[(u64, u64)]) -> LaneSet {
        LaneSet::from_pairs(pairs.to_vec())
    }

    #[test]
    fn delivers_lane_sets_within_rows() {
        let grid = ProcessorGrid::new(2, 2);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::rows_of(grid);
        let mut sends: Vec<LaneSendList> = vec![Vec::new(); 4];
        sends[0] = vec![(1, set(&[(10, 0b01), (12, 0b11)]))];
        sends[1] = vec![(0, set(&[(3, 0b10)])), (1, set(&[(7, 0b100)]))];
        sends[3] = vec![(2, LaneSet::new())]; // empty: no message
        let inboxes = lane_alltoallv(&mut w, OpClass::Fold, &groups, sends).unwrap();
        assert_eq!(inboxes[0], vec![set(&[(3, 0b10)])]);
        assert_eq!(
            inboxes[1],
            vec![set(&[(10, 0b01), (12, 0b11)]), set(&[(7, 0b100)])]
        );
        assert!(inboxes[2].is_empty());
        assert!(inboxes[3].is_empty());
    }

    #[test]
    fn survives_every_wire_policy() {
        // The mask payload is unsorted; the codec must fall back to raw
        // frames rather than corrupt it, under every policy.
        for mode in [
            crate::wire::WireMode::Raw,
            crate::wire::WireMode::Auto,
            crate::wire::WireMode::Delta,
            crate::wire::WireMode::Bitmap,
        ] {
            let policy = WirePolicy::with_mode(mode);
            let grid = ProcessorGrid::new(1, 2);
            let mut w = SimWorld::bluegene(grid).with_wire_policy(policy);
            let groups = Groups::rows_of(grid);
            let payload = set(&[(2, u64::MAX), (5, 1), (9, 0x8000_0000_0000_0000)]);
            let sends: Vec<LaneSendList> = vec![vec![(1, payload.clone())], Vec::new()];
            let inboxes = lane_alltoallv(&mut w, OpClass::Expand, &groups, sends).unwrap();
            assert_eq!(inboxes[1], vec![payload.clone()]);
        }
    }
}
