//! Ring frontier gather: the bottom-up direction's group collective.
//!
//! A bottom-up superstep (Beamer-style direction optimization over the
//! paper's 2D partition) needs every rank to hold the *whole* frontier
//! slice covering its edge block's columns. The owners of those
//! vertices are exactly the rank's processor-column peers — the block
//! rows tiling block column `j` are owned by ranks `(0..R, j)` — so the
//! collective is an all-gather **with set union** within each group:
//! every member contributes its own (sorted) frontier, and every member
//! ends with one deduplicated [`VertSet`] covering the group.
//!
//! Implementation: the same `g−1`-step neighbour-only ring as
//! [`crate::collectives::allgather`], but the received pieces fold into
//! a hybrid [`VertSet`] accumulator under the world's
//! [`crate::vset::VsetPolicy`] — a dense frontier densifies into a
//! fixed-range bitmap, and (under the auto/bitmap wire modes) travels
//! as fixed-range bitmap wire frames. Contributions are disjoint
//! (owned ranges do not overlap), so the unions eliminate no
//! duplicates; they are charged as merge memcpy traffic exactly like
//! the union-fold rings. Empty pieces are not sent — absence of a ring
//! message *is* the empty piece, identically in both runtimes, so the
//! data-round fault schedule stays aligned with the threaded mirror.

// Parallel index loops over per-rank arrays are intentional here.
#![allow(clippy::needless_range_loop)]

use super::Groups;
use crate::error::CommError;
use crate::sim::SimWorld;
use crate::stats::OpClass;
use crate::vset::VertSet;
use crate::{Vert, VERT_BYTES};

/// Run a union frontier gather in every group simultaneously.
///
/// `contribution[rank]` is the rank's own frontier (sorted,
/// deduplicated). Returns, for every rank, the union of its whole
/// group's contributions (its own included) as a [`VertSet`].
pub fn frontier_gather(
    world: &mut SimWorld,
    class: OpClass,
    groups: &Groups,
    contribution: Vec<Vec<Vert>>,
) -> Result<Vec<VertSet>, CommError> {
    debug_assert_eq!(contribution.len(), world.p());
    let p = world.p();
    let policy = world.vset_policy();

    // in_flight[rank] is the piece this rank forwards at the next step
    // (initially its own contribution); gathered[rank] accumulates the
    // union.
    let mut gathered: Vec<VertSet> = contribution
        .iter()
        .map(|c| VertSet::from_sorted(c.clone()))
        .collect();
    let mut in_flight: Vec<Vec<Vert>> = contribution;

    let steps = groups.max_group_len().saturating_sub(1);
    for s in 0..steps {
        let mut sends = Vec::with_capacity(p);
        for g in groups.groups() {
            let glen = g.len();
            if glen < 2 || s >= glen - 1 {
                continue;
            }
            for (pos, &rank) in g.iter().enumerate() {
                if in_flight[rank].is_empty() {
                    continue;
                }
                let succ = g[(pos + 1) % glen];
                sends.push((rank, succ, in_flight[rank].clone()));
            }
        }
        let inboxes = world.exchange(class, sends)?;
        let mut merge_bytes = vec![0u64; p];
        for (rank, mut inbox) in inboxes.into_iter().enumerate() {
            debug_assert!(inbox.len() <= 1, "ring delivers at most one piece per step");
            let (gi, _) = groups.locate(rank);
            if groups.groups()[gi].len() < 2 || s >= groups.groups()[gi].len() - 1 {
                continue;
            }
            if let Some((_, piece)) = inbox.pop() {
                merge_bytes[rank] = (piece.len() + gathered[rank].len()) as u64 * VERT_BYTES;
                let own = &mut gathered[rank];
                let was_bitmap = own.is_bitmap();
                let dups = own.union_in(&piece, &policy);
                let is_bitmap = own.is_bitmap();
                debug_assert_eq!(dups, 0, "owned frontiers are disjoint");
                world.note_dups(rank, dups);
                world.stats.note_union(is_bitmap);
                if is_bitmap && !was_bitmap {
                    world.stats.note_densify();
                }
                in_flight[rank] = piece;
            } else {
                // No message means the predecessor's piece was empty;
                // forward the empty piece on.
                in_flight[rank].clear();
            }
        }
        world.memcpy_phase(&merge_bytes);
    }

    Ok(gathered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcessorGrid;
    use crate::vset::VsetPolicy;

    fn reference(groups: &Groups, contribution: &[Vec<Vert>]) -> Vec<Vec<Vert>> {
        (0..contribution.len())
            .map(|rank| {
                let mut all: Vec<Vert> = groups
                    .group_of(rank)
                    .iter()
                    .flat_map(|&m| contribution[m].iter().copied())
                    .collect();
                all.sort_unstable();
                all.dedup();
                all
            })
            .collect()
    }

    #[test]
    fn every_member_holds_the_group_union() {
        let grid = ProcessorGrid::new(4, 2); // columns of 4
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        let contribution: Vec<Vec<Vert>> = (0..8u64).map(|r| vec![r * 10, r * 10 + 1]).collect();
        let expect = reference(&groups, &contribution);
        let got = frontier_gather(&mut w, OpClass::Expand, &groups, contribution).unwrap();
        for (rank, set) in got.iter().enumerate() {
            assert_eq!(set.to_vec(), expect[rank], "rank {rank}");
        }
        assert!(w.time() > 0.0);
    }

    #[test]
    fn empty_contributions_send_nothing() {
        // Only rank 0 of a 3-member column has a frontier: the ring
        // moves exactly its piece — two messages, no empty frames.
        let grid = ProcessorGrid::new(3, 1);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        let contribution = vec![vec![5, 9], Vec::new(), Vec::new()];
        let got = frontier_gather(&mut w, OpClass::Expand, &groups, contribution).unwrap();
        for set in &got {
            assert_eq!(set.to_vec(), vec![5, 9]);
        }
        assert_eq!(w.stats.class(OpClass::Expand).messages, 2);
    }

    #[test]
    fn all_empty_is_free_of_messages() {
        let grid = ProcessorGrid::new(4, 1);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        let got = frontier_gather(&mut w, OpClass::Expand, &groups, vec![Vec::new(); 4]).unwrap();
        assert!(got.iter().all(VertSet::is_empty));
        assert_eq!(w.stats.class(OpClass::Expand).messages, 0);
    }

    #[test]
    fn singleton_group_no_communication() {
        let grid = ProcessorGrid::new(1, 3); // columns of 1
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        let got = frontier_gather(
            &mut w,
            OpClass::Expand,
            &groups,
            vec![vec![1], vec![2], vec![3]],
        )
        .unwrap();
        assert_eq!(got[0].to_vec(), vec![1]);
        assert_eq!(got[2].to_vec(), vec![3]);
        assert_eq!(w.time(), 0.0);
        assert_eq!(w.stats.total_received(), 0);
    }

    #[test]
    fn hybrid_policy_matches_list_only_bit_for_bit() {
        // Dense disjoint ranges densify into bitmaps; results and
        // simulated clocks must match the list-only run exactly.
        let grid = ProcessorGrid::new(6, 1);
        let groups = Groups::cols_of(grid);
        let mk = || -> Vec<Vec<Vert>> {
            (0..6u64)
                .map(|r| (r * 500..r * 500 + 480).collect())
                .collect()
        };
        let mut hybrid = SimWorld::bluegene(grid);
        let got_h = frontier_gather(&mut hybrid, OpClass::Expand, &groups, mk()).unwrap();
        let mut listy = SimWorld::bluegene(grid).with_vset_policy(VsetPolicy::list_only());
        let got_l = frontier_gather(&mut listy, OpClass::Expand, &groups, mk()).unwrap();
        assert!(got_h.iter().any(VertSet::is_bitmap));
        assert!(got_l.iter().all(|s| !s.is_bitmap()));
        for (h, l) in got_h.iter().zip(&got_l) {
            assert_eq!(h.to_vec(), l.to_vec());
        }
        assert_eq!(hybrid.time().to_bits(), listy.time().to_bits());
        assert_eq!(hybrid.stats.total_dups_eliminated(), 0);
    }

    #[test]
    fn mixed_group_sizes() {
        let grid = ProcessorGrid::new(1, 5);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::new(5, vec![vec![0, 1, 2], vec![3, 4]]);
        let contribution: Vec<Vec<Vert>> = (0..5u64).map(|r| vec![r]).collect();
        let expect = reference(&groups, &contribution);
        let got = frontier_gather(&mut w, OpClass::Expand, &groups, contribution).unwrap();
        for (rank, set) in got.iter().enumerate() {
            assert_eq!(set.to_vec(), expect[rank], "rank {rank}");
        }
    }
}
