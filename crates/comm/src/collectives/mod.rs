//! Collective communication operations.
//!
//! The paper's BFS needs two group collectives per level:
//!
//! * **expand** — every member of a processor-column makes its frontier
//!   known to the column;
//! * **fold** — neighbor sets are delivered to their owners within a
//!   processor-row, ideally with duplicate elimination en route.
//!
//! Each operation comes in several strategies, which the evaluation
//! compares (Table 1, Figure 7, and the ablation benches):
//!
//! | op     | strategy | module |
//! |--------|----------|--------|
//! | any    | direct all-to-all (`alltoallv`) | [`alltoall`] |
//! | expand | ring all-gather (send everything to everyone) | [`allgather`] |
//! | expand | ring frontier gather with set union (bottom-up supersteps) | [`frontier`] |
//! | fold   | ring reduce-scatter with set-union | [`reduce_scatter`] |
//! | both   | §3.2.2 two-phase grouped ring | [`two_phase`] |
//!
//! All collectives operate on a **partition of the world's ranks into
//! groups** and advance every group simultaneously, one global message
//! round per algorithm step, so that simulated time reflects the fact
//! that all processor-rows (or columns) communicate concurrently.

pub mod allgather;
pub mod alltoall;
pub mod frontier;
pub mod lane;
pub mod reduce_scatter;
pub mod two_phase;

use crate::topology::ProcessorGrid;

/// A partition of ranks `0..p` into disjoint groups, with O(1) member
/// lookup. Collectives take this instead of a bare `Vec<Vec<usize>>` so
/// the partition invariant is checked once.
#[derive(Debug, Clone)]
pub struct Groups {
    groups: Vec<Vec<usize>>,
    /// rank -> (group index, position within group)
    member: Vec<(usize, usize)>,
}

impl Groups {
    /// Build from explicit groups; panics unless the groups are disjoint,
    /// non-empty, and cover exactly `0..p`.
    pub fn new(p: usize, groups: Vec<Vec<usize>>) -> Self {
        let mut member = vec![(usize::MAX, usize::MAX); p];
        let mut covered = 0;
        for (gi, g) in groups.iter().enumerate() {
            assert!(!g.is_empty(), "group {gi} is empty");
            for (pos, &r) in g.iter().enumerate() {
                assert!(r < p, "rank {r} out of range 0..{p}");
                assert_eq!(
                    member[r],
                    (usize::MAX, usize::MAX),
                    "rank {r} appears in more than one group"
                );
                member[r] = (gi, pos);
                covered += 1;
            }
        }
        assert_eq!(covered, p, "groups must cover every rank exactly once");
        Self { groups, member }
    }

    /// The processor-rows of a grid (fold groups).
    pub fn rows_of(grid: ProcessorGrid) -> Self {
        Self::new(
            grid.len(),
            (0..grid.rows()).map(|r| grid.row_group(r)).collect(),
        )
    }

    /// The processor-columns of a grid (expand groups).
    pub fn cols_of(grid: ProcessorGrid) -> Self {
        Self::new(
            grid.len(),
            (0..grid.cols()).map(|c| grid.column_group(c)).collect(),
        )
    }

    /// One group containing every rank.
    pub fn world(p: usize) -> Self {
        Self::new(p, vec![(0..p).collect()])
    }

    /// The groups themselves.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Total ranks covered.
    pub fn ranks(&self) -> usize {
        self.member.len()
    }

    /// `(group index, position)` of a rank.
    pub fn locate(&self, rank: usize) -> (usize, usize) {
        self.member[rank]
    }

    /// The group a rank belongs to.
    pub fn group_of(&self, rank: usize) -> &[usize] {
        &self.groups[self.member[rank].0]
    }

    /// Size of the largest group.
    pub fn max_group_len(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_cols_partition() {
        let grid = ProcessorGrid::new(3, 4);
        let rows = Groups::rows_of(grid);
        assert_eq!(rows.groups().len(), 3);
        assert_eq!(rows.max_group_len(), 4);
        let cols = Groups::cols_of(grid);
        assert_eq!(cols.groups().len(), 4);
        assert_eq!(cols.max_group_len(), 3);
        // locate is consistent.
        for rank in 0..grid.len() {
            let (gi, pos) = rows.locate(rank);
            assert_eq!(rows.groups()[gi][pos], rank);
            let (gi, pos) = cols.locate(rank);
            assert_eq!(cols.groups()[gi][pos], rank);
        }
    }

    #[test]
    #[should_panic(expected = "appears in more than one group")]
    fn overlapping_groups_rejected() {
        Groups::new(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "cover every rank")]
    fn incomplete_groups_rejected() {
        Groups::new(3, vec![vec![0, 1]]);
    }

    #[test]
    fn world_group() {
        let g = Groups::world(5);
        assert_eq!(g.groups().len(), 1);
        assert_eq!(g.group_of(3), &[0, 1, 2, 3, 4]);
    }
}
