//! Ring all-gather within groups.
//!
//! Every member contributes one payload; afterwards every member holds
//! every contribution. This is the unoptimized expand ("all-gather
//! collective communication ... equivalent to the case where all vertices
//! are on the frontier", §2.2): simple, torus-friendly (neighbour-only
//! traffic), but its received volume grows with the group size, which is
//! exactly the non-scalability the paper's targeted expand avoids.
//!
//! Implementation: the classic `g−1`-step ring. At each step every member
//! forwards to its ring successor the piece it received in the previous
//! step (initially its own contribution). The originator of a received
//! piece is inferred from the step number — at step `s`, the piece
//! arriving at position `i` originated at position `(i − 1 − s) mod g` —
//! so no header words pollute the vertex accounting. All groups step in
//! lockstep, so a world-wide step is one message round.

// Parallel index loops over per-rank arrays are intentional here.
#![allow(clippy::needless_range_loop)]

use super::Groups;
use crate::error::CommError;
use crate::sim::{Inbox, SimWorld};
use crate::stats::OpClass;
use crate::Vert;

/// Run a ring all-gather in every group simultaneously.
///
/// `contribution[rank]` is what each rank offers. Returns, for every
/// rank, the list `(source rank, payload)` covering the rank's whole
/// group (including itself), sorted by source rank.
pub fn allgather_ring(
    world: &mut SimWorld,
    class: OpClass,
    groups: &Groups,
    contribution: Vec<Vec<Vert>>,
) -> Result<Vec<Inbox>, CommError> {
    debug_assert_eq!(contribution.len(), world.p());
    let p = world.p();

    // gathered[rank] accumulates (source, payload).
    let mut gathered: Vec<Vec<(usize, Vec<Vert>)>> =
        (0..p).map(|r| vec![(r, contribution[r].clone())]).collect();
    // in_flight[rank] is the piece this rank forwards at the next step.
    let mut in_flight: Vec<Vec<Vert>> = contribution;

    let steps = groups.max_group_len().saturating_sub(1);
    for s in 0..steps {
        let mut sends = Vec::with_capacity(p);
        for g in groups.groups() {
            let glen = g.len();
            // A group of size glen only participates in its first glen-1
            // steps; afterwards it idles while larger groups finish.
            if glen < 2 || s >= glen - 1 {
                continue;
            }
            for (pos, &rank) in g.iter().enumerate() {
                let succ = g[(pos + 1) % glen];
                sends.push((rank, succ, in_flight[rank].clone()));
            }
        }
        let inboxes = world.exchange(class, sends)?;
        for (rank, mut inbox) in inboxes.into_iter().enumerate() {
            debug_assert!(inbox.len() <= 1, "ring delivers at most one piece per step");
            if let Some((_, piece)) = inbox.pop() {
                let (gi, pos) = groups.locate(rank);
                let g = &groups.groups()[gi];
                let origin_pos = (pos + 2 * g.len() - 1 - s) % g.len();
                gathered[rank].push((g[origin_pos], piece.clone()));
                in_flight[rank] = piece;
            }
        }
    }

    for g in gathered.iter_mut() {
        g.sort_by_key(|(src, _)| *src);
    }
    Ok(gathered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcessorGrid;

    #[test]
    fn everyone_gets_everything() {
        let grid = ProcessorGrid::new(4, 2); // columns of 4
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        let contribution: Vec<Vec<Vert>> = (0..8).map(|r| vec![r as Vert * 100]).collect();
        let out = allgather_ring(&mut w, OpClass::Expand, &groups, contribution).unwrap();
        for rank in 0..8 {
            let group = groups.group_of(rank);
            assert_eq!(out[rank].len(), group.len());
            for &(src, ref payload) in &out[rank] {
                assert!(group.contains(&src));
                assert_eq!(payload, &vec![src as Vert * 100], "rank {rank} src {src}");
            }
        }
    }

    #[test]
    fn mixed_group_sizes() {
        // Rows of a 2x3 grid have 3 members; also exercise a world group
        // partitioned as {0..3} and {3..6}? Instead: columns of 3x2 grid
        // (size 3) run alongside nothing smaller; use explicit groups of
        // different sizes.
        let grid = ProcessorGrid::new(1, 5);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::new(5, vec![vec![0, 1, 2], vec![3, 4]]);
        let contribution: Vec<Vec<Vert>> = (0..5).map(|r| vec![r as Vert]).collect();
        let out = allgather_ring(&mut w, OpClass::Expand, &groups, contribution).unwrap();
        assert_eq!(out[0], vec![(0, vec![0]), (1, vec![1]), (2, vec![2])]);
        assert_eq!(out[4], vec![(3, vec![3]), (4, vec![4])]);
    }

    #[test]
    fn singleton_group_no_communication() {
        let grid = ProcessorGrid::new(1, 3); // columns of 1
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        let out = allgather_ring(
            &mut w,
            OpClass::Expand,
            &groups,
            vec![vec![1], vec![2], vec![3]],
        )
        .unwrap();
        assert_eq!(out[0], vec![(0, vec![1])]);
        assert_eq!(w.time(), 0.0);
        assert_eq!(w.stats.total_received(), 0);
    }

    #[test]
    fn received_volume_scales_with_group_size() {
        // Each rank contributes 10 vertices; in a group of g, each rank
        // receives g-1 pieces of 10 vertices.
        let grid = ProcessorGrid::new(4, 1);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        let contribution = vec![vec![0; 10]; 4];
        allgather_ring(&mut w, OpClass::Expand, &groups, contribution).unwrap();
        for &r in &w.stats.received_per_rank {
            assert_eq!(r, 30);
        }
    }

    #[test]
    fn ring_takes_g_minus_1_rounds_of_messages() {
        let grid = ProcessorGrid::new(5, 1);
        let mut w = SimWorld::bluegene(grid);
        let groups = Groups::cols_of(grid);
        allgather_ring(&mut w, OpClass::Expand, &groups, vec![vec![7]; 5]).unwrap();
        // 4 rounds x 5 members = 20 wire messages.
        assert_eq!(w.stats.class(OpClass::Expand).messages, 20);
    }
}
