//! # bgl-comm — rank-based SPMD message-passing substrate
//!
//! The SC'05 BFS paper runs as an MPI-style SPMD program whose custom
//! collectives are built from point-to-point messages on the BlueGene/L
//! torus. This crate provides that layer for the reproduction, with two
//! interchangeable execution engines:
//!
//! * [`sim::SimWorld`] — a deterministic **superstep simulator**. The BFS
//!   algorithm is level-synchronous, so ranks only interact at collective
//!   boundaries; the simulator executes every rank's compute phase within
//!   one address space and routes messages between supersteps, while an
//!   α–β–hop cost model ([`bgl_torus::CostModel`]) attributes simulated
//!   time. This engine scales to tens of thousands of *simulated* ranks
//!   and is what the benchmark harness uses.
//! * [`threaded::ThreadedWorld`] — a real multi-threaded SPMD runtime
//!   (one OS thread per rank, `std::sync::mpsc` channels) for modest rank
//!   counts; used by the examples and to validate that the simulator and
//!   a real message-passing execution agree.
//!
//! Both engines accept a deterministic [`bgl_torus::FaultPlan`]: lossy
//! exchanges retransmit (charged through the cost model and counted in
//! [`stats::FaultStats`]), routes detour around dead links, and scheduled
//! rank deaths surface as typed [`error::CommError`]s instead of panics,
//! so the BFS layer can checkpoint and recover.
//!
//! On top of the engines, [`collectives`] implements the communication
//! patterns the paper studies:
//!
//! * targeted all-to-all (`alltoallv`) exchanges,
//! * ring all-gather,
//! * reduce-scatter with **set-union** reduction (the "union-fold"),
//! * the §3.2.2 **two-phase grouped-ring** fold and expand, which split a
//!   group into an `m × n` subgrid and pipeline messages in O(m+n) ring
//!   steps while unioning duplicates on the fly.
//!
//! All payloads are vertex indices (`u64`), matching the paper's messages.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod collectives;
pub mod error;
pub mod lane;
pub mod setops;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod topology;
pub mod vset;
pub mod wire;

pub use buffer::{ChunkPolicy, ScratchPool};
pub use error::CommError;
pub use lane::{LaneMask, LaneSet, MAX_LANES};
pub use sim::SimWorld;
pub use stats::{CommStats, FaultStats, OpClass, SetOpStats};
pub use threaded::{ThreadedWorld, WireCount};
pub use topology::ProcessorGrid;
pub use vset::{VertSet, VsetPolicy};
pub use wire::{WireFormat, WireMode, WirePolicy};

// Fault plans are authored against the torus model; re-export so BFS
// layers need not depend on `bgl_torus` directly to configure faults.
pub use bgl_torus::{ChaosSpec, FaultPlan, RankDeath};

// Trace types surface on both runtimes' handles; re-export so BFS
// layers can emit spans without depending on `bgl_trace` directly.
pub use bgl_trace::{EventKind, Phase, TraceBuffer, TraceDetail, TraceSink};

/// Vertex index payload type used in all messages (matches the paper's
/// global vertex indices; 64-bit so multi-billion-vertex configurations
/// remain addressable).
pub type Vert = u64;

/// Payload bytes occupied by one vertex index on the wire.
pub const VERT_BYTES: u64 = std::mem::size_of::<Vert>() as u64;
