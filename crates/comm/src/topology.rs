//! The R×C logical processor grid of the 2D-partitioned BFS.
//!
//! Processes are arranged in `R` rows and `C` columns (paper §2.2).
//! *Expand* communication happens within a **processor-column** (R
//! members), *fold* communication within a **processor-row** (C members).
//! The conventional 1D partitioning is the degenerate grid with `R = 1`
//! (Algorithm 1; only fold communication exists) or `C = 1` (the
//! transposed, "row-wise" 1D variant from Table 1).

use serde::{Deserialize, Serialize};

/// An `R × C` logical processor grid. Rank numbering is row-major:
/// `rank = row * C + col`, matching [`bgl_torus::LogicalArray`].
///
/// ```
/// use bgl_comm::ProcessorGrid;
/// let grid = ProcessorGrid::new(2, 3); // R = 2 rows, C = 3 columns
/// assert_eq!(grid.len(), 6);
/// assert_eq!(grid.rank_of(1, 2), 5);
/// assert_eq!(grid.row_group(0), vec![0, 1, 2]);   // a fold group
/// assert_eq!(grid.column_group(1), vec![1, 4]);   // an expand group
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessorGrid {
    rows: usize,
    cols: usize,
}

impl ProcessorGrid {
    /// Create an `R × C` grid; panics on zero extents.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid extents must be >= 1");
        Self { rows, cols }
    }

    /// A 1D (Algorithm 1) layout for `p` processes: `1 × p`.
    pub fn one_d(p: usize) -> Self {
        Self::new(1, p)
    }

    /// The transposed 1D layout: `p × 1` (Table 1's "32768×1").
    pub fn one_d_transposed(p: usize) -> Self {
        Self::new(p, 1)
    }

    /// The most balanced grid for `p` processes: `R` is the largest
    /// divisor of `p` with `R <= sqrt(p)`, and `C = p / R`.
    pub fn square_ish(p: usize) -> Self {
        assert!(p >= 1);
        let mut best = 1;
        let mut d = 1;
        while d * d <= p {
            if p.is_multiple_of(d) {
                best = d;
            }
            d += 1;
        }
        Self::new(best, p / best)
    }

    /// Number of rows (R).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (C).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of processes (P = R·C).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Grids are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when this grid is a 1D layout (R = 1 or C = 1).
    pub fn is_one_d(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// Rank of grid position `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Grid position `(row, col)` of `rank`.
    pub fn position_of(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.len());
        (rank / self.cols, rank % self.cols)
    }

    /// Row index of `rank`.
    pub fn row_of(&self, rank: usize) -> usize {
        rank / self.cols
    }

    /// Column index of `rank`.
    pub fn col_of(&self, rank: usize) -> usize {
        rank % self.cols
    }

    /// The ranks of processor-column `col` (an expand group), in row order.
    pub fn column_group(&self, col: usize) -> Vec<usize> {
        (0..self.rows).map(|r| self.rank_of(r, col)).collect()
    }

    /// The ranks of processor-row `row` (a fold group), in column order.
    pub fn row_group(&self, row: usize) -> Vec<usize> {
        (0..self.cols).map(|c| self.rank_of(row, c)).collect()
    }

    /// The logical-array view of this grid (for task mapping).
    pub fn logical_array(&self) -> bgl_torus::LogicalArray {
        bgl_torus::LogicalArray::new(self.rows, self.cols)
    }

    /// Factor a group size `g` into an `m × n` subgrid with `m·n = g` and
    /// `m` as close to `sqrt(g)` as possible (used by the two-phase
    /// grouped-ring collectives; a prime `g` degenerates to `1 × g`, a
    /// plain ring).
    pub fn subgrid_factor(g: usize) -> (usize, usize) {
        assert!(g >= 1);
        let mut m = 1;
        let mut d = 1;
        while d * d <= g {
            if g.is_multiple_of(d) {
                m = d;
            }
            d += 1;
        }
        (m, g / m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rank_roundtrip() {
        let g = ProcessorGrid::new(3, 5);
        for r in 0..3 {
            for c in 0..5 {
                let rank = g.rank_of(r, c);
                assert_eq!(g.position_of(rank), (r, c));
                assert_eq!(g.row_of(rank), r);
                assert_eq!(g.col_of(rank), c);
            }
        }
    }

    #[test]
    fn groups_cover_all_ranks_exactly_once() {
        let g = ProcessorGrid::new(4, 6);
        let mut seen = HashSet::new();
        for c in 0..6 {
            for r in g.column_group(c) {
                assert!(seen.insert(r));
            }
        }
        assert_eq!(seen.len(), g.len());
        let mut seen = HashSet::new();
        for r in 0..4 {
            for rank in g.row_group(r) {
                assert!(seen.insert(rank));
            }
        }
        assert_eq!(seen.len(), g.len());
    }

    #[test]
    fn one_d_layouts() {
        assert!(ProcessorGrid::one_d(8).is_one_d());
        assert_eq!(ProcessorGrid::one_d(8).rows(), 1);
        assert!(ProcessorGrid::one_d_transposed(8).is_one_d());
        assert_eq!(ProcessorGrid::one_d_transposed(8).cols(), 1);
        assert!(!ProcessorGrid::new(2, 4).is_one_d());
    }

    #[test]
    fn square_ish_prefers_balance() {
        assert_eq!(ProcessorGrid::square_ish(16), ProcessorGrid::new(4, 4));
        assert_eq!(ProcessorGrid::square_ish(12), ProcessorGrid::new(3, 4));
        assert_eq!(ProcessorGrid::square_ish(7), ProcessorGrid::new(1, 7));
        assert_eq!(ProcessorGrid::square_ish(1), ProcessorGrid::new(1, 1));
        assert_eq!(
            ProcessorGrid::square_ish(32768),
            ProcessorGrid::new(128, 256)
        );
    }

    #[test]
    fn subgrid_factor_properties() {
        for g in 1..200usize {
            let (m, n) = ProcessorGrid::subgrid_factor(g);
            assert_eq!(m * n, g);
            assert!(m <= n);
        }
        assert_eq!(ProcessorGrid::subgrid_factor(6), (2, 3));
        assert_eq!(ProcessorGrid::subgrid_factor(13), (1, 13));
    }

    #[test]
    fn column_group_members_share_column() {
        let g = ProcessorGrid::new(4, 3);
        for c in 0..3 {
            for rank in g.column_group(c) {
                assert_eq!(g.col_of(rank), c);
            }
        }
    }
}
