//! Hybrid vertex-set representation: sorted list or fixed-range bitmap.
//!
//! The union-fold collectives spend their compute budget merging sorted
//! vertex lists. On dense BFS levels (the bulk of total work on Poisson
//! graphs — see Buluç & Madduri, and Lv et al.'s "Compression and
//! Sieve") the accumulated set covers most of a rank's owned range, so a
//! fixed-range bitmap unions in `O(span/64)` word ORs instead of `O(n)`
//! element compares. [`VertSet`] starts as a sorted list and switches to
//! a bitmap once a [`VsetPolicy`] density threshold is crossed; it
//! switches back if later unions would stretch the range too thin.
//!
//! Determinism: a `VertSet` is a *set* — cardinalities, duplicate
//! counts, and ascending iteration order are identical for both
//! representations (the proptest suite in `tests/proptest_vset.rs`
//! asserts this). All simulator time charges are functions of
//! cardinalities only, so swapping representations never perturbs the
//! modelled clocks.

use crate::setops;
use crate::Vert;

/// When to switch a [`VertSet`] between representations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VsetPolicy {
    /// Master switch: when false, sets stay sorted lists forever (the
    /// seed behaviour; used by A/B determinism tests).
    pub bitmap_enabled: bool,
    /// Minimum cardinality before a bitmap is considered — tiny sets
    /// are cheaper as lists regardless of density.
    pub min_bitmap_len: usize,
    /// Density threshold exponent: densify when
    /// `count << density_shift >= span` (i.e. density ≥ 2^-shift).
    /// The default 6 makes the bitmap (1 bit/slot) no larger than the
    /// list (64 bits/element) at the switch point.
    pub density_shift: u32,
}

impl VsetPolicy {
    /// The default hybrid policy: densify at density ≥ 1/64 once a set
    /// holds at least 64 vertices.
    pub fn hybrid() -> Self {
        VsetPolicy {
            bitmap_enabled: true,
            min_bitmap_len: 64,
            density_shift: 6,
        }
    }

    /// Sorted lists only — the pre-hybrid seed behaviour.
    pub fn list_only() -> Self {
        VsetPolicy {
            bitmap_enabled: false,
            ..Self::hybrid()
        }
    }

    /// Whether a set of `count` elements spanning `span` slots should
    /// become (or be built as) a bitmap.
    fn prefers_bitmap(&self, count: usize, span: u64) -> bool {
        self.bitmap_enabled
            && count >= self.min_bitmap_len
            && (count as u64).checked_shl(self.density_shift) >= Some(span)
    }

    /// Whether an existing bitmap should *stay* a bitmap after growing
    /// to `span` slots with `count` elements. 4× hysteresis below the
    /// densify threshold prevents representation thrash and bounds
    /// bitmap memory at 4× the densify point.
    fn keeps_bitmap(&self, count: usize, span: u64) -> bool {
        self.bitmap_enabled && (count as u64).checked_shl(self.density_shift + 2) >= Some(span)
    }
}

impl Default for VsetPolicy {
    fn default() -> Self {
        Self::hybrid()
    }
}

/// Word-wise OR of `src` into `dst` (the dense union kernel). Returns
/// the number of bits already set in `dst` — the duplicates a sorted
/// merge would have eliminated. Slices must be equal length.
pub fn or_words(dst: &mut [u64], src: &[u64]) -> u64 {
    debug_assert_eq!(dst.len(), src.len());
    let mut dups = 0u64;
    for (d, s) in dst.iter_mut().zip(src) {
        dups += (*d & *s).count_ones() as u64;
        *d |= *s;
    }
    dups
}

/// Word-wise AND of two equal-length word slices (the dense intersect
/// kernel). Returns the popcount of the result.
pub fn and_words(dst: &mut [u64], src: &[u64]) -> u64 {
    debug_assert_eq!(dst.len(), src.len());
    let mut count = 0u64;
    for (d, s) in dst.iter_mut().zip(src) {
        *d &= *s;
        count += d.count_ones() as u64;
    }
    count
}

/// Fixed-range bitmap over vertex ids: bit `v - base` of the word array
/// is set iff `v` is in the set. `base` is 64-aligned so word offsets
/// between two bitmaps line up for [`or_words`].
#[derive(Debug, Clone)]
pub struct Bitmap {
    /// First representable vertex (multiple of 64).
    base: Vert,
    /// Bit words covering `base .. base + 64 * words.len()`.
    words: Vec<u64>,
    /// Number of set bits (maintained incrementally).
    count: usize,
}

impl Bitmap {
    /// Build from a non-empty sorted deduplicated slice.
    fn from_sorted(vs: &[Vert]) -> Bitmap {
        let base = vs[0] & !63;
        let span_words = ((vs[vs.len() - 1] - base) >> 6) as usize + 1;
        let mut bm = Bitmap {
            base,
            words: vec![0u64; span_words],
            count: 0,
        };
        for &v in vs {
            bm.insert(v);
        }
        bm
    }

    /// Slots this bitmap currently covers.
    fn span(&self) -> u64 {
        (self.words.len() as u64) << 6
    }

    /// Grow coverage to include `lo..=hi` (ids, not word indices).
    fn ensure(&mut self, lo: Vert, hi: Vert) {
        let new_base = self.base.min(lo & !63);
        if new_base < self.base {
            let extra = ((self.base - new_base) >> 6) as usize;
            let mut grown = vec![0u64; extra + self.words.len()];
            grown[extra..].copy_from_slice(&self.words);
            self.words = grown;
            self.base = new_base;
        }
        let needed = ((hi - self.base) >> 6) as usize + 1;
        if self.words.len() < needed {
            self.words.resize(needed, 0);
        }
    }

    /// Set bit `v` (must be in coverage). Returns false if already set.
    fn insert(&mut self, v: Vert) -> bool {
        let off = v - self.base;
        let mask = 1u64 << (off & 63);
        let w = &mut self.words[(off >> 6) as usize];
        if *w & mask != 0 {
            false
        } else {
            *w |= mask;
            self.count += 1;
            true
        }
    }

    /// Whether bit `v` is set.
    fn contains(&self, v: Vert) -> bool {
        if v < self.base {
            return false;
        }
        let off = v - self.base;
        let wi = (off >> 6) as usize;
        wi < self.words.len() && self.words[wi] & (1u64 << (off & 63)) != 0
    }
}

/// A set of vertex ids with a hybrid physical representation: sorted
/// `Vec<Vert>` when sparse, fixed-range bitmap when dense. All
/// operations preserve set semantics exactly — see the module docs for
/// the determinism argument.
#[derive(Debug, Clone)]
pub enum VertSet {
    /// Sorted, strictly ascending vertex list.
    List(Vec<Vert>),
    /// Dense fixed-range bitmap.
    Bitmap(Bitmap),
}

impl Default for VertSet {
    fn default() -> Self {
        VertSet::List(Vec::new())
    }
}

impl VertSet {
    /// The empty set (list representation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an already-sorted, deduplicated vector without copying.
    pub fn from_sorted(v: Vec<Vert>) -> Self {
        debug_assert!(setops::is_normalized(&v));
        VertSet::List(v)
    }

    /// Number of vertices in the set.
    pub fn len(&self) -> usize {
        match self {
            VertSet::List(v) => v.len(),
            VertSet::Bitmap(b) => b.count,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the set currently uses the bitmap representation.
    pub fn is_bitmap(&self) -> bool {
        matches!(self, VertSet::Bitmap(_))
    }

    /// Membership test.
    pub fn contains(&self, v: Vert) -> bool {
        match self {
            VertSet::List(l) => l.binary_search(&v).is_ok(),
            VertSet::Bitmap(b) => b.contains(v),
        }
    }

    /// Iterate the members in ascending order (both representations).
    pub fn iter(&self) -> VertSetIter<'_> {
        match self {
            VertSet::List(l) => VertSetIter::List(l.iter()),
            VertSet::Bitmap(b) => VertSetIter::Bitmap {
                base: b.base,
                words: &b.words,
                wi: 0,
                cur: b.words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Append the members, ascending, to `out` (for building wire
    /// payloads into pooled buffers).
    pub fn append_to(&self, out: &mut Vec<Vert>) {
        match self {
            VertSet::List(l) => out.extend_from_slice(l),
            VertSet::Bitmap(_) => out.extend(self.iter()),
        }
    }

    /// The members as a fresh sorted vector.
    pub fn to_vec(&self) -> Vec<Vert> {
        let mut out = Vec::with_capacity(self.len());
        self.append_to(&mut out);
        out
    }

    /// Consume the set into a sorted vector (free for lists).
    pub fn into_vec(self) -> Vec<Vert> {
        match self {
            VertSet::List(l) => l,
            VertSet::Bitmap(_) => self.to_vec(),
        }
    }

    /// Switch a list that crossed the density threshold to a bitmap.
    /// Returns true if the representation changed.
    pub fn maybe_densify(&mut self, policy: &VsetPolicy) -> bool {
        if let VertSet::List(l) = self {
            if !l.is_empty() {
                let span = l[l.len() - 1] - l[0] + 1;
                if policy.prefers_bitmap(l.len(), span) {
                    *self = VertSet::Bitmap(Bitmap::from_sorted(l));
                    return true;
                }
            }
        }
        false
    }

    /// Force the list representation (used when a union would stretch a
    /// bitmap past the policy's span budget).
    fn listify(&mut self) {
        if self.is_bitmap() {
            *self = VertSet::List(self.to_vec());
        }
    }

    /// Union a sorted, deduplicated slice into the set. Returns the
    /// number of duplicates eliminated (elements already present),
    /// matching [`setops::union_into`] on the list path exactly.
    pub fn union_in(&mut self, other: &[Vert], policy: &VsetPolicy) -> usize {
        if other.is_empty() {
            return 0;
        }
        debug_assert!(setops::is_normalized(other));
        match self {
            VertSet::List(a) => {
                let dups = setops::union_into(a, other);
                self.maybe_densify(policy);
                dups
            }
            VertSet::Bitmap(bm) => {
                let lo = bm.base.min(other[0]);
                let hi = (bm.base + bm.span() - 1).max(other[other.len() - 1]);
                let span = hi - (lo & !63) + 1;
                if !policy.keeps_bitmap(bm.count + other.len(), span) {
                    self.listify();
                    return self.union_in(other, policy);
                }
                bm.ensure(lo, hi);
                let mut dups = 0;
                for &v in other {
                    if !bm.insert(v) {
                        dups += 1;
                    }
                }
                dups
            }
        }
    }

    /// Union another `VertSet` into this one. Returns the duplicate
    /// count, identical to the list-merge result for the same two sets.
    pub fn union_set(&mut self, other: &VertSet, policy: &VsetPolicy) -> usize {
        match other {
            VertSet::List(l) => self.union_in(l, policy),
            VertSet::Bitmap(ob) => {
                if ob.count == 0 {
                    return 0;
                }
                if let VertSet::List(a) = self {
                    // Adopt the dense side as the accumulator, then fold
                    // the (sparser) list in; union is symmetric so the
                    // duplicate count is unchanged.
                    let list = std::mem::take(a);
                    *self = other.clone();
                    return self.union_in(&list, policy);
                }
                let VertSet::Bitmap(bm) = self else {
                    unreachable!()
                };
                let lo = bm.base.min(ob.base);
                let hi = (bm.base + bm.span() - 1).max(ob.base + ob.span() - 1);
                if !policy.keeps_bitmap(bm.count + ob.count, hi - lo + 1) {
                    self.listify();
                    return self.union_in(&other.to_vec(), policy);
                }
                bm.ensure(lo, hi);
                let off = ((ob.base - bm.base) >> 6) as usize;
                let dups = or_words(&mut bm.words[off..off + ob.words.len()], &ob.words);
                bm.count += ob.count - dups as usize;
                dups as usize
            }
        }
    }

    /// Intersection with another set, as a sorted vector. Uses the
    /// word-wise AND kernel when both sides are bitmaps.
    pub fn intersect_to_vec(&self, other: &VertSet) -> Vec<Vert> {
        match (self, other) {
            (VertSet::List(a), VertSet::List(b)) => setops::intersect(a, b),
            (VertSet::Bitmap(a), VertSet::Bitmap(b)) => {
                // Intersect over the overlapping word range only.
                let lo = a.base.max(b.base);
                let hi = (a.base + a.span()).min(b.base + b.span());
                if lo >= hi {
                    return Vec::new();
                }
                let words = ((hi - lo) >> 6) as usize;
                let ao = ((lo - a.base) >> 6) as usize;
                let bo = ((lo - b.base) >> 6) as usize;
                let mut acc = a.words[ao..ao + words].to_vec();
                and_words(&mut acc, &b.words[bo..bo + words]);
                let mut out = Vec::new();
                for (wi, &w) in acc.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        out.push(lo + ((wi as u64) << 6) + w.trailing_zeros() as u64);
                        w &= w - 1;
                    }
                }
                out
            }
            // Mixed: probe the bitmap for each list element.
            (VertSet::List(l), bm) | (bm, VertSet::List(l)) => {
                l.iter().copied().filter(|&v| bm.contains(v)).collect()
            }
        }
    }
}

impl PartialEq for VertSet {
    /// Semantic set equality — a list and a bitmap holding the same
    /// members compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for VertSet {}

/// Ascending iterator over a [`VertSet`]'s members.
pub enum VertSetIter<'a> {
    /// Iterating a sorted list.
    List(std::slice::Iter<'a, Vert>),
    /// Scanning bitmap words with `trailing_zeros`.
    Bitmap {
        /// First representable vertex of the bitmap.
        base: Vert,
        /// The word array.
        words: &'a [u64],
        /// Current word index.
        wi: usize,
        /// Remaining bits of the current word.
        cur: u64,
    },
}

impl Iterator for VertSetIter<'_> {
    type Item = Vert;

    fn next(&mut self) -> Option<Vert> {
        match self {
            VertSetIter::List(it) => it.next().copied(),
            VertSetIter::Bitmap {
                base,
                words,
                wi,
                cur,
            } => loop {
                if *cur != 0 {
                    let bit = cur.trailing_zeros() as u64;
                    *cur &= *cur - 1;
                    return Some(*base + ((*wi as u64) << 6) + bit);
                }
                *wi += 1;
                if *wi >= words.len() {
                    return None;
                }
                *cur = words[*wi];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hybrid() -> VsetPolicy {
        VsetPolicy::hybrid()
    }

    #[test]
    fn dense_list_densifies_and_round_trips() {
        let v: Vec<Vert> = (100..400).collect();
        let mut s = VertSet::from_sorted(v.clone());
        assert!(s.maybe_densify(&hybrid()));
        assert!(s.is_bitmap());
        assert_eq!(s.len(), v.len());
        assert_eq!(s.to_vec(), v);
        assert_eq!(s.iter().collect::<Vec<_>>(), v);
    }

    #[test]
    fn sparse_list_stays_a_list() {
        let v: Vec<Vert> = (0..100).map(|i| i * 1000).collect();
        let mut s = VertSet::from_sorted(v.clone());
        assert!(!s.maybe_densify(&hybrid()));
        assert!(!s.is_bitmap());
        assert_eq!(s.into_vec(), v);
    }

    #[test]
    fn union_dup_counts_match_across_representations() {
        let a: Vec<Vert> = (0..300).map(|i| i * 2).collect();
        let b: Vec<Vert> = (0..300).map(|i| i * 3).collect();
        let (reference, dups_ref) = setops::union(&a, &b);

        let mut list = VertSet::from_sorted(a.clone());
        let dups_list = list.union_in(&b, &VsetPolicy::list_only());
        assert!(!list.is_bitmap());
        assert_eq!(list.to_vec(), reference);
        assert_eq!(dups_list, dups_ref);

        let mut bm = VertSet::from_sorted(a);
        bm.maybe_densify(&hybrid());
        assert!(bm.is_bitmap());
        let dups_bm = bm.union_in(&b, &hybrid());
        assert_eq!(bm.to_vec(), reference);
        assert_eq!(dups_bm, dups_ref);
    }

    #[test]
    fn union_set_bitmap_bitmap_uses_word_kernel() {
        let a: Vec<Vert> = (64..640).collect();
        let b: Vec<Vert> = (320..960).collect();
        let mut sa = VertSet::from_sorted(a.clone());
        let mut sb = VertSet::from_sorted(b.clone());
        sa.maybe_densify(&hybrid());
        sb.maybe_densify(&hybrid());
        assert!(sa.is_bitmap() && sb.is_bitmap());
        let dups = sa.union_set(&sb, &hybrid());
        let (reference, dups_ref) = setops::union(&a, &b);
        assert_eq!(dups, dups_ref);
        assert_eq!(sa.to_vec(), reference);
    }

    #[test]
    fn list_adopts_bitmap_on_union_set() {
        let sparse = VertSet::from_sorted(vec![1, 500, 999]);
        let mut dense = VertSet::from_sorted((0..1000).collect());
        dense.maybe_densify(&hybrid());
        let mut acc = sparse;
        let dups = acc.union_set(&dense, &hybrid());
        assert_eq!(dups, 3);
        assert_eq!(acc.len(), 1000);
    }

    #[test]
    fn span_blowup_falls_back_to_list() {
        let mut s = VertSet::from_sorted((0..1000).collect());
        s.maybe_densify(&hybrid());
        assert!(s.is_bitmap());
        // A far-away element would stretch the bitmap over ~2^40 slots;
        // the policy falls back to the list representation instead.
        let dups = s.union_in(&[1 << 40], &hybrid());
        assert_eq!(dups, 0);
        assert!(!s.is_bitmap());
        assert_eq!(s.len(), 1001);
        assert!(s.contains(1 << 40));
    }

    #[test]
    fn contains_and_eq_are_representation_independent() {
        let v: Vec<Vert> = (128..512).collect();
        let list = VertSet::from_sorted(v.clone());
        let mut bm = VertSet::from_sorted(v);
        bm.maybe_densify(&hybrid());
        assert_eq!(list, bm);
        assert!(bm.contains(128) && bm.contains(511));
        assert!(!bm.contains(127) && !bm.contains(512) && !bm.contains(1 << 50));
    }

    #[test]
    fn intersect_matches_across_representations() {
        let a: Vec<Vert> = (0..600).map(|i| i * 2).collect();
        let b: Vec<Vert> = (0..400).map(|i| i * 3).collect();
        let expect = setops::intersect(&a, &b);
        let la = VertSet::from_sorted(a.clone());
        let lb = VertSet::from_sorted(b.clone());
        let mut ba = la.clone();
        let mut bb = lb.clone();
        ba.maybe_densify(&hybrid());
        bb.maybe_densify(&hybrid());
        assert!(ba.is_bitmap() && bb.is_bitmap());
        assert_eq!(la.intersect_to_vec(&lb), expect);
        assert_eq!(ba.intersect_to_vec(&bb), expect);
        assert_eq!(la.intersect_to_vec(&bb), expect);
        assert_eq!(ba.intersect_to_vec(&lb), expect);
    }

    #[test]
    fn or_words_counts_overlap() {
        let mut d = [0b1010u64, u64::MAX];
        let s = [0b0110u64, 1];
        let dups = or_words(&mut d, &s);
        assert_eq!(dups, 1 + 1);
        assert_eq!(d, [0b1110, u64::MAX]);
    }

    #[test]
    fn empty_set_operations() {
        let mut s = VertSet::new();
        assert!(s.is_empty());
        assert_eq!(s.union_in(&[], &hybrid()), 0);
        assert_eq!(s.union_set(&VertSet::new(), &hybrid()), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(s.intersect_to_vec(&VertSet::new()).is_empty());
    }
}
