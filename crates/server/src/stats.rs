//! Serving-side accounting: QPS, latency, batch occupancy, cache
//! effectiveness. All counters are exact and deterministic (driven by
//! the tick clock and simulated time, never wall time).

/// Aggregate counters for one server lifetime.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Queries admitted to the queue.
    pub submitted: u64,
    /// Submissions refused with backpressure.
    pub rejected: u64,
    /// Queries answered by a batched engine wave.
    pub served_engine: u64,
    /// Queries answered from the result cache.
    pub served_cache: u64,
    /// Queries whose deadline passed in the queue.
    pub expired: u64,
    /// Multi-source batches executed.
    pub batches: u64,
    /// Sum of batch occupancies (lanes actually used).
    pub lanes_total: u64,
    /// Largest batch occupancy seen.
    pub max_occupancy: u64,
    /// Total BFS waves (levels) across all batches.
    pub waves_total: u64,
    /// Batches whose every lane passed Graph500-style validation.
    pub validated_batches: u64,
    /// Simulated seconds spent in batched engine waves.
    pub engine_sim_time: f64,
    /// Simulated seconds spent serving cache hits (modelled response
    /// copies).
    pub cache_sim_time: f64,
    /// Lane-masked batched path-walk waves executed.
    pub path_walks: u64,
    /// Path lanes advanced across all walk waves.
    pub path_walk_lanes: u64,
    /// Walk hops executed (each shared by every active lane).
    pub path_walk_hops: u64,
    /// Control rounds spent in walk waves (three per hop).
    pub path_walk_rounds: u64,
    /// Simulated seconds spent in batched path walks.
    pub path_walk_sim_time: f64,
    /// Cache hits that served a `FullTraversal`.
    pub cache_hit_full: u64,
    /// Cache hits that served a `Distance`.
    pub cache_hit_distance: u64,
    /// Cache hits that served a `Path`.
    pub cache_hit_path: u64,
    /// Response bytes served from cache to `FullTraversal` queries.
    pub cache_bytes_full: u64,
    /// Response bytes served from cache to `Distance` queries.
    pub cache_bytes_distance: u64,
    /// Response bytes served from cache to `Path` queries.
    pub cache_bytes_path: u64,
    /// Sum of queue depths sampled at each pump (open-loop pressure).
    pub queue_depth_sum: u64,
    /// Pumps that sampled the queue depth.
    pub queue_depth_samples: u64,
    /// Deepest queue seen at a pump.
    pub queue_depth_max: u64,
    /// Sum of per-query latencies in ticks (admission → completion).
    pub latency_ticks_sum: u64,
    /// Largest per-query latency in ticks.
    pub latency_ticks_max: u64,
    /// Served `FullTraversal` queries.
    pub kind_full: u64,
    /// Served `Distance` queries.
    pub kind_distance: u64,
    /// Served `Path` queries.
    pub kind_path: u64,
}

impl ServerStats {
    /// Queries answered (engine + cache; excludes expirations).
    pub fn served_total(&self) -> u64 {
        self.served_engine + self.served_cache
    }

    /// Mean lanes per batch.
    pub fn occupancy_mean(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.lanes_total as f64 / self.batches as f64
        }
    }

    /// Served queries per simulated second of total serving time
    /// (engine waves + cache copies + batched path walks).
    pub fn qps(&self) -> f64 {
        let t = self.engine_sim_time + self.cache_sim_time + self.path_walk_sim_time;
        if t == 0.0 {
            0.0
        } else {
            self.served_total() as f64 / t
        }
    }

    /// Mean path lanes per walk wave (batching effectiveness).
    pub fn path_walk_occupancy_mean(&self) -> f64 {
        if self.path_walks == 0 {
            0.0
        } else {
            self.path_walk_lanes as f64 / self.path_walks as f64
        }
    }

    /// Mean queue depth over all pump samples.
    pub fn queue_depth_mean(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Mean simulated seconds of engine time per engine-served query.
    pub fn engine_time_per_query(&self) -> f64 {
        if self.served_engine == 0 {
            0.0
        } else {
            self.engine_sim_time / self.served_engine as f64
        }
    }

    /// Mean simulated seconds per cache-served query.
    pub fn cache_time_per_query(&self) -> f64 {
        if self.served_cache == 0 {
            0.0
        } else {
            self.cache_sim_time / self.served_cache as f64
        }
    }

    /// Mean per-query latency in ticks.
    pub fn latency_ticks_mean(&self) -> f64 {
        let done = self.served_total() + self.expired;
        if done == 0 {
            0.0
        } else {
            self.latency_ticks_sum as f64 / done as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = ServerStats {
            served_engine: 8,
            served_cache: 2,
            batches: 4,
            lanes_total: 10,
            engine_sim_time: 2.0,
            cache_sim_time: 0.5,
            latency_ticks_sum: 30,
            ..ServerStats::default()
        };
        assert_eq!(s.served_total(), 10);
        assert!((s.occupancy_mean() - 2.5).abs() < 1e-12);
        assert!((s.qps() - 4.0).abs() < 1e-12);
        assert!((s.engine_time_per_query() - 0.25).abs() < 1e-12);
        assert!((s.cache_time_per_query() - 0.25).abs() < 1e-12);
        assert!((s.latency_ticks_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let s = ServerStats::default();
        assert_eq!(s.qps(), 0.0);
        assert_eq!(s.occupancy_mean(), 0.0);
        assert_eq!(s.engine_time_per_query(), 0.0);
        assert_eq!(s.cache_time_per_query(), 0.0);
        assert_eq!(s.latency_ticks_mean(), 0.0);
        assert_eq!(s.path_walk_occupancy_mean(), 0.0);
        assert_eq!(s.queue_depth_mean(), 0.0);
    }

    #[test]
    fn walk_time_feeds_qps() {
        let s = ServerStats {
            served_engine: 4,
            engine_sim_time: 1.0,
            path_walk_sim_time: 1.0,
            path_walks: 2,
            path_walk_lanes: 7,
            queue_depth_sum: 9,
            queue_depth_samples: 3,
            ..ServerStats::default()
        };
        assert!((s.qps() - 2.0).abs() < 1e-12);
        assert!((s.path_walk_occupancy_mean() - 3.5).abs() < 1e-12);
        assert!((s.queue_depth_mean() - 3.0).abs() < 1e-12);
    }
}
