//! Serving-side accounting: QPS, latency, batch occupancy, cache
//! effectiveness. All counters are exact and deterministic (driven by
//! the tick clock and simulated time, never wall time).

/// Aggregate counters for one server lifetime.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Queries admitted to the queue.
    pub submitted: u64,
    /// Submissions refused with backpressure.
    pub rejected: u64,
    /// Queries answered by a batched engine wave.
    pub served_engine: u64,
    /// Queries answered from the result cache.
    pub served_cache: u64,
    /// Queries whose deadline passed in the queue.
    pub expired: u64,
    /// Multi-source batches executed.
    pub batches: u64,
    /// Sum of batch occupancies (lanes actually used).
    pub lanes_total: u64,
    /// Largest batch occupancy seen.
    pub max_occupancy: u64,
    /// Total BFS waves (levels) across all batches.
    pub waves_total: u64,
    /// Batches whose every lane passed Graph500-style validation.
    pub validated_batches: u64,
    /// Simulated seconds spent in batched engine waves.
    pub engine_sim_time: f64,
    /// Simulated seconds spent serving cache hits (modelled response
    /// copies) and path walks.
    pub cache_sim_time: f64,
    /// Sum of per-query latencies in ticks (admission → completion).
    pub latency_ticks_sum: u64,
    /// Largest per-query latency in ticks.
    pub latency_ticks_max: u64,
    /// Served `FullTraversal` queries.
    pub kind_full: u64,
    /// Served `Distance` queries.
    pub kind_distance: u64,
    /// Served `Path` queries.
    pub kind_path: u64,
}

impl ServerStats {
    /// Queries answered (engine + cache; excludes expirations).
    pub fn served_total(&self) -> u64 {
        self.served_engine + self.served_cache
    }

    /// Mean lanes per batch.
    pub fn occupancy_mean(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.lanes_total as f64 / self.batches as f64
        }
    }

    /// Served queries per simulated second of total serving time.
    pub fn qps(&self) -> f64 {
        let t = self.engine_sim_time + self.cache_sim_time;
        if t == 0.0 {
            0.0
        } else {
            self.served_total() as f64 / t
        }
    }

    /// Mean simulated seconds of engine time per engine-served query.
    pub fn engine_time_per_query(&self) -> f64 {
        if self.served_engine == 0 {
            0.0
        } else {
            self.engine_sim_time / self.served_engine as f64
        }
    }

    /// Mean simulated seconds per cache-served query.
    pub fn cache_time_per_query(&self) -> f64 {
        if self.served_cache == 0 {
            0.0
        } else {
            self.cache_sim_time / self.served_cache as f64
        }
    }

    /// Mean per-query latency in ticks.
    pub fn latency_ticks_mean(&self) -> f64 {
        let done = self.served_total() + self.expired;
        if done == 0 {
            0.0
        } else {
            self.latency_ticks_sum as f64 / done as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = ServerStats {
            served_engine: 8,
            served_cache: 2,
            batches: 4,
            lanes_total: 10,
            engine_sim_time: 2.0,
            cache_sim_time: 0.5,
            latency_ticks_sum: 30,
            ..ServerStats::default()
        };
        assert_eq!(s.served_total(), 10);
        assert!((s.occupancy_mean() - 2.5).abs() < 1e-12);
        assert!((s.qps() - 4.0).abs() < 1e-12);
        assert!((s.engine_time_per_query() - 0.25).abs() < 1e-12);
        assert!((s.cache_time_per_query() - 0.25).abs() < 1e-12);
        assert!((s.latency_ticks_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let s = ServerStats::default();
        assert_eq!(s.qps(), 0.0);
        assert_eq!(s.occupancy_mean(), 0.0);
        assert_eq!(s.engine_time_per_query(), 0.0);
        assert_eq!(s.cache_time_per_query(), 0.0);
        assert_eq!(s.latency_ticks_mean(), 0.0);
    }
}
