//! Bounded FIFO admission queue with backpressure and deadlines.
//!
//! Admission is the only place the server says "no": when the queue is
//! at capacity, [`AdmissionQueue::submit`] returns
//! [`AdmissionError::QueueFull`] and the caller is expected to retry
//! after the server drains a batch — classic bounded-buffer
//! backpressure, no silent dropping. Deadlines are ticks on the
//! server's deterministic clock; expiry is *checked at batch-formation
//! time* (a lazy sweep), so an expired query costs nothing beyond its
//! queue slot.

use crate::query::{AdmissionError, QueryId, QueryKind, Request};
use std::collections::VecDeque;

/// Bounded FIFO of pending queries.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    q: VecDeque<Request>,
    next_id: QueryId,
}

impl AdmissionQueue {
    /// Empty queue holding at most `capacity` pending queries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        Self {
            capacity,
            q: VecDeque::with_capacity(capacity.min(1024)),
            next_id: 0,
        }
    }

    /// Admit a query at tick `now`, expiring `deadline` ticks later
    /// (`None` = never). Fails with backpressure when full.
    pub fn submit(
        &mut self,
        kind: QueryKind,
        now: u64,
        deadline: Option<u64>,
    ) -> Result<QueryId, AdmissionError> {
        if self.q.len() >= self.capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.capacity,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.q.push_back(Request {
            id,
            kind,
            submitted_tick: now,
            deadline_tick: deadline.map(|d| now + d),
        });
        Ok(id)
    }

    /// Pop the oldest pending query.
    pub fn pop(&mut self) -> Option<Request> {
        self.q.pop_front()
    }

    /// Return a popped query to the head (batch was full; it keeps its
    /// place for the next tick).
    pub fn push_front(&mut self, req: Request) {
        self.q.push_front(req);
    }

    /// Pending queries.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total queries ever admitted.
    pub fn admitted(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(source: u64) -> QueryKind {
        QueryKind::FullTraversal { source }
    }

    #[test]
    fn fifo_order_and_ids() {
        let mut aq = AdmissionQueue::new(4);
        let a = aq.submit(q(1), 0, None).unwrap();
        let b = aq.submit(q(2), 0, None).unwrap();
        assert!(a < b);
        assert_eq!(aq.pop().unwrap().id, a);
        assert_eq!(aq.pop().unwrap().id, b);
        assert!(aq.pop().is_none());
    }

    #[test]
    fn backpressure_at_capacity() {
        let mut aq = AdmissionQueue::new(2);
        aq.submit(q(1), 0, None).unwrap();
        aq.submit(q(2), 0, None).unwrap();
        assert_eq!(
            aq.submit(q(3), 0, None),
            Err(AdmissionError::QueueFull { capacity: 2 })
        );
        aq.pop();
        aq.submit(q(3), 1, None).unwrap();
        assert_eq!(aq.admitted(), 3);
    }

    #[test]
    fn deadlines_are_absolute_ticks() {
        let mut aq = AdmissionQueue::new(2);
        aq.submit(q(1), 10, Some(5)).unwrap();
        aq.submit(q(2), 10, None).unwrap();
        assert_eq!(aq.pop().unwrap().deadline_tick, Some(15));
        assert_eq!(aq.pop().unwrap().deadline_tick, None);
    }

    #[test]
    fn push_front_preserves_head() {
        let mut aq = AdmissionQueue::new(4);
        aq.submit(q(1), 0, None).unwrap();
        aq.submit(q(2), 0, None).unwrap();
        let head = aq.pop().unwrap();
        let head_id = head.id;
        aq.push_front(head);
        assert_eq!(aq.pop().unwrap().id, head_id);
    }
}
