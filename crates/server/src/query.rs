//! Query and response types for the serving layer.

use bgl_graph::Vertex;
use std::sync::Arc;

/// Server-assigned query identifier (monotone per server).
pub type QueryId = u64;

/// One BFS query against the resident graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Full single-source traversal: every vertex's BFS level.
    FullTraversal {
        /// Search root.
        source: Vertex,
    },
    /// Hop distance from `source` to `target` (`None` if disconnected).
    Distance {
        /// Search root.
        source: Vertex,
        /// Query target.
        target: Vertex,
    },
    /// A shortest `source`→`target` path via `bfs_core::path`
    /// (`None` if disconnected).
    Path {
        /// Search root.
        source: Vertex,
        /// Query target.
        target: Vertex,
    },
}

impl QueryKind {
    /// The search root — the batching key: queries with equal sources
    /// share one lane.
    pub fn source(&self) -> Vertex {
        match *self {
            QueryKind::FullTraversal { source }
            | QueryKind::Distance { source, .. }
            | QueryKind::Path { source, .. } => source,
        }
    }

    /// Short label for stats and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::FullTraversal { .. } => "full",
            QueryKind::Distance { .. } => "distance",
            QueryKind::Path { .. } => "path",
        }
    }
}

/// A submitted query waiting in the admission queue.
#[derive(Debug, Clone)]
pub struct Request {
    /// Server-assigned id.
    pub id: QueryId,
    /// What was asked.
    pub kind: QueryKind,
    /// Tick at which the query was admitted.
    pub submitted_tick: u64,
    /// Latest tick at which a batch may still serve this query; a batch
    /// forming at a later tick answers [`Outcome::Expired`] instead
    /// (`None` = no deadline).
    pub deadline_tick: Option<u64>,
}

/// The answer payload of a completed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Full per-vertex level array (shared with the result cache).
    Levels(Arc<Vec<u32>>),
    /// Hop distance, `None` if the target is unreachable.
    Distance(Option<u32>),
    /// Shortest path, `None` if the target is unreachable.
    Path(Option<Vec<Vertex>>),
    /// The query's deadline passed before a batch could serve it.
    Expired,
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Served by lane `lane` of multi-source batch `batch`.
    Batch {
        /// Batch sequence number.
        batch: u32,
        /// Lane index within the batch.
        lane: u8,
    },
    /// Answered from the LRU result cache without touching the engines.
    Cache,
    /// Never executed: expired in the queue.
    Expired,
}

/// One completed query.
#[derive(Debug, Clone)]
pub struct Response {
    /// The id [`crate::BglServer::submit`] returned.
    pub id: QueryId,
    /// The original query.
    pub kind: QueryKind,
    /// The answer.
    pub outcome: Outcome,
    /// Execution route.
    pub served_by: ServedBy,
    /// Tick of admission.
    pub submitted_tick: u64,
    /// Tick of completion (latency in ticks = completed − submitted).
    pub completed_tick: u64,
    /// Simulated seconds of engine/cache work attributed to this query:
    /// the whole batch wave's simulated time for batch-served queries
    /// (every query in the batch waited on the same wave), the modelled
    /// response-copy time for cache hits, zero for expirations.
    pub sim_service_time: f64,
}

/// Why a submission was refused (backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded admission queue is at capacity; retry after the
    /// server drains a batch.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}
