//! Cost-aware result cache of full level arrays, keyed by
//! `(graph_id, source)`.
//!
//! Every engine-served lane deposits its level array here (behind an
//! `Arc`, shared with any `FullTraversal` responses) together with the
//! simulated cost of recomputing it — the lane's share of its batch's
//! engine time. A later `Distance`/`Path`/`FullTraversal` query on the
//! same source is then answered without re-running the engines:
//! distances read straight out of the array, paths walk the distributed
//! batched protocol over the cached levels (see `server.rs`). The
//! `graph_id` half of the key fingerprints the loaded
//! [`bgl_graph::GraphSpec`], so a server restarted on a different graph
//! can never serve stale levels.
//!
//! ## Eviction: GreedyDual-Size over an exact-LRU deque
//!
//! Plain LRU treats a lane that cost fifty waves to compute the same as
//! one that cost two. Admission instead assigns each entry the
//! GreedyDual-Size priority `H = L + cost / footprint` — recomputation
//! cost (simulated seconds) per resident byte, on top of the cache's
//! inflation clock `L`. Hits refresh `H` against the current clock;
//! eviction removes the minimum-`H` entry and advances `L` to the
//! victim's priority, so entries age out unless their value keeps being
//! re-proven. When every entry carries the same weight the priorities
//! collapse onto the recency order and the scan (front-to-back, first
//! strict minimum wins) evicts the front — exactly the LRU the serving
//! layer shipped with.
//!
//! The store stays a recency-ordered deque with linear key scans —
//! serving-layer capacities are tens-to-thousands of entries, where the
//! scan is noise next to one level array's footprint.

use bgl_graph::Vertex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cache key: the graph fingerprint and the search root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Fingerprint of the loaded graph spec.
    pub graph_id: u64,
    /// Search root whose levels are cached.
    pub source: Vertex,
}

/// One resident level array with its eviction weight.
#[derive(Debug)]
struct Entry {
    key: CacheKey,
    levels: Arc<Vec<u32>>,
    /// Simulated seconds to recompute this array (lane share of its
    /// batch's engine time).
    cost: f64,
    /// GreedyDual-Size priority: clock-at-touch + cost / footprint.
    priority: f64,
}

/// Cost-aware store of level arrays (GreedyDual-Size admission over an
/// exact-LRU recency deque).
#[derive(Debug, Default)]
pub struct ResultCache {
    capacity: usize,
    /// Inflation clock: rises to the victim's priority on eviction.
    clock: f64,
    /// Front = least recently used, back = most recently used.
    entries: VecDeque<Entry>,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// Byte footprint a cached level array occupies (4 bytes per vertex).
fn footprint(levels: &[u32]) -> f64 {
    (4 * levels.len()) as f64
}

impl ResultCache {
    /// Cache holding at most `capacity` level arrays (0 = disabled:
    /// every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Whether the cache can hold anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up `key`, refreshing its recency and its priority against
    /// the current inflation clock on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<Arc<Vec<u32>>> {
        match self.entries.iter().position(|e| e.key == key) {
            Some(i) => {
                self.hits += 1;
                // bgl-lint: allow(r1, reason = "i came from position() on the same deque, so remove(i) is in bounds")
                let mut entry = self.entries.remove(i).unwrap();
                entry.priority = self.clock + entry.cost / footprint(&entry.levels);
                let levels = entry.levels.clone();
                self.entries.push_back(entry);
                Some(levels)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key` with the simulated recomputation cost
    /// `cost`, evicting the minimum-priority entry if at capacity.
    pub fn insert(&mut self, key: CacheKey, levels: Arc<Vec<u32>>, cost: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|e| e.key == key) {
            self.entries.remove(i);
        } else if self.entries.len() >= self.capacity {
            self.evict();
        }
        let priority = self.clock + cost / footprint(&levels);
        self.entries.push_back(Entry {
            key,
            levels,
            cost,
            priority,
        });
    }

    /// Remove the minimum-priority entry and advance the inflation
    /// clock to its priority. Ties resolve to the *earliest* (least
    /// recently used) entry — the strict `<` scan front-to-back — so
    /// equal weights reduce to exact LRU.
    fn evict(&mut self) {
        let mut victim = 0;
        for (i, e) in self.entries.iter().enumerate() {
            if e.priority < self.entries[victim].priority {
                victim = i;
            }
        }
        // bgl-lint: allow(r1, reason = "evict is only called with a non-empty deque and victim indexes it")
        let gone = self.entries.remove(victim).unwrap();
        self.clock = self.clock.max(gone.priority);
        self.evictions += 1;
    }

    /// Maximum resident entries (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of resident level arrays.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| 4 * e.levels.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: u64) -> CacheKey {
        CacheKey {
            graph_id: 99,
            source,
        }
    }

    fn levels(tag: u32) -> Arc<Vec<u32>> {
        Arc::new(vec![tag; 4])
    }

    #[test]
    fn equal_weights_reduce_to_exact_lru() {
        let mut c = ResultCache::new(2);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), levels(1), 1.0);
        c.insert(key(2), levels(2), 1.0);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(key(1)).unwrap()[0], 1);
        c.insert(key(3), levels(3), 1.0);
        assert!(c.get(key(2)).is_none());
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.evictions, 1);
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn expensive_entries_outlive_recent_cheap_ones() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), levels(1), 100.0);
        c.insert(key(2), levels(2), 0.001);
        // 2 is more recent, but 1 is two orders of magnitude costlier
        // to recompute: the cheap entry is the victim.
        c.insert(key(3), levels(3), 0.001);
        assert!(c.get(key(2)).is_none(), "cheap recent entry evicted");
        assert!(c.get(key(1)).is_some(), "expensive entry retained");
    }

    #[test]
    fn inflation_clock_ages_out_stale_expensive_entries() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), levels(1), 10.0);
        // A stream of cheap entries keeps evicting each other, driving
        // the clock up past the stale expensive entry's priority.
        for s in 2..50u64 {
            c.insert(key(s), levels(s as u32), 5.0);
        }
        assert!(
            c.get(key(1)).is_none(),
            "unreferenced entry must age out no matter its cost"
        );
    }

    #[test]
    fn hits_reprove_value_against_the_clock() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), levels(1), 2.0);
        for s in 2..20u64 {
            c.insert(key(s), levels(s as u32), 2.0);
            // Entry 1 is re-touched each round: its priority tracks the
            // rising clock and the churning newcomers lose instead.
            assert!(c.get(key(1)).is_some(), "after inserting {s}");
        }
    }

    #[test]
    fn graph_id_partitions_the_key_space() {
        let mut c = ResultCache::new(4);
        c.insert(
            CacheKey {
                graph_id: 1,
                source: 7,
            },
            levels(1),
            1.0,
        );
        assert!(c
            .get(CacheKey {
                graph_id: 2,
                source: 7
            })
            .is_none());
        assert!(c
            .get(CacheKey {
                graph_id: 1,
                source: 7
            })
            .is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        assert!(!c.enabled());
        c.insert(key(1), levels(1), 1.0);
        assert!(c.get(key(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), levels(1), 1.0);
        c.insert(key(1), levels(9), 1.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), 16);
        assert_eq!(c.get(key(1)).unwrap()[0], 9);
    }
}
