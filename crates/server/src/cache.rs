//! LRU cache of full level arrays, keyed by `(graph_id, source)`.
//!
//! Every engine-served lane deposits its level array here (behind an
//! `Arc`, shared with any `FullTraversal` responses). A later
//! `Distance`/`Path`/`FullTraversal` query on the same source is then
//! answered without touching the engines at all: distances read
//! straight out of the array, paths walk level-downhill over the
//! host-side adjacency oracle (see `server.rs`). The `graph_id` half of
//! the key fingerprints the loaded [`bgl_graph::GraphSpec`], so a
//! server restarted on a different graph can never serve stale levels.
//!
//! The store is a recency-ordered deque with linear key scans —
//! serving-layer capacities are tens-to-thousands of entries, where the
//! scan is noise next to one level array's footprint. Eviction is exact
//! LRU: hits move to the back, inserts evict the front.

use bgl_graph::Vertex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cache key: the graph fingerprint and the search root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Fingerprint of the loaded graph spec.
    pub graph_id: u64,
    /// Search root whose levels are cached.
    pub source: Vertex,
}

/// Exact-LRU store of level arrays.
#[derive(Debug, Default)]
pub struct LruCache {
    capacity: usize,
    /// Front = least recently used, back = most recently used.
    entries: VecDeque<(CacheKey, Arc<Vec<u32>>)>,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl LruCache {
    /// Cache holding at most `capacity` level arrays (0 = disabled:
    /// every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Whether the cache can hold anything.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<Arc<Vec<u32>>> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.remove(i).unwrap();
                let levels = entry.1.clone();
                self.entries.push_back(entry);
                Some(levels)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least recently used
    /// entry if at capacity.
    pub fn insert(&mut self, key: CacheKey, levels: Arc<Vec<u32>>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        } else if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
        self.entries.push_back((key, levels));
    }

    /// Maximum resident entries (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(source: u64) -> CacheKey {
        CacheKey {
            graph_id: 99,
            source,
        }
    }

    fn levels(tag: u32) -> Arc<Vec<u32>> {
        Arc::new(vec![tag; 4])
    }

    #[test]
    fn hit_miss_and_eviction_order() {
        let mut c = LruCache::new(2);
        assert!(c.get(key(1)).is_none());
        c.insert(key(1), levels(1));
        c.insert(key(2), levels(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(key(1)).unwrap()[0], 1);
        c.insert(key(3), levels(3));
        assert!(c.get(key(2)).is_none());
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert_eq!(c.evictions, 1);
        assert_eq!(c.hits, 3);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn graph_id_partitions_the_key_space() {
        let mut c = LruCache::new(4);
        c.insert(
            CacheKey {
                graph_id: 1,
                source: 7,
            },
            levels(1),
        );
        assert!(c
            .get(CacheKey {
                graph_id: 2,
                source: 7
            })
            .is_none());
        assert!(c
            .get(CacheKey {
                graph_id: 1,
                source: 7
            })
            .is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        assert!(!c.enabled());
        c.insert(key(1), levels(1));
        assert!(c.get(key(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = LruCache::new(2);
        c.insert(key(1), levels(1));
        c.insert(key(1), levels(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(key(1)).unwrap()[0], 9);
    }
}
