//! Seeded Zipfian query-workload generator.
//!
//! Real query traffic is popularity-skewed: a few sources (landmarks,
//! hub entities) dominate. The generator draws sources from a Zipf
//! distribution over a pool of `hot_sources` candidates spread evenly
//! across the vertex id space (rank `r` has weight `1/r^theta`), and
//! query kinds from a configurable mix. Everything flows from one
//! seeded ChaCha stream — the same spec always produces the same query
//! sequence, which is what makes the serving benchmarks and the CI
//! gates deterministic.

use crate::query::QueryKind;
use bgl_graph::Vertex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Relative frequencies of the three query kinds (need not sum to 1;
/// they are normalized).
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    /// Weight of [`QueryKind::FullTraversal`].
    pub full: f64,
    /// Weight of [`QueryKind::Distance`].
    pub distance: f64,
    /// Weight of [`QueryKind::Path`].
    pub path: f64,
}

impl Default for QueryMix {
    /// Distance-heavy, the realistic serving shape: point lookups
    /// dominate, full traversals are rare analytical queries.
    fn default() -> Self {
        Self {
            full: 0.1,
            distance: 0.6,
            path: 0.3,
        }
    }
}

/// A deterministic query workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub queries: usize,
    /// Size of the Zipf candidate-source pool.
    pub hot_sources: usize,
    /// Zipf exponent θ (0 = uniform over the pool; 1 ≈ classic web
    /// skew).
    pub theta: f64,
    /// Query-kind mix.
    pub mix: QueryMix,
    /// ChaCha seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A Zipf(θ=1) workload of `queries` queries over a 16-source pool.
    pub fn zipf(queries: usize, seed: u64) -> Self {
        Self {
            queries,
            hot_sources: 16,
            theta: 1.0,
            mix: QueryMix::default(),
            seed,
        }
    }

    /// The candidate source pool for a graph of `n` vertices: pool
    /// rank `r` maps to vertex `r·⌊n/pool⌋`, spreading the hot set
    /// across the ownership partition (and therefore across processor
    /// rows/columns).
    pub fn source_pool(&self, n: u64) -> Vec<Vertex> {
        let pool = (self.hot_sources.max(1) as u64).min(n);
        let stride = (n / pool).max(1);
        (0..pool).map(|r| r * stride).collect()
    }

    /// Generate the query sequence for a graph of `n` vertices.
    pub fn generate(&self, n: u64) -> Vec<QueryKind> {
        assert!(n >= 1, "workload needs a non-empty graph");
        let sources = self.source_pool(n);
        // Zipf CDF over pool ranks: weight(r) = 1/(r+1)^theta.
        let mut cdf = Vec::with_capacity(sources.len());
        let mut acc = 0.0f64;
        for r in 0..sources.len() {
            acc += 1.0 / ((r + 1) as f64).powf(self.theta);
            cdf.push(acc);
        }
        let total = acc;

        let (wf, wd, wp) = (
            self.mix.full.max(0.0),
            self.mix.distance.max(0.0),
            self.mix.path.max(0.0),
        );
        let wsum = wf + wd + wp;
        assert!(wsum > 0.0, "query mix must have positive total weight");

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        (0..self.queries)
            .map(|_| {
                let u = rng.gen::<f64>() * total;
                let idx = cdf.partition_point(|&c| c < u).min(sources.len() - 1);
                let source = sources[idx];
                let k = rng.gen::<f64>() * wsum;
                if k < wf {
                    QueryKind::FullTraversal { source }
                } else {
                    let target = rng.gen_range(0..n);
                    if k < wf + wd {
                        QueryKind::Distance { source, target }
                    } else {
                        QueryKind::Path { source, target }
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let spec = WorkloadSpec::zipf(100, 7);
        assert_eq!(spec.generate(10_000), spec.generate(10_000));
        let other = WorkloadSpec { seed: 8, ..spec };
        assert_ne!(spec.generate(10_000), other.generate(10_000));
    }

    #[test]
    fn sources_come_from_the_pool_and_skew_to_the_head() {
        let spec = WorkloadSpec {
            queries: 2_000,
            hot_sources: 8,
            theta: 1.0,
            mix: QueryMix::default(),
            seed: 3,
        };
        let pool = spec.source_pool(80_000);
        assert_eq!(pool.len(), 8);
        let qs = spec.generate(80_000);
        let mut counts = vec![0usize; pool.len()];
        for q in &qs {
            let i = pool.iter().position(|&s| s == q.source()).expect("in pool");
            counts[i] += 1;
        }
        // Zipf head dominates the tail.
        assert!(counts[0] > counts[7] * 2, "no skew: {counts:?}");
    }

    #[test]
    fn mix_extremes() {
        let spec = WorkloadSpec {
            queries: 50,
            hot_sources: 4,
            theta: 0.0,
            mix: QueryMix {
                full: 1.0,
                distance: 0.0,
                path: 0.0,
            },
            seed: 1,
        };
        assert!(spec
            .generate(1_000)
            .iter()
            .all(|q| matches!(q, QueryKind::FullTraversal { .. })));
    }

    #[test]
    fn pool_clamps_to_small_graphs() {
        let spec = WorkloadSpec {
            queries: 10,
            hot_sources: 1_000,
            theta: 0.5,
            mix: QueryMix::default(),
            seed: 1,
        };
        let pool = spec.source_pool(6);
        assert_eq!(pool.len(), 6);
        assert!(spec.generate(6).iter().all(|q| q.source() < 6));
    }
}
