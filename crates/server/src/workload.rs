//! Seeded Zipfian query-workload generator and open-loop arrival
//! processes.
//!
//! Real query traffic is popularity-skewed: a few sources (landmarks,
//! hub entities) dominate. The generator draws sources from a Zipf
//! distribution over a pool of `hot_sources` candidates spread evenly
//! across the vertex id space (rank `r` has weight `1/r^theta`), and
//! query kinds from a configurable mix. [`ArrivalProcess`] then decides
//! *when* those queries hit the admission queue: a fixed count per tick
//! (closed-loop chunking), a Poisson stream, or a bursty on/off stream
//! that concentrates the same mean rate into occasional floods — the
//! regimes that stress queue depth and deadline-miss rates. Everything
//! flows from seeded ChaCha streams — the same spec always produces
//! the same query and arrival sequences, which is what makes the
//! serving benchmarks and the CI gates deterministic.

use crate::query::QueryKind;
use bgl_graph::Vertex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Relative frequencies of the three query kinds (need not sum to 1;
/// they are normalized).
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    /// Weight of [`QueryKind::FullTraversal`].
    pub full: f64,
    /// Weight of [`QueryKind::Distance`].
    pub distance: f64,
    /// Weight of [`QueryKind::Path`].
    pub path: f64,
}

impl Default for QueryMix {
    /// Distance-heavy, the realistic serving shape: point lookups
    /// dominate, full traversals are rare analytical queries.
    fn default() -> Self {
        Self {
            full: 0.1,
            distance: 0.6,
            path: 0.3,
        }
    }
}

/// A deterministic query workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub queries: usize,
    /// Size of the Zipf candidate-source pool.
    pub hot_sources: usize,
    /// Zipf exponent θ (0 = uniform over the pool; 1 ≈ classic web
    /// skew).
    pub theta: f64,
    /// Query-kind mix.
    pub mix: QueryMix,
    /// ChaCha seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A Zipf(θ=1) workload of `queries` queries over a 16-source pool.
    pub fn zipf(queries: usize, seed: u64) -> Self {
        Self {
            queries,
            hot_sources: 16,
            theta: 1.0,
            mix: QueryMix::default(),
            seed,
        }
    }

    /// The candidate source pool for a graph of `n` vertices: pool
    /// rank `r` maps to vertex `r·⌊n/pool⌋`, spreading the hot set
    /// across the ownership partition (and therefore across processor
    /// rows/columns).
    pub fn source_pool(&self, n: u64) -> Vec<Vertex> {
        let pool = (self.hot_sources.max(1) as u64).min(n);
        let stride = (n / pool).max(1);
        (0..pool).map(|r| r * stride).collect()
    }

    /// Generate the query sequence for a graph of `n` vertices.
    pub fn generate(&self, n: u64) -> Vec<QueryKind> {
        assert!(n >= 1, "workload needs a non-empty graph");
        let sources = self.source_pool(n);
        // Zipf CDF over pool ranks: weight(r) = 1/(r+1)^theta.
        let mut cdf = Vec::with_capacity(sources.len());
        let mut acc = 0.0f64;
        for r in 0..sources.len() {
            acc += 1.0 / ((r + 1) as f64).powf(self.theta);
            cdf.push(acc);
        }
        let total = acc;

        let (wf, wd, wp) = (
            self.mix.full.max(0.0),
            self.mix.distance.max(0.0),
            self.mix.path.max(0.0),
        );
        let wsum = wf + wd + wp;
        assert!(wsum > 0.0, "query mix must have positive total weight");

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        (0..self.queries)
            .map(|_| {
                let u = rng.gen::<f64>() * total;
                let idx = cdf.partition_point(|&c| c < u).min(sources.len() - 1);
                let source = sources[idx];
                let k = rng.gen::<f64>() * wsum;
                if k < wf {
                    QueryKind::FullTraversal { source }
                } else {
                    let target = rng.gen_range(0..n);
                    if k < wf + wd {
                        QueryKind::Distance { source, target }
                    } else {
                        QueryKind::Path { source, target }
                    }
                }
            })
            .collect()
    }
}

/// When queries arrive at the admission queue, measured in queries per
/// server tick. All variants are open-loop: arrivals do not react to
/// queue depth, so backpressure and deadline misses are properties of
/// the schedule, not of the measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Exactly `per_tick` queries every tick (the closed-loop chunking
    /// the serve mode shipped with).
    Fixed {
        /// Queries delivered each tick.
        per_tick: usize,
    },
    /// Poisson(`mean`) arrivals per tick: independent ticks, the
    /// textbook open-loop stream.
    Poisson {
        /// Mean arrivals per tick (λ).
        mean: f64,
    },
    /// Bursty on/off stream with the same long-run `mean`: each tick is
    /// a burst tick with probability `1/burst`, delivering
    /// Poisson(`mean`·`burst`) queries; all other ticks deliver none.
    /// Larger `burst` concentrates the load into rarer, taller floods.
    Bursty {
        /// Long-run mean arrivals per tick.
        mean: f64,
        /// Burst factor (≥ 1; 1 degenerates to `Poisson`).
        burst: f64,
    },
    /// Replay a previously recorded tick schedule verbatim (workload
    /// replay: re-run an interesting Poisson or bursty trace without
    /// re-rolling the dice). The seed is ignored. If the recording
    /// delivers fewer than `total` queries, the remainder arrives in
    /// one final tick; if it delivers more, later ticks are clamped.
    Replay {
        /// Recorded arrivals per tick, as written by
        /// [`ArrivalProcess::schedule_to_text`].
        ticks: Vec<usize>,
    },
}

impl ArrivalProcess {
    /// Deterministic arrival schedule delivering exactly `total`
    /// queries: entry `t` is how many queries arrive at tick `t`. The
    /// last tick is clamped so the schedule never over- or
    /// under-delivers.
    pub fn schedule(&self, total: usize, seed: u64) -> Vec<usize> {
        if let ArrivalProcess::Replay { ticks: recorded } = self {
            let mut ticks = Vec::with_capacity(recorded.len());
            let mut remaining = total;
            for &drawn in recorded {
                if remaining == 0 {
                    break;
                }
                let take = drawn.min(remaining);
                ticks.push(take);
                remaining -= take;
            }
            if remaining > 0 {
                ticks.push(remaining);
            }
            if ticks.is_empty() {
                ticks.push(0);
            }
            return ticks;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ticks = Vec::new();
        let mut remaining = total;
        while remaining > 0 {
            let drawn = match *self {
                ArrivalProcess::Fixed { per_tick } => per_tick.max(1),
                ArrivalProcess::Poisson { mean } => poisson_draw(&mut rng, mean.max(1e-9)),
                ArrivalProcess::Bursty { mean, burst } => {
                    let burst = burst.max(1.0);
                    if rng.gen::<f64>() < 1.0 / burst {
                        poisson_draw(&mut rng, (mean * burst).max(1e-9))
                    } else {
                        0
                    }
                }
                ArrivalProcess::Replay { .. } => unreachable!("handled above"),
            };
            let take = drawn.min(remaining);
            ticks.push(take);
            remaining -= take;
        }
        if ticks.is_empty() {
            ticks.push(0);
        }
        ticks
    }

    /// Serialize a schedule for later replay: one arrivals-per-tick
    /// count per line, `#`-prefixed header comment, trailing newline.
    pub fn schedule_to_text(schedule: &[usize]) -> String {
        let mut out =
            String::from("# bgl-bfs arrival schedule: one arrivals-per-tick count per line\n");
        for count in schedule {
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse a recorded schedule ([`ArrivalProcess::schedule_to_text`]
    /// format: one count per line; blank lines and `#` comments are
    /// skipped) into a [`ArrivalProcess::Replay`].
    pub fn replay_from_text(text: &str) -> Result<ArrivalProcess, String> {
        let mut ticks = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let count: usize = line
                .parse()
                .map_err(|e| format!("schedule line {}: {e} in {line:?}", i + 1))?;
            ticks.push(count);
        }
        if ticks.is_empty() {
            return Err("schedule file has no tick counts".to_string());
        }
        Ok(ArrivalProcess::Replay { ticks })
    }
}

/// Knuth's product-of-uniforms Poisson sampler — exact, and cheap at
/// the per-tick means the serving sweeps use (λ ≲ 100).
fn poisson_draw(rng: &mut ChaCha8Rng, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let spec = WorkloadSpec::zipf(100, 7);
        assert_eq!(spec.generate(10_000), spec.generate(10_000));
        let other = WorkloadSpec { seed: 8, ..spec };
        assert_ne!(spec.generate(10_000), other.generate(10_000));
    }

    #[test]
    fn sources_come_from_the_pool_and_skew_to_the_head() {
        let spec = WorkloadSpec {
            queries: 2_000,
            hot_sources: 8,
            theta: 1.0,
            mix: QueryMix::default(),
            seed: 3,
        };
        let pool = spec.source_pool(80_000);
        assert_eq!(pool.len(), 8);
        let qs = spec.generate(80_000);
        let mut counts = vec![0usize; pool.len()];
        for q in &qs {
            let i = pool.iter().position(|&s| s == q.source()).expect("in pool");
            counts[i] += 1;
        }
        // Zipf head dominates the tail.
        assert!(counts[0] > counts[7] * 2, "no skew: {counts:?}");
    }

    #[test]
    fn mix_extremes() {
        let spec = WorkloadSpec {
            queries: 50,
            hot_sources: 4,
            theta: 0.0,
            mix: QueryMix {
                full: 1.0,
                distance: 0.0,
                path: 0.0,
            },
            seed: 1,
        };
        assert!(spec
            .generate(1_000)
            .iter()
            .all(|q| matches!(q, QueryKind::FullTraversal { .. })));
    }

    #[test]
    fn arrival_schedules_are_seeded_and_exact() {
        for proc in [
            ArrivalProcess::Fixed { per_tick: 3 },
            ArrivalProcess::Poisson { mean: 2.5 },
            ArrivalProcess::Bursty {
                mean: 2.5,
                burst: 8.0,
            },
        ] {
            let a = proc.schedule(200, 17);
            assert_eq!(a.iter().sum::<usize>(), 200, "{proc:?}");
            assert_eq!(a, proc.schedule(200, 17), "{proc:?} must be seeded");
        }
        assert_ne!(
            ArrivalProcess::Poisson { mean: 2.5 }.schedule(200, 17),
            ArrivalProcess::Poisson { mean: 2.5 }.schedule(200, 18),
        );
    }

    #[test]
    fn bursty_floods_are_taller_and_rarer() {
        let mean = 2.0;
        let smooth = ArrivalProcess::Poisson { mean }.schedule(2_000, 5);
        let bursty = ArrivalProcess::Bursty { mean, burst: 10.0 }.schedule(2_000, 5);
        let peak = |v: &[usize]| v.iter().copied().max().unwrap_or(0);
        assert!(
            peak(&bursty) > peak(&smooth),
            "burst peak {} vs poisson peak {}",
            peak(&bursty),
            peak(&smooth)
        );
        let idle = |v: &[usize]| v.iter().filter(|&&c| c == 0).count() as f64 / v.len() as f64;
        assert!(idle(&bursty) > idle(&smooth));
    }

    #[test]
    fn replay_reproduces_a_recorded_schedule_exactly() {
        let recorded = ArrivalProcess::Poisson { mean: 2.5 }.schedule(200, 17);
        let text = ArrivalProcess::schedule_to_text(&recorded);
        let replay = ArrivalProcess::replay_from_text(&text).expect("parses");
        // Seed is ignored by Replay: any seed reproduces the recording.
        assert_eq!(replay.schedule(200, 0), recorded);
        assert_eq!(replay.schedule(200, 999), recorded);
    }

    #[test]
    fn replay_clamps_and_tops_up() {
        let replay = ArrivalProcess::Replay {
            ticks: vec![3, 0, 5],
        };
        // Fewer queries than recorded: later ticks clamp.
        assert_eq!(replay.schedule(4, 0), vec![3, 0, 1]);
        // More queries than recorded: remainder lands in one final tick.
        assert_eq!(replay.schedule(12, 0), vec![3, 0, 5, 4]);
        // Zero queries: a single empty tick, like the generators.
        assert_eq!(replay.schedule(0, 0), vec![0]);
    }

    #[test]
    fn replay_text_rejects_garbage_and_skips_comments() {
        assert!(ArrivalProcess::replay_from_text("").is_err());
        assert!(ArrivalProcess::replay_from_text("# only a comment\n").is_err());
        assert!(ArrivalProcess::replay_from_text("3\nx\n").is_err());
        let p = ArrivalProcess::replay_from_text("# hdr\n\n2\n 1 \n").expect("parses");
        assert_eq!(p, ArrivalProcess::Replay { ticks: vec![2, 1] });
    }

    #[test]
    fn fixed_schedule_chunks_evenly() {
        let a = ArrivalProcess::Fixed { per_tick: 4 }.schedule(10, 0);
        assert_eq!(a, vec![4, 4, 2]);
    }

    #[test]
    fn pool_clamps_to_small_graphs() {
        let spec = WorkloadSpec {
            queries: 10,
            hot_sources: 1_000,
            theta: 0.5,
            mix: QueryMix::default(),
            seed: 1,
        };
        let pool = spec.source_pool(6);
        assert_eq!(pool.len(), 6);
        assert!(spec.generate(6).iter().all(|q| q.source() < 6));
    }
}
