//! # bgl-server — BFS query serving over a resident distributed graph
//!
//! The paper's BFS is a one-shot kernel; this crate turns it into a
//! *service*: one loaded [`bgl_graph::DistGraph`] plus one simulated
//! runtime serve a stream of BFS queries ([`QueryKind::FullTraversal`],
//! [`QueryKind::Distance`], [`QueryKind::Path`]). The pieces:
//!
//! * [`server::BglServer`] — the serving loop. Pending queries are
//!   packed, up to `B` distinct sources at a time, into one lane-masked
//!   multi-source wave ([`bfs_core::multi`]), so one round of
//!   communication advances every query in the batch;
//! * [`queue::AdmissionQueue`] — bounded FIFO admission with
//!   backpressure (typed [`query::AdmissionError`]) and per-query
//!   deadlines measured on the server's deterministic tick clock;
//! * [`cache::ResultCache`] — cost-aware result cache keyed by
//!   `(graph_id, source)` (GreedyDual-Size: eviction weighs
//!   recomputation cost per resident byte, degenerating to exact LRU
//!   under equal weights); `Distance` hits and repeat traversals are
//!   answered from cached level arrays as a modelled memcpy, and `Path`
//!   hits are grouped into lane-masked batched walks
//!   ([`bfs_core::path::multi`]) over the cached arrays;
//! * [`workload::WorkloadSpec`] — seeded Zipfian source-popularity
//!   query generator for benchmarks and the CLI `serve` mode;
//! * [`stats::ServerStats`] — QPS / latency / batch-occupancy /
//!   cache-hit accounting, exported as `SERVER_summary.json`.
//!
//! Everything is deterministic: batch formation reads only the queue
//! order and the tick clock (no wall time in any decision path), the
//! workload is seeded, and the batched engine is bit-identical across
//! serial/rayon hosts — the same submission sequence always produces
//! the same responses, clocks, and summary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod query;
pub mod queue;
pub mod server;
pub mod stats;
pub mod workload;

pub use cache::ResultCache;
pub use query::{AdmissionError, Outcome, QueryId, QueryKind, Request, Response, ServedBy};
pub use queue::AdmissionQueue;
pub use server::{BglServer, ServerConfig};
pub use stats::ServerStats;
pub use workload::{ArrivalProcess, QueryMix, WorkloadSpec};
