//! # bgl-server — BFS query serving over a resident distributed graph
//!
//! The paper's BFS is a one-shot kernel; this crate turns it into a
//! *service*: one loaded [`bgl_graph::DistGraph`] plus one simulated
//! runtime serve a stream of BFS queries ([`QueryKind::FullTraversal`],
//! [`QueryKind::Distance`], [`QueryKind::Path`]). The pieces:
//!
//! * [`server::BglServer`] — the serving loop. Pending queries are
//!   packed, up to `B` distinct sources at a time, into one lane-masked
//!   multi-source wave ([`bfs_core::multi`]), so one round of
//!   communication advances every query in the batch;
//! * [`queue::AdmissionQueue`] — bounded FIFO admission with
//!   backpressure (typed [`query::AdmissionError`]) and per-query
//!   deadlines measured on the server's deterministic tick clock;
//! * [`cache::LruCache`] — result cache keyed by `(graph_id, source)`;
//!   `Distance`/`Path` hits (and repeat traversals) are answered from
//!   cached level arrays without touching the engines, charged as a
//!   modelled memcpy of the response bytes;
//! * [`workload::WorkloadSpec`] — seeded Zipfian source-popularity
//!   query generator for benchmarks and the CLI `serve` mode;
//! * [`stats::ServerStats`] — QPS / latency / batch-occupancy /
//!   cache-hit accounting, exported as `SERVER_summary.json`.
//!
//! Everything is deterministic: batch formation reads only the queue
//! order and the tick clock (no wall time in any decision path), the
//! workload is seeded, and the batched engine is bit-identical across
//! serial/rayon hosts — the same submission sequence always produces
//! the same responses, clocks, and summary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod query;
pub mod queue;
pub mod server;
pub mod stats;
pub mod workload;

pub use cache::LruCache;
pub use query::{AdmissionError, Outcome, QueryId, QueryKind, Request, Response, ServedBy};
pub use queue::AdmissionQueue;
pub use server::{BglServer, ServerConfig};
pub use stats::ServerStats;
pub use workload::{QueryMix, WorkloadSpec};
