//! The serving loop: deterministic batch formation over the admission
//! queue, lane-masked multi-source execution, cache fills and hits,
//! per-batch tracing, and the `SERVER_summary.json` export.
//!
//! ## Batch wave
//!
//! Each call to [`BglServer::pump`] advances the tick clock by one and
//! forms at most one batch: requests pop in FIFO order; expired ones
//! answer immediately; cache hits are served without a lane; the rest
//! group by source into lanes until `batch_width` distinct sources are
//! packed (queries sharing a source share a lane for free). The batch
//! runs as one [`bfs_core::multi`] wave sequence — every lane advances
//! per communication round — and each lane's level array answers all of
//! its queries and refills the cache. Batch formation reads only the
//! queue order and the tick clock: no wall time exists in any decision
//! path, so a submission sequence fully determines every response and
//! every clock.
//!
//! ## Deadlines
//!
//! A query's deadline is an absolute tick; it expires iff the batch
//! forming tick is strictly past it. Expiry is checked at formation
//! (lazy), costs no engine work, and produces an
//! [`Outcome::Expired`] response.
//!
//! ## Cache semantics
//!
//! Keyed `(graph_id, source)` where `graph_id` fingerprints the loaded
//! spec; admission and eviction weigh each entry by its recomputation
//! cost per resident byte (see [`crate::cache`]). A hit serves
//! `FullTraversal` by handing out the shared level array and `Distance`
//! by one array read — both charged as a modelled memcpy of the
//! response bytes at the source's owner rank. `Path` hits (and `Path`
//! queries answered by a fresh batch lane) are grouped by source and
//! served by the distributed lane-masked batched walk
//! ([`bfs_core::path::multi`]): up to 64 targets against one level
//! array share each of the three per-hop control rounds, charged to the
//! α–β–hop model and bracketed by `Phase::PathWalk` spans — and every
//! lane is byte-identical to a standalone `extract_path`.

use crate::cache::{CacheKey, ResultCache};
use crate::query::{AdmissionError, Outcome, QueryId, QueryKind, Request, Response, ServedBy};
use crate::queue::AdmissionQueue;
use crate::stats::ServerStats;
use bfs_core::multi::{self, MultiConfig};
use bfs_core::path;
use bfs_core::reference::UNREACHED;
use bgl_comm::{SimWorld, MAX_LANES};
use bgl_graph::{DistGraph, GraphFamily, GraphSpec, Vertex};
use bgl_trace::EventKind;
use std::fmt::Write as _;
use std::sync::Arc;

/// Serving configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum distinct sources packed into one batch (1..=64).
    pub batch_width: usize,
    /// Admission queue capacity (backpressure beyond this).
    pub queue_capacity: usize,
    /// Default deadline in ticks granted to every query (`None` =
    /// queries never expire).
    pub deadline_ticks: Option<u64>,
    /// Result-cache capacity in level arrays (0 = cache off).
    pub cache_capacity: usize,
    /// Engine configuration for the batched executor.
    pub multi: MultiConfig,
    /// Certify every batch lane with the Graph500-style validator
    /// (panics on failure — a failed certification is an engine bug,
    /// never a data condition).
    pub validate_batches: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            batch_width: 16,
            queue_capacity: 1024,
            deadline_ticks: None,
            cache_capacity: 64,
            multi: MultiConfig::default(),
            validate_batches: false,
        }
    }
}

/// A BFS query server owning one resident graph and one simulated
/// runtime.
pub struct BglServer {
    graph: DistGraph,
    world: SimWorld,
    config: ServerConfig,
    queue: AdmissionQueue,
    cache: ResultCache,
    graph_id: u64,
    tick: u64,
    batch_seq: u32,
    stats: ServerStats,
}

impl BglServer {
    /// Take ownership of a loaded graph and runtime and start serving.
    pub fn new(graph: DistGraph, world: SimWorld, config: ServerConfig) -> Self {
        assert!(
            (1..=bgl_comm::MAX_LANES).contains(&config.batch_width),
            "batch width must be in 1..=64"
        );
        assert_eq!(
            world.grid(),
            graph.grid(),
            "world and graph grids must match"
        );
        let graph_id = graph_fingerprint(&graph.spec);
        Self {
            queue: AdmissionQueue::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            graph_id,
            tick: 0,
            batch_seq: 0,
            stats: ServerStats::default(),
            graph,
            world,
            config,
        }
    }

    /// The graph fingerprint used in cache keys.
    pub fn graph_id(&self) -> u64 {
        self.graph_id
    }

    /// The current logical tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Aggregate serving statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The result cache (hit/miss counters live here).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The simulated runtime (clocks, traces, comm stats).
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Mutable runtime access (e.g. to enable tracing before serving).
    pub fn world_mut(&mut self) -> &mut SimWorld {
        &mut self.world
    }

    /// The resident graph.
    pub fn graph(&self) -> &DistGraph {
        &self.graph
    }

    /// Pending queries in the admission queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Admit a query; `Err` is backpressure (queue full).
    pub fn submit(&mut self, kind: QueryKind) -> Result<QueryId, AdmissionError> {
        match self
            .queue
            .submit(kind, self.tick, self.config.deadline_ticks)
        {
            Ok(id) => {
                self.stats.submitted += 1;
                Ok(id)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Advance one tick and serve at most one batch. Returns every
    /// response completed this tick: expirations and non-path cache
    /// hits in queue order, then cache-hit path walks (grouped by
    /// source), then batch-served responses lane by lane.
    pub fn pump(&mut self) -> Vec<Response> {
        self.tick += 1;
        let now = self.tick;
        let depth = self.queue.len() as u64;
        self.stats.queue_depth_sum += depth;
        self.stats.queue_depth_samples += 1;
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(depth);
        let mut responses: Vec<Response> = Vec::new();

        // -- batch formation: FIFO pops; expiries and cache hits are
        // served en route and never consume a lane. Cache-hit Path
        // queries group by source into lane waves of the batched walk
        // instead of being answered one by one.
        let mut lanes: Vec<(Vertex, Vec<Request>)> = Vec::new();
        let mut cached_walks: Vec<(Vertex, Arc<Vec<u32>>, Vec<Request>)> = Vec::new();
        while let Some(req) = self.queue.pop() {
            if req.deadline_tick.is_some_and(|d| now > d) {
                self.stats.expired += 1;
                self.note_latency(&req, now);
                responses.push(Response {
                    id: req.id,
                    kind: req.kind,
                    outcome: Outcome::Expired,
                    served_by: ServedBy::Expired,
                    submitted_tick: req.submitted_tick,
                    completed_tick: now,
                    sim_service_time: 0.0,
                });
                continue;
            }
            let source = req.kind.source();
            if self.cache.enabled() {
                let key = CacheKey {
                    graph_id: self.graph_id,
                    source,
                };
                if let Some(levels) = self.cache.get(key) {
                    if matches!(req.kind, QueryKind::Path { .. }) {
                        match cached_walks.iter_mut().find(|(s, _, _)| *s == source) {
                            Some(group) => group.2.push(req),
                            None => cached_walks.push((source, levels, vec![req])),
                        }
                    } else {
                        let r = self.serve_from_cache(req, &levels, now);
                        responses.push(r);
                    }
                    continue;
                }
            }
            if let Some(lane) = lanes.iter_mut().find(|(s, _)| *s == source) {
                lane.1.push(req);
            } else if lanes.len() < self.config.batch_width {
                lanes.push((source, vec![req]));
            } else {
                self.queue.push_front(req);
                break;
            }
        }

        // -- cache-hit path walks: one batched wave sequence per cached
        // level array, all targets sharing the per-hop control rounds.
        for (source, levels, reqs) in cached_walks {
            self.serve_path_walks(
                source,
                &levels,
                reqs,
                ServedBy::Cache,
                0.0,
                now,
                &mut responses,
            );
        }
        if lanes.is_empty() {
            return responses;
        }

        // -- one lane-masked wave advances every query in the batch.
        let sources: Vec<Vertex> = lanes.iter().map(|(s, _)| *s).collect();
        let t0 = self.world.time();
        let result = multi::run(&self.graph, &mut self.world, &self.config.multi, &sources);
        let t1 = self.world.time();
        let batch = self.batch_seq;
        self.batch_seq += 1;
        self.world.trace_mut().world_event(
            EventKind::Batch {
                batch,
                lanes: u32::try_from(sources.len()).unwrap_or(u32::MAX),
            },
            t0,
            t1,
        );
        if self.config.validate_batches {
            multi::validate_lanes(&self.graph.spec, &result)
                .unwrap_or_else(|e| panic!("batch {batch} failed Graph500 validation: {e:?}")); // bgl-lint: allow(r1, reason = "opt-in validate_batches exists to abort loudly on a correctness violation")
            self.stats.validated_batches += 1;
        }
        let batch_sim = t1 - t0;
        self.stats.batches += 1;
        self.stats.lanes_total += sources.len() as u64;
        self.stats.max_occupancy = self.stats.max_occupancy.max(sources.len() as u64);
        self.stats.waves_total += result.waves.len() as u64;
        self.stats.engine_sim_time += batch_sim;

        // Each lane's recomputation cost is its share of the wave: the
        // cache's eviction weight for the level array it deposited.
        let lane_cost = batch_sim / sources.len() as f64;
        let mut lane_levels = result.lane_levels;
        for (lane, (source, reqs)) in lanes.into_iter().enumerate() {
            let levels = Arc::new(std::mem::take(&mut lane_levels[lane]));
            self.cache.insert(
                CacheKey {
                    graph_id: self.graph_id,
                    source,
                },
                levels.clone(),
                lane_cost,
            );
            let served_by = ServedBy::Batch {
                batch,
                lane: lane as u8,
            };
            let mut path_reqs: Vec<Request> = Vec::new();
            for req in reqs {
                if matches!(req.kind, QueryKind::Path { .. }) {
                    path_reqs.push(req);
                    continue;
                }
                self.stats.served_engine += 1;
                self.note_kind(&req.kind);
                self.note_latency(&req, now);
                let outcome = self.answer(&req.kind, &levels);
                responses.push(Response {
                    id: req.id,
                    kind: req.kind,
                    outcome,
                    served_by,
                    submitted_tick: req.submitted_tick,
                    completed_tick: now,
                    sim_service_time: batch_sim,
                });
            }
            if !path_reqs.is_empty() {
                self.serve_path_walks(
                    source,
                    &levels,
                    path_reqs,
                    served_by,
                    batch_sim,
                    now,
                    &mut responses,
                );
            }
        }
        responses
    }

    /// Pump until the queue drains; returns all responses in completion
    /// order.
    pub fn run_to_completion(&mut self) -> Vec<Response> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            out.extend(self.pump());
        }
        out
    }

    /// Produce an outcome from a level array. `Path` queries never come
    /// through here — they are grouped into batched walk waves
    /// ([`BglServer::serve_path_walks`]).
    fn answer(&self, kind: &QueryKind, levels: &Arc<Vec<u32>>) -> Outcome {
        match *kind {
            QueryKind::FullTraversal { .. } => Outcome::Levels(levels.clone()),
            QueryKind::Distance { target, .. } => Outcome::Distance(level_of(levels, target)),
            QueryKind::Path { .. } => unreachable!("path queries are served by batched walks"),
        }
    }

    /// Serve a group of `Path` requests sharing one `(source, levels)`
    /// pair with the distributed lane-masked batched walk: up to
    /// [`MAX_LANES`] targets per wave share each per-hop control round.
    /// `base_sim` is simulated time the requests already waited on (the
    /// engine wave that produced `levels`, zero for cache hits).
    #[allow(clippy::too_many_arguments)]
    fn serve_path_walks(
        &mut self,
        source: Vertex,
        levels: &Arc<Vec<u32>>,
        reqs: Vec<Request>,
        served_by: ServedBy,
        base_sim: f64,
        now: u64,
        responses: &mut Vec<Response>,
    ) {
        for chunk in reqs.chunks(MAX_LANES) {
            let targets: Vec<Vertex> = chunk
                .iter()
                .map(|r| match r.kind {
                    QueryKind::Path { target, .. } => target,
                    _ => unreachable!("walk groups hold only path queries"),
                })
                .collect();
            let result = path::multi(&self.graph, &mut self.world, levels, source, &targets);
            self.stats.path_walks += 1;
            self.stats.path_walk_lanes += targets.len() as u64;
            self.stats.path_walk_hops += u64::from(result.hops);
            self.stats.path_walk_rounds += result.rounds;
            self.stats.path_walk_sim_time += result.sim_time;
            for (req, p) in chunk.iter().zip(result.paths) {
                if served_by == ServedBy::Cache {
                    self.stats.served_cache += 1;
                    self.stats.cache_hit_path += 1;
                    self.stats.cache_bytes_path += 8 * p.as_ref().map_or(1, Vec::len) as u64;
                } else {
                    self.stats.served_engine += 1;
                }
                self.note_kind(&req.kind);
                self.note_latency(req, now);
                responses.push(Response {
                    id: req.id,
                    kind: req.kind,
                    outcome: Outcome::Path(p),
                    served_by,
                    submitted_tick: req.submitted_tick,
                    completed_tick: now,
                    sim_service_time: base_sim + result.sim_time,
                });
            }
        }
    }

    /// Serve one `FullTraversal`/`Distance` request from a cached level
    /// array, charging a modelled memcpy of the response bytes at the
    /// source owner's rank.
    fn serve_from_cache(&mut self, req: Request, levels: &Arc<Vec<u32>>, now: u64) -> Response {
        let t0 = self.world.time();
        let outcome = self.answer(&req.kind, levels);
        let bytes = match &outcome {
            Outcome::Levels(l) => 4 * l.len() as u64,
            Outcome::Distance(_) => 8,
            Outcome::Path(_) => unreachable!("path hits go through the batched walk"),
            Outcome::Expired => unreachable!("cache cannot expire a query"),
        };
        match &req.kind {
            QueryKind::FullTraversal { .. } => {
                self.stats.cache_hit_full += 1;
                self.stats.cache_bytes_full += bytes;
            }
            QueryKind::Distance { .. } => {
                self.stats.cache_hit_distance += 1;
                self.stats.cache_bytes_distance += bytes;
            }
            QueryKind::Path { .. } => unreachable!("path hits go through the batched walk"),
        }
        let owner = self.graph.partition.owner_of(req.kind.source());
        let mut per_rank = vec![0u64; self.world.p()];
        per_rank[owner] = bytes;
        self.world.memcpy_phase(&per_rank);
        let dt = self.world.time() - t0;
        self.stats.served_cache += 1;
        self.stats.cache_sim_time += dt;
        self.note_kind(&req.kind);
        self.note_latency(&req, now);
        Response {
            id: req.id,
            kind: req.kind,
            outcome,
            served_by: ServedBy::Cache,
            submitted_tick: req.submitted_tick,
            completed_tick: now,
            sim_service_time: dt,
        }
    }

    fn note_kind(&mut self, kind: &QueryKind) {
        match kind {
            QueryKind::FullTraversal { .. } => self.stats.kind_full += 1,
            QueryKind::Distance { .. } => self.stats.kind_distance += 1,
            QueryKind::Path { .. } => self.stats.kind_path += 1,
        }
    }

    fn note_latency(&mut self, req: &Request, now: u64) {
        let lat = now - req.submitted_tick;
        self.stats.latency_ticks_sum += lat;
        self.stats.latency_ticks_max = self.stats.latency_ticks_max.max(lat);
    }

    /// Hand-rolled `SERVER_summary.json` (the serving layer follows the
    /// bench idiom: no serde in the artifact path).
    pub fn summary_json(&self) -> String {
        let s = &self.stats;
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"graph\": {{");
        let _ = writeln!(j, "    \"n\": {},", self.graph.spec.n);
        let _ = writeln!(j, "    \"graph_id\": {},", self.graph_id);
        let _ = writeln!(
            j,
            "    \"grid\": \"{}x{}\"",
            self.graph.grid().rows(),
            self.graph.grid().cols()
        );
        let _ = writeln!(j, "  }},");
        let _ = writeln!(j, "  \"config\": {{");
        let _ = writeln!(j, "    \"batch_width\": {},", self.config.batch_width);
        let _ = writeln!(j, "    \"queue_capacity\": {},", self.config.queue_capacity);
        let _ = writeln!(
            j,
            "    \"deadline_ticks\": {},",
            self.config
                .deadline_ticks
                .map_or("null".to_string(), |d| d.to_string())
        );
        let _ = writeln!(j, "    \"cache_capacity\": {}", self.config.cache_capacity);
        let _ = writeln!(j, "  }},");
        let _ = writeln!(j, "  \"ticks\": {},", self.tick);
        let _ = writeln!(j, "  \"submitted\": {},", s.submitted);
        let _ = writeln!(j, "  \"rejected\": {},", s.rejected);
        let _ = writeln!(j, "  \"served_engine\": {},", s.served_engine);
        let _ = writeln!(j, "  \"served_cache\": {},", s.served_cache);
        let _ = writeln!(j, "  \"expired\": {},", s.expired);
        let _ = writeln!(j, "  \"kinds\": {{");
        let _ = writeln!(j, "    \"full\": {},", s.kind_full);
        let _ = writeln!(j, "    \"distance\": {},", s.kind_distance);
        let _ = writeln!(j, "    \"path\": {}", s.kind_path);
        let _ = writeln!(j, "  }},");
        let _ = writeln!(j, "  \"batches\": {},", s.batches);
        let _ = writeln!(j, "  \"validated_batches\": {},", s.validated_batches);
        let _ = writeln!(j, "  \"waves_total\": {},", s.waves_total);
        let _ = writeln!(j, "  \"occupancy_mean\": {:.3},", s.occupancy_mean());
        let _ = writeln!(j, "  \"occupancy_max\": {},", s.max_occupancy);
        let _ = writeln!(j, "  \"queue_depth_mean\": {:.3},", s.queue_depth_mean());
        let _ = writeln!(j, "  \"queue_depth_max\": {},", s.queue_depth_max);
        let _ = writeln!(j, "  \"path_walk\": {{");
        let _ = writeln!(j, "    \"waves\": {},", s.path_walks);
        let _ = writeln!(j, "    \"lanes\": {},", s.path_walk_lanes);
        let _ = writeln!(
            j,
            "    \"occupancy_mean\": {:.3},",
            s.path_walk_occupancy_mean()
        );
        let _ = writeln!(j, "    \"hops\": {},", s.path_walk_hops);
        let _ = writeln!(j, "    \"rounds\": {},", s.path_walk_rounds);
        let _ = writeln!(j, "    \"sim_s\": {:.9}", s.path_walk_sim_time);
        let _ = writeln!(j, "  }},");
        let _ = writeln!(j, "  \"cache\": {{");
        let _ = writeln!(j, "    \"hits\": {},", self.cache.hits);
        let _ = writeln!(j, "    \"misses\": {},", self.cache.misses);
        let _ = writeln!(j, "    \"evictions\": {},", self.cache.evictions);
        let _ = writeln!(j, "    \"resident\": {},", self.cache.len());
        let _ = writeln!(
            j,
            "    \"resident_bytes\": {},",
            self.cache.resident_bytes()
        );
        let _ = writeln!(j, "    \"by_class\": {{");
        let _ = writeln!(
            j,
            "      \"full\": {{ \"hits\": {}, \"bytes\": {} }},",
            s.cache_hit_full, s.cache_bytes_full
        );
        let _ = writeln!(
            j,
            "      \"distance\": {{ \"hits\": {}, \"bytes\": {} }},",
            s.cache_hit_distance, s.cache_bytes_distance
        );
        let _ = writeln!(
            j,
            "      \"path\": {{ \"hits\": {}, \"bytes\": {} }}",
            s.cache_hit_path, s.cache_bytes_path
        );
        let _ = writeln!(j, "    }}");
        let _ = writeln!(j, "  }},");
        let _ = writeln!(j, "  \"engine_sim_s\": {:.9},", s.engine_sim_time);
        let _ = writeln!(j, "  \"cache_sim_s\": {:.9},", s.cache_sim_time);
        let _ = writeln!(j, "  \"path_walk_sim_s\": {:.9},", s.path_walk_sim_time);
        let _ = writeln!(j, "  \"qps_simulated\": {:.3},", s.qps());
        let _ = writeln!(
            j,
            "  \"engine_s_per_query\": {:.9},",
            s.engine_time_per_query()
        );
        let _ = writeln!(
            j,
            "  \"cache_s_per_query\": {:.9},",
            s.cache_time_per_query()
        );
        let _ = writeln!(
            j,
            "  \"latency_ticks_mean\": {:.3},",
            s.latency_ticks_mean()
        );
        let _ = writeln!(j, "  \"latency_ticks_max\": {}", s.latency_ticks_max);
        j.push_str("}\n");
        j
    }
}

/// FNV-1a fingerprint of a graph spec: stable across runs, sensitive to
/// every generator input, so cache keys from a different resident graph
/// can never collide into service.
pub fn graph_fingerprint(spec: &GraphSpec) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(spec.n);
    eat(spec.avg_degree.to_bits());
    eat(spec.seed);
    match spec.family {
        GraphFamily::Poisson => eat(1),
        GraphFamily::RMat { a, b, c } => {
            eat(2);
            eat(a.to_bits());
            eat(b.to_bits());
            eat(c.to_bits());
        }
        GraphFamily::SmallWorld { rewire } => {
            eat(3);
            eat(rewire.to_bits());
        }
    }
    h
}

/// Read a distance out of a level array (`None` = unreached).
fn level_of(levels: &[u32], v: Vertex) -> Option<u32> {
    let l = levels[v as usize];
    (l != UNREACHED).then_some(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs_core::{bfs2d, BfsConfig};
    use bgl_comm::ProcessorGrid;

    fn build(n: u64, seed: u64) -> (DistGraph, SimWorld) {
        let spec = GraphSpec::rmat(n, 8.0, seed);
        let grid = ProcessorGrid::new(2, 3);
        (DistGraph::build(spec, grid), SimWorld::bluegene(grid))
    }

    fn server(config: ServerConfig) -> BglServer {
        let (graph, world) = build(2_000, 5);
        BglServer::new(graph, world, config)
    }

    #[test]
    fn batch_serving_matches_single_source() {
        let mut srv = server(ServerConfig {
            cache_capacity: 0,
            validate_batches: true,
            ..ServerConfig::default()
        });
        let (graph, _) = build(2_000, 5);
        for s in [0u64, 33, 500, 1999] {
            srv.submit(QueryKind::FullTraversal { source: s }).unwrap();
        }
        let responses = srv.run_to_completion();
        assert_eq!(responses.len(), 4);
        assert_eq!(srv.stats().batches, 1);
        for r in &responses {
            let Outcome::Levels(levels) = &r.outcome else {
                panic!("expected levels");
            };
            let mut w = SimWorld::bluegene(graph.grid());
            let single = bfs2d::run(
                &graph,
                &mut w,
                &BfsConfig::paper_optimized(),
                r.kind.source(),
            );
            assert_eq!(**levels, single.levels, "source {}", r.kind.source());
        }
    }

    #[test]
    fn cache_hits_skip_the_engines_and_agree() {
        let mut srv = server(ServerConfig::default());
        let s = 42u64;
        srv.submit(QueryKind::Distance {
            source: s,
            target: 7,
        })
        .unwrap();
        let first = srv.run_to_completion();
        assert_eq!(srv.stats().batches, 1);
        // Same source again: no new batch may run.
        srv.submit(QueryKind::Distance {
            source: s,
            target: 7,
        })
        .unwrap();
        srv.submit(QueryKind::Path {
            source: s,
            target: 7,
        })
        .unwrap();
        let again = srv.run_to_completion();
        assert_eq!(srv.stats().batches, 1, "cache hit must not re-run engines");
        assert_eq!(srv.stats().served_cache, 2);
        assert_eq!(again[0].served_by, ServedBy::Cache);
        assert_eq!(first[0].outcome, again[0].outcome);
        // The cached path agrees with the engine-extracted one.
        let mut srv2 = server(ServerConfig {
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        srv2.submit(QueryKind::Path {
            source: s,
            target: 7,
        })
        .unwrap();
        let engine = srv2.run_to_completion();
        assert_eq!(engine[0].outcome, again[1].outcome);
    }

    #[test]
    fn shared_sources_share_a_lane() {
        let mut srv = server(ServerConfig {
            batch_width: 2,
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        srv.submit(QueryKind::Distance {
            source: 1,
            target: 9,
        })
        .unwrap();
        srv.submit(QueryKind::Distance {
            source: 1,
            target: 10,
        })
        .unwrap();
        srv.submit(QueryKind::Distance {
            source: 2,
            target: 9,
        })
        .unwrap();
        let rs = srv.pump();
        assert_eq!(rs.len(), 3, "three queries fit two lanes");
        assert_eq!(srv.stats().batches, 1);
        assert_eq!(srv.stats().lanes_total, 2);
    }

    #[test]
    fn overflow_waits_for_the_next_tick() {
        let mut srv = server(ServerConfig {
            batch_width: 2,
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        for s in [1u64, 2, 3] {
            srv.submit(QueryKind::Distance {
                source: s,
                target: 0,
            })
            .unwrap();
        }
        let first = srv.pump();
        assert_eq!(first.len(), 2);
        assert_eq!(srv.pending(), 1);
        let second = srv.pump();
        assert_eq!(second.len(), 1);
        assert_eq!(srv.stats().batches, 2);
    }

    #[test]
    fn deadlines_expire_lazily() {
        let mut srv = server(ServerConfig {
            deadline_ticks: Some(0),
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        srv.submit(QueryKind::Distance {
            source: 1,
            target: 2,
        })
        .unwrap();
        // Deadline is tick 0; the first pump runs at tick 1 > 0.
        let rs = srv.pump();
        assert_eq!(rs[0].outcome, Outcome::Expired);
        assert_eq!(srv.stats().expired, 1);
        assert_eq!(srv.stats().batches, 0);
    }

    #[test]
    fn backpressure_counts_rejections() {
        let mut srv = server(ServerConfig {
            queue_capacity: 1,
            ..ServerConfig::default()
        });
        srv.submit(QueryKind::Distance {
            source: 1,
            target: 2,
        })
        .unwrap();
        assert!(srv
            .submit(QueryKind::Distance {
                source: 2,
                target: 3
            })
            .is_err());
        assert_eq!(srv.stats().rejected, 1);
    }

    #[test]
    fn path_misses_share_one_batched_walk_wave() {
        let mut srv = server(ServerConfig {
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        let s = 11u64;
        for t in [7u64, 900, 1500, 42] {
            srv.submit(QueryKind::Path {
                source: s,
                target: t,
            })
            .unwrap();
        }
        let rs = srv.run_to_completion();
        assert_eq!(rs.len(), 4);
        assert_eq!(srv.stats().batches, 1, "one lane serves all four");
        assert_eq!(
            srv.stats().path_walks,
            1,
            "four targets share one walk wave"
        );
        assert_eq!(srv.stats().path_walk_lanes, 4);
        assert_eq!(
            srv.stats().path_walk_rounds,
            3 * srv.stats().path_walk_hops,
            "three control rounds per hop, shared by every lane"
        );
        // Each batched-walk path is byte-identical to a standalone
        // extraction over the same levels.
        let (graph, mut w) = build(2_000, 5);
        let single = bfs2d::run(&graph, &mut w, &BfsConfig::paper_optimized(), s);
        for r in &rs {
            let QueryKind::Path { target, .. } = r.kind else {
                panic!("expected path kind");
            };
            let mut pw = SimWorld::bluegene(graph.grid());
            let want = bfs_core::path::extract_path(&graph, &mut pw, &single.levels, s, target);
            assert_eq!(r.outcome, Outcome::Path(want), "target {target}");
        }
    }

    #[test]
    fn cached_path_hits_walk_distributedly_without_a_batch() {
        let mut srv = server(ServerConfig::default());
        let s = 42u64;
        srv.submit(QueryKind::FullTraversal { source: s }).unwrap();
        srv.run_to_completion();
        assert_eq!(srv.stats().batches, 1);
        let walks_before = srv.stats().path_walks;
        for t in [7u64, 1999, 300] {
            srv.submit(QueryKind::Path {
                source: s,
                target: t,
            })
            .unwrap();
        }
        let rs = srv.run_to_completion();
        assert_eq!(srv.stats().batches, 1, "cache hits must not re-run engines");
        assert_eq!(srv.stats().path_walks, walks_before + 1);
        assert_eq!(srv.stats().cache_hit_path, 3);
        assert!(srv.stats().cache_bytes_path > 0);
        for r in &rs {
            assert_eq!(r.served_by, ServedBy::Cache);
            assert!(matches!(r.outcome, Outcome::Path(_)));
        }
    }

    #[test]
    fn queue_depth_is_sampled_per_pump() {
        let mut srv = server(ServerConfig {
            batch_width: 1,
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        for s in [1u64, 2, 3] {
            srv.submit(QueryKind::Distance {
                source: s,
                target: 0,
            })
            .unwrap();
        }
        srv.run_to_completion();
        assert_eq!(srv.stats().queue_depth_max, 3);
        assert_eq!(srv.stats().queue_depth_samples, 3);
    }

    #[test]
    fn fingerprint_separates_specs() {
        let a = graph_fingerprint(&GraphSpec::rmat(1000, 8.0, 1));
        let b = graph_fingerprint(&GraphSpec::rmat(1000, 8.0, 2));
        let c = graph_fingerprint(&GraphSpec::poisson(1000, 8.0, 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, graph_fingerprint(&GraphSpec::rmat(1000, 8.0, 1)));
    }

    #[test]
    fn summary_json_parses() {
        let mut srv = server(ServerConfig::default());
        srv.submit(QueryKind::FullTraversal { source: 3 }).unwrap();
        srv.run_to_completion();
        let j = srv.summary_json();
        bgl_trace::json::parse(&j).expect("summary must be valid JSON");
        assert!(j.contains("\"qps_simulated\""));
        assert!(j.contains("\"occupancy_mean\""));
    }
}
