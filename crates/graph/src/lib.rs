//! # bgl-graph — distributed graph substrate
//!
//! The SC'05 BFS paper searches **Poisson random graphs** ("the
//! probability of any two vertices being connected is equal" — i.e.
//! Erdős–Rényi G(n, p) with p = k/n for average degree k) distributed
//! over an `R × C` logical processor grid via the paper's 2D edge
//! partitioning. This crate builds those distributed graphs:
//!
//! * [`spec`] — graph specifications (`n`, average degree, seed, family);
//! * [`gen`] — the deterministic, grid-independent edge sampler:
//!   the adjacency matrix is covered by fixed-size *chunk cells*, and
//!   each cell's lower-triangle entries are drawn by geometric
//!   skip-sampling from a stream seeded by `(seed, cell)`; mirroring
//!   makes the matrix exactly symmetric. Any cell can be regenerated
//!   independently, so construction parallelizes and the same `(n, k,
//!   seed)` triple yields the same graph under every partitioning —
//!   which the strong-scaling and topology-comparison experiments rely
//!   on. An R-MAT generator is included as a robustness extension;
//! * [`partition`] — the paper's §2.2 two-dimensional partition:
//!   `R·C` block rows and `C` block columns, processor `(i, j)` owning
//!   block row `j·R + i`; 1D is the degenerate `R = 1` (or `C = 1`) case;
//! * [`csr`] — per-rank storage of **partial edge lists**, indexing only
//!   non-empty lists (§2.4.1) with the hash-based local index mappings of
//!   §2.4.2;
//! * [`dist`] — [`dist::DistGraph`]: the fully built distributed graph,
//!   including the expand-targeting tables (which column peers hold a
//!   non-empty partial list for each owned vertex, §2.2/§3.1) and a
//!   sequential adjacency oracle for validation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod csr;
pub mod dist;
pub mod gen;
pub mod partition;
pub mod spec;
pub mod stats;

pub use csr::PartialEdgeLists;
pub use dist::{rebuild_rank, DistGraph, RankGraph};
pub use gen::{cell_entries, for_each_entry, ChunkGrid};
pub use partition::TwoDPartition;
pub use spec::{GraphFamily, GraphSpec};
pub use stats::{connected_components, degrees, DegreeStats};

/// Global vertex identifier (the paper's global index).
pub type Vertex = u64;
