//! Per-rank storage of partial edge lists (paper §2.4.1–§2.4.2).
//!
//! A rank in the 2D partition holds, for each vertex `v` of its block
//! column, the *partial edge list* of `v` — the rows of its stored
//! adjacency-matrix blocks where column `v` is nonzero. Two observations
//! from the paper shape the data structure:
//!
//! * §2.4.1 — although a rank's block column spans `O(n/C)` vertices,
//!   only `O(n/P)` of the partial edge lists are non-empty, so "it is
//!   necessary not to index all edge lists, but only the non-empty ones":
//!   the storage is a CSR over the non-empty columns only;
//! * §2.4.2 — global vertex indices are mapped to dense local indices by
//!   hashing. Two of the paper's three hash mappings live here: columns
//!   with non-empty lists, and the unique vertices appearing *in* lists
//!   (both `O(n/P)` in expectation, §2.4.1). The third mapping (owned
//!   vertices) lives with the BFS state, where owned ranges are
//!   contiguous.
//!
//! The maps use FxHash — the paper profiles BFS as hash-dominated, and
//! the fast integer hasher is the guide-recommended choice.

use crate::Vertex;
use rustc_hash::FxHashMap;

/// CSR-like storage of the non-empty partial edge lists on one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartialEdgeLists {
    /// Non-empty columns (global vertex ids), sorted ascending.
    cols: Vec<Vertex>,
    /// `offsets[i]..offsets[i+1]` indexes `rows` for `cols[i]`.
    offsets: Vec<usize>,
    /// Neighbor rows (global vertex ids), sorted within each column.
    rows: Vec<Vertex>,
    /// §2.4.2 mapping: global column id → dense local column index.
    col_index: FxHashMap<Vertex, u32>,
    /// Unique vertices appearing in any edge list, sorted ascending.
    row_ids: Vec<Vertex>,
    /// §2.4.2 mapping: global row id → dense local row index.
    row_index: FxHashMap<Vertex, u32>,
    /// Row-major (transposed) view: `row_offsets[rl]..row_offsets[rl+1]`
    /// indexes `row_cols` for row-local id `rl`. Lets a bottom-up
    /// traversal scan a stored row's columns without probing the
    /// column-major CSR once per entry.
    row_offsets: Vec<usize>,
    /// Column-local ids of each row's entries, ascending within a row.
    row_cols: Vec<u32>,
}

impl PartialEdgeLists {
    /// Build from raw adjacency entries `(row, col)`. Entries are sorted
    /// and duplicates (e.g. R-MAT multi-edges) collapsed.
    pub fn from_entries(mut entries: Vec<(Vertex, Vertex)>) -> Self {
        // Sort by (col, row); CSR is column-major because edge lists are
        // matrix columns (§2.2).
        entries.sort_unstable_by_key(|a| (a.1, a.0));
        entries.dedup();

        let mut cols: Vec<Vertex> = Vec::new();
        let mut offsets: Vec<usize> = vec![0];
        let mut rows: Vec<Vertex> = Vec::with_capacity(entries.len());
        for (row, col) in entries {
            if cols.last() != Some(&col) {
                if !cols.is_empty() {
                    offsets.push(rows.len());
                }
                cols.push(col);
            }
            rows.push(row);
        }
        if cols.is_empty() {
            offsets = vec![0];
        } else {
            offsets.push(rows.len());
        }
        debug_assert_eq!(
            offsets.len(),
            if cols.is_empty() { 1 } else { cols.len() + 1 }
        );

        let col_index: FxHashMap<Vertex, u32> = cols
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();

        let mut row_ids: Vec<Vertex> = rows.clone();
        row_ids.sort_unstable();
        row_ids.dedup();
        let row_index: FxHashMap<Vertex, u32> = row_ids
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();

        // Transposed index by count / prefix-sum / fill. Columns are
        // visited in ascending order, so each row's column list comes
        // out ascending without a sort.
        let mut row_offsets = vec![0usize; row_ids.len() + 1];
        for &u in &rows {
            row_offsets[row_index[&u] as usize + 1] += 1;
        }
        for i in 1..row_offsets.len() {
            row_offsets[i] += row_offsets[i - 1];
        }
        let mut row_cols = vec![0u32; rows.len()];
        let mut cursor = row_offsets.clone();
        for (ci, _) in cols.iter().enumerate() {
            for &u in &rows[offsets[ci]..offsets[ci + 1]] {
                let rl = row_index[&u] as usize;
                row_cols[cursor[rl]] = ci as u32;
                cursor[rl] += 1;
            }
        }

        Self {
            cols,
            offsets,
            rows,
            col_index,
            row_ids,
            row_index,
            row_offsets,
            row_cols,
        }
    }

    /// Number of non-empty columns (partial edge lists) stored.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of stored adjacency entries.
    pub fn num_entries(&self) -> usize {
        self.rows.len()
    }

    /// Number of unique vertices appearing in edge lists.
    pub fn num_row_ids(&self) -> usize {
        self.row_ids.len()
    }

    /// The non-empty columns, sorted ascending.
    pub fn cols(&self) -> &[Vertex] {
        &self.cols
    }

    /// The unique row vertices, sorted ascending.
    pub fn row_ids(&self) -> &[Vertex] {
        &self.row_ids
    }

    /// Dense local index of column `v`, if its list is non-empty
    /// (one hash probe — the operation the paper's profile is made of).
    pub fn col_local(&self, v: Vertex) -> Option<u32> {
        self.col_index.get(&v).copied()
    }

    /// Dense local index of a row vertex `u`, if it appears in any list.
    pub fn row_local(&self, u: Vertex) -> Option<u32> {
        self.row_index.get(&u).copied()
    }

    /// Neighbor rows of column local index `ci`.
    pub fn neighbors_by_local(&self, ci: u32) -> &[Vertex] {
        let ci = ci as usize;
        &self.rows[self.offsets[ci]..self.offsets[ci + 1]]
    }

    /// The partial edge list of global vertex `v` (empty slice if none).
    pub fn neighbors_of(&self, v: Vertex) -> &[Vertex] {
        match self.col_local(v) {
            Some(ci) => self.neighbors_by_local(ci),
            None => &[],
        }
    }

    /// Column-local ids stored for row-local id `rl`, ascending — the
    /// row-major access a bottom-up discover scans (§2.4.2's third view:
    /// "which of my columns can parent this row").
    pub fn cols_of_row_local(&self, rl: u32) -> &[u32] {
        let rl = rl as usize;
        &self.row_cols[self.row_offsets[rl]..self.row_offsets[rl + 1]]
    }

    /// Number of stored entries in row-local id `rl` (its local degree).
    pub fn row_degree(&self, rl: u32) -> usize {
        let rl = rl as usize;
        self.row_offsets[rl + 1] - self.row_offsets[rl]
    }

    /// Global column id of column-local index `ci`.
    pub fn col_of_local(&self, ci: u32) -> Vertex {
        self.cols[ci as usize]
    }

    /// Global row id of row-local index `rl`.
    pub fn row_of_local(&self, rl: u32) -> Vertex {
        self.row_ids[rl as usize]
    }

    /// Iterate `(column, partial edge list)` pairs in column order.
    pub fn iter_cols(&self) -> impl Iterator<Item = (Vertex, &[Vertex])> + '_ {
        self.cols
            .iter()
            .enumerate()
            .map(move |(i, &c)| (c, &self.rows[self.offsets[i]..self.offsets[i + 1]]))
    }

    /// Approximate resident bytes (entries + indexes), for the memory
    /// scalability checks.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.rows.len() * size_of::<Vertex>()
            + self.cols.len() * (size_of::<Vertex>() + size_of::<usize>())
            + self.row_ids.len() * (size_of::<Vertex>() + size_of::<usize>())
            + self.row_cols.len() * size_of::<u32>()
            // FxHashMap overhead approx: ~1.5 slots of (K, V) per entry.
            + (self.col_index.len() + self.row_index.len())
                * (size_of::<Vertex>() + size_of::<u32>())
                * 3
                / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PartialEdgeLists {
        // cols: 2 -> {5, 7}, 9 -> {1}, 4 -> {0, 1, 8}
        PartialEdgeLists::from_entries(vec![(7, 2), (5, 2), (1, 9), (0, 4), (8, 4), (1, 4)])
    }

    #[test]
    fn builds_sorted_csr() {
        let e = sample();
        assert_eq!(e.cols(), &[2, 4, 9]);
        assert_eq!(e.neighbors_of(2), &[5, 7]);
        assert_eq!(e.neighbors_of(4), &[0, 1, 8]);
        assert_eq!(e.neighbors_of(9), &[1]);
        assert_eq!(e.num_entries(), 6);
        assert_eq!(e.num_cols(), 3);
    }

    #[test]
    fn empty_columns_not_indexed() {
        let e = sample();
        assert_eq!(e.col_local(3), None);
        assert!(e.neighbors_of(3).is_empty());
        assert_eq!(e.col_local(2), Some(0));
        assert_eq!(e.col_local(4), Some(1));
    }

    #[test]
    fn row_ids_unique_sorted() {
        let e = sample();
        assert_eq!(e.row_ids(), &[0, 1, 5, 7, 8]);
        assert_eq!(e.num_row_ids(), 5);
        assert_eq!(e.row_local(1), Some(1));
        assert_eq!(e.row_local(6), None);
    }

    #[test]
    fn duplicates_collapsed() {
        let e = PartialEdgeLists::from_entries(vec![(1, 2), (1, 2), (1, 2), (3, 2)]);
        assert_eq!(e.neighbors_of(2), &[1, 3]);
        assert_eq!(e.num_entries(), 2);
    }

    #[test]
    fn empty_input() {
        let e = PartialEdgeLists::from_entries(Vec::new());
        assert_eq!(e.num_cols(), 0);
        assert_eq!(e.num_entries(), 0);
        assert!(e.neighbors_of(0).is_empty());
    }

    #[test]
    fn iter_cols_matches_lookup() {
        let e = sample();
        for (c, list) in e.iter_cols() {
            assert_eq!(e.neighbors_of(c), list);
        }
        assert_eq!(e.iter_cols().count(), 3);
    }

    #[test]
    fn row_major_index_matches_column_major() {
        // Every (row, col) entry reachable column-major must appear
        // exactly once row-major, with ascending column-local ids.
        let e = sample();
        let mut by_rows: Vec<(Vertex, Vertex)> = Vec::new();
        for rl in 0..e.num_row_ids() as u32 {
            let u = e.row_of_local(rl);
            assert_eq!(e.row_degree(rl), e.cols_of_row_local(rl).len());
            let cis = e.cols_of_row_local(rl);
            assert!(cis.windows(2).all(|w| w[0] < w[1]), "row {u} not sorted");
            for &ci in cis {
                by_rows.push((u, e.col_of_local(ci)));
            }
        }
        let mut by_cols: Vec<(Vertex, Vertex)> = e
            .iter_cols()
            .flat_map(|(c, list)| list.iter().map(move |&u| (u, c)))
            .collect();
        by_rows.sort_unstable();
        by_cols.sort_unstable();
        assert_eq!(by_rows, by_cols);
        let total: usize = (0..e.num_row_ids() as u32).map(|rl| e.row_degree(rl)).sum();
        assert_eq!(total, e.num_entries());
    }

    #[test]
    fn approx_bytes_positive_and_monotone() {
        let small = PartialEdgeLists::from_entries(vec![(1, 2)]);
        let big = sample();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
