//! Per-rank storage of partial edge lists (paper §2.4.1–§2.4.2).
//!
//! A rank in the 2D partition holds, for each vertex `v` of its block
//! column, the *partial edge list* of `v` — the rows of its stored
//! adjacency-matrix blocks where column `v` is nonzero. Two observations
//! from the paper shape the data structure:
//!
//! * §2.4.1 — although a rank's block column spans `O(n/C)` vertices,
//!   only `O(n/P)` of the partial edge lists are non-empty, so "it is
//!   necessary not to index all edge lists, but only the non-empty ones":
//!   the storage is a CSR over the non-empty columns only;
//! * §2.4.2 — global vertex indices are mapped to dense local indices by
//!   hashing. Two of the paper's three hash mappings live here: columns
//!   with non-empty lists, and the unique vertices appearing *in* lists
//!   (both `O(n/P)` in expectation, §2.4.1). The third mapping (owned
//!   vertices) lives with the BFS state, where owned ranges are
//!   contiguous.
//!
//! The maps use FxHash — the paper profiles BFS as hash-dominated, and
//! the fast integer hasher is the guide-recommended choice.

use crate::Vertex;
use rustc_hash::FxHashMap;

/// CSR-like storage of the non-empty partial edge lists on one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartialEdgeLists {
    /// Non-empty columns (global vertex ids), sorted ascending.
    cols: Vec<Vertex>,
    /// `offsets[i]..offsets[i+1]` indexes `rows` for `cols[i]`.
    offsets: Vec<usize>,
    /// Neighbor rows (global vertex ids), sorted within each column.
    rows: Vec<Vertex>,
    /// §2.4.2 mapping: global column id → dense local column index.
    col_index: FxHashMap<Vertex, u32>,
    /// Unique vertices appearing in any edge list, sorted ascending.
    row_ids: Vec<Vertex>,
    /// §2.4.2 mapping: global row id → dense local row index.
    row_index: FxHashMap<Vertex, u32>,
}

impl PartialEdgeLists {
    /// Build from raw adjacency entries `(row, col)`. Entries are sorted
    /// and duplicates (e.g. R-MAT multi-edges) collapsed.
    pub fn from_entries(mut entries: Vec<(Vertex, Vertex)>) -> Self {
        // Sort by (col, row); CSR is column-major because edge lists are
        // matrix columns (§2.2).
        entries.sort_unstable_by_key(|a| (a.1, a.0));
        entries.dedup();

        let mut cols: Vec<Vertex> = Vec::new();
        let mut offsets: Vec<usize> = vec![0];
        let mut rows: Vec<Vertex> = Vec::with_capacity(entries.len());
        for (row, col) in entries {
            if cols.last() != Some(&col) {
                if !cols.is_empty() {
                    offsets.push(rows.len());
                }
                cols.push(col);
            }
            rows.push(row);
        }
        if cols.is_empty() {
            offsets = vec![0];
        } else {
            offsets.push(rows.len());
        }
        debug_assert_eq!(
            offsets.len(),
            if cols.is_empty() { 1 } else { cols.len() + 1 }
        );

        let col_index: FxHashMap<Vertex, u32> = cols
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();

        let mut row_ids: Vec<Vertex> = rows.clone();
        row_ids.sort_unstable();
        row_ids.dedup();
        let row_index: FxHashMap<Vertex, u32> = row_ids
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();

        Self {
            cols,
            offsets,
            rows,
            col_index,
            row_ids,
            row_index,
        }
    }

    /// Number of non-empty columns (partial edge lists) stored.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of stored adjacency entries.
    pub fn num_entries(&self) -> usize {
        self.rows.len()
    }

    /// Number of unique vertices appearing in edge lists.
    pub fn num_row_ids(&self) -> usize {
        self.row_ids.len()
    }

    /// The non-empty columns, sorted ascending.
    pub fn cols(&self) -> &[Vertex] {
        &self.cols
    }

    /// The unique row vertices, sorted ascending.
    pub fn row_ids(&self) -> &[Vertex] {
        &self.row_ids
    }

    /// Dense local index of column `v`, if its list is non-empty
    /// (one hash probe — the operation the paper's profile is made of).
    pub fn col_local(&self, v: Vertex) -> Option<u32> {
        self.col_index.get(&v).copied()
    }

    /// Dense local index of a row vertex `u`, if it appears in any list.
    pub fn row_local(&self, u: Vertex) -> Option<u32> {
        self.row_index.get(&u).copied()
    }

    /// Neighbor rows of column local index `ci`.
    pub fn neighbors_by_local(&self, ci: u32) -> &[Vertex] {
        let ci = ci as usize;
        &self.rows[self.offsets[ci]..self.offsets[ci + 1]]
    }

    /// The partial edge list of global vertex `v` (empty slice if none).
    pub fn neighbors_of(&self, v: Vertex) -> &[Vertex] {
        match self.col_local(v) {
            Some(ci) => self.neighbors_by_local(ci),
            None => &[],
        }
    }

    /// Iterate `(column, partial edge list)` pairs in column order.
    pub fn iter_cols(&self) -> impl Iterator<Item = (Vertex, &[Vertex])> + '_ {
        self.cols
            .iter()
            .enumerate()
            .map(move |(i, &c)| (c, &self.rows[self.offsets[i]..self.offsets[i + 1]]))
    }

    /// Approximate resident bytes (entries + indexes), for the memory
    /// scalability checks.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.rows.len() * size_of::<Vertex>()
            + self.cols.len() * (size_of::<Vertex>() + size_of::<usize>())
            + self.row_ids.len() * size_of::<Vertex>()
            // FxHashMap overhead approx: ~1.5 slots of (K, V) per entry.
            + (self.col_index.len() + self.row_index.len())
                * (size_of::<Vertex>() + size_of::<u32>())
                * 3
                / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PartialEdgeLists {
        // cols: 2 -> {5, 7}, 9 -> {1}, 4 -> {0, 1, 8}
        PartialEdgeLists::from_entries(vec![(7, 2), (5, 2), (1, 9), (0, 4), (8, 4), (1, 4)])
    }

    #[test]
    fn builds_sorted_csr() {
        let e = sample();
        assert_eq!(e.cols(), &[2, 4, 9]);
        assert_eq!(e.neighbors_of(2), &[5, 7]);
        assert_eq!(e.neighbors_of(4), &[0, 1, 8]);
        assert_eq!(e.neighbors_of(9), &[1]);
        assert_eq!(e.num_entries(), 6);
        assert_eq!(e.num_cols(), 3);
    }

    #[test]
    fn empty_columns_not_indexed() {
        let e = sample();
        assert_eq!(e.col_local(3), None);
        assert!(e.neighbors_of(3).is_empty());
        assert_eq!(e.col_local(2), Some(0));
        assert_eq!(e.col_local(4), Some(1));
    }

    #[test]
    fn row_ids_unique_sorted() {
        let e = sample();
        assert_eq!(e.row_ids(), &[0, 1, 5, 7, 8]);
        assert_eq!(e.num_row_ids(), 5);
        assert_eq!(e.row_local(1), Some(1));
        assert_eq!(e.row_local(6), None);
    }

    #[test]
    fn duplicates_collapsed() {
        let e = PartialEdgeLists::from_entries(vec![(1, 2), (1, 2), (1, 2), (3, 2)]);
        assert_eq!(e.neighbors_of(2), &[1, 3]);
        assert_eq!(e.num_entries(), 2);
    }

    #[test]
    fn empty_input() {
        let e = PartialEdgeLists::from_entries(Vec::new());
        assert_eq!(e.num_cols(), 0);
        assert_eq!(e.num_entries(), 0);
        assert!(e.neighbors_of(0).is_empty());
    }

    #[test]
    fn iter_cols_matches_lookup() {
        let e = sample();
        for (c, list) in e.iter_cols() {
            assert_eq!(e.neighbors_of(c), list);
        }
        assert_eq!(e.iter_cols().count(), 3);
    }

    #[test]
    fn approx_bytes_positive_and_monotone() {
        let small = PartialEdgeLists::from_entries(vec![(1, 2)]);
        let big = sample();
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
