//! The fully built distributed graph.
//!
//! [`DistGraph::build`] routes every adjacency entry to the rank that
//! stores it under the paper's 2D partition, builds each rank's
//! [`PartialEdgeLists`], and derives the **expand targeting tables**: for
//! each owned vertex, which grid rows of its processor-column hold a
//! non-empty partial edge list for it. The paper (§2.2) relies on this
//! information ("each processor needs to store information about the
//! edge lists of other processors in its processor-column. The storage
//! for this information is proportional to the number of vertices owned
//! by a processor") to send frontier vertices only where they are
//! needed, which is what bounds expand message lengths (§3.1).
//!
//! In a real distributed system the tables are produced by a
//! construction-time registration exchange; the builder performs that
//! exchange directly since all ranks share the address space.

// Parallel index loops over per-rank arrays are intentional here.
#![allow(clippy::needless_range_loop)]

use crate::csr::PartialEdgeLists;
use crate::gen;
use crate::partition::TwoDPartition;
use crate::spec::{GraphFamily, GraphSpec};
use crate::Vertex;
use bgl_comm::ProcessorGrid;
use rayon::prelude::*;

/// One rank's share of the distributed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankGraph {
    /// The rank id (row-major in the grid).
    pub rank: usize,
    /// Vertices owned by this rank (contiguous block row).
    pub owned: std::ops::Range<Vertex>,
    /// The partial edge lists this rank stores.
    pub edges: PartialEdgeLists,
    /// For each owned vertex (indexed by offset from `owned.start`), the
    /// sorted grid rows `i'` of this rank's processor-column whose member
    /// holds a non-empty partial edge list for the vertex.
    pub expand_targets: Vec<Vec<u16>>,
}

impl RankGraph {
    /// Number of owned vertices.
    pub fn owned_len(&self) -> usize {
        (self.owned.end - self.owned.start) as usize
    }

    /// Local offset of an owned vertex (the paper's first local-index
    /// mapping; contiguous ownership makes it a subtraction).
    pub fn owned_local(&self, v: Vertex) -> Option<usize> {
        if self.owned.contains(&v) {
            Some((v - self.owned.start) as usize)
        } else {
            None
        }
    }
}

/// A graph distributed over an `R × C` grid per the paper's 2D
/// partitioning. All ranks live in one address space (the simulation
/// substrate); each rank only ever touches its own `RankGraph`.
///
/// ```
/// use bgl_comm::ProcessorGrid;
/// use bgl_graph::{DistGraph, GraphSpec};
/// let graph = DistGraph::build(GraphSpec::poisson(10_000, 8.0, 1), ProcessorGrid::new(2, 4));
/// assert_eq!(graph.ranks.len(), 8);
/// // Every adjacency entry is stored exactly once, ~ n·k of them:
/// let e = graph.total_entries() as f64;
/// assert!((e - 80_000.0).abs() / 80_000.0 < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct DistGraph {
    /// The generating specification.
    pub spec: GraphSpec,
    /// The partition map.
    pub partition: TwoDPartition,
    /// Per-rank data, indexed by rank.
    pub ranks: Vec<RankGraph>,
}

impl DistGraph {
    /// Build the distributed graph for `spec` on `grid`.
    pub fn build(spec: GraphSpec, grid: ProcessorGrid) -> Self {
        let partition = TwoDPartition::new(spec.n, grid);
        let p = grid.len();

        // 1. Generate entries cell-parallel and bucket them by storing rank.
        let buckets: Vec<Vec<(Vertex, Vertex)>> = match spec.family {
            GraphFamily::Poisson => {
                let cgrid = gen::ChunkGrid::new(spec.n);
                gen::full_cells(&cgrid)
                    .into_par_iter()
                    .fold(
                        || vec![Vec::new(); p],
                        |mut acc, (cr, cc)| {
                            for (u, v) in gen::cell_entries(&spec, &cgrid, cr, cc) {
                                acc[partition.storer_of_entry(u, v)].push((u, v));
                            }
                            acc
                        },
                    )
                    .reduce(
                        || vec![Vec::new(); p],
                        |mut a, b| {
                            for (av, bv) in a.iter_mut().zip(b) {
                                av.extend(bv);
                            }
                            a
                        },
                    )
            }
            GraphFamily::RMat { .. } => {
                let stride = 1 << 16;
                let chunks = gen::rmat_draws(&spec).div_ceil(stride).max(1);
                (0..chunks)
                    .into_par_iter()
                    .fold(
                        || vec![Vec::new(); p],
                        |mut acc, ci| {
                            for (u, v) in gen::rmat_chunk_edges(&spec, ci, stride) {
                                acc[partition.storer_of_entry(u, v)].push((u, v));
                            }
                            acc
                        },
                    )
                    .reduce(
                        || vec![Vec::new(); p],
                        |mut a, b| {
                            for (av, bv) in a.iter_mut().zip(b) {
                                av.extend(bv);
                            }
                            a
                        },
                    )
            }
            GraphFamily::SmallWorld { .. } => (0..gen::sw_chunks(&spec))
                .into_par_iter()
                .fold(
                    || vec![Vec::new(); p],
                    |mut acc, ci| {
                        for (u, v) in gen::small_world_chunk_edges(&spec, ci) {
                            acc[partition.storer_of_entry(u, v)].push((u, v));
                        }
                        acc
                    },
                )
                .reduce(
                    || vec![Vec::new(); p],
                    |mut a, b| {
                        for (av, bv) in a.iter_mut().zip(b) {
                            av.extend(bv);
                        }
                        a
                    },
                ),
        };

        // 2. Per-rank CSR construction.
        let edges: Vec<PartialEdgeLists> = buckets
            .into_par_iter()
            .map(PartialEdgeLists::from_entries)
            .collect();

        // 3. Registration exchange: owners learn which column peers hold
        //    non-empty lists for each owned vertex.
        let mut expand_targets: Vec<Vec<Vec<u16>>> = (0..p)
            .map(|rank| vec![Vec::new(); partition.owned_len(rank)])
            .collect();
        for rank in 0..p {
            let (i, _) = grid.position_of(rank);
            for &v in edges[rank].cols() {
                let owner = partition.owner_of(v);
                debug_assert_eq!(
                    grid.col_of(owner),
                    grid.col_of(rank),
                    "columns stored outside the owner's processor-column"
                );
                let off = (v - partition.owned_range(owner).start) as usize;
                expand_targets[owner][off].push(i as u16);
            }
        }
        for targets in expand_targets.iter_mut() {
            for t in targets.iter_mut() {
                t.sort_unstable();
                t.dedup();
            }
        }

        let ranks: Vec<RankGraph> = edges
            .into_iter()
            .zip(expand_targets)
            .enumerate()
            .map(|(rank, (edges, expand_targets))| RankGraph {
                rank,
                owned: partition.owned_range(rank),
                edges,
                expand_targets,
            })
            .collect();

        Self {
            spec,
            partition,
            ranks,
        }
    }

    /// The processor grid.
    pub fn grid(&self) -> ProcessorGrid {
        self.partition.grid()
    }

    /// Total adjacency entries stored across all ranks (≈ n·k).
    pub fn total_entries(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.edges.num_entries() as u64)
            .sum()
    }

    /// Largest per-rank storage footprint in bytes (memory scalability
    /// metric: must stay near the mean for balanced partitions).
    pub fn max_rank_bytes(&self) -> usize {
        self.ranks
            .iter()
            .map(|r| r.edges.approx_bytes())
            .max()
            .unwrap_or(0)
    }
}

/// Regenerate a single rank's share of the graph from the spec alone.
///
/// Fault recovery uses this: graphs are seed-generated, so a dead rank's
/// `RankGraph` need not be checkpointed — a spare node replays the
/// deterministic generator, keeping the entries this rank stores and the
/// targeting rows for the vertices it owns. Produces a result identical
/// to `DistGraph::build(spec, grid).ranks[rank]`.
pub fn rebuild_rank(spec: &GraphSpec, grid: ProcessorGrid, rank: usize) -> RankGraph {
    let partition = TwoDPartition::new(spec.n, grid);
    let owned = partition.owned_range(rank);
    let mut entries: Vec<(Vertex, Vertex)> = Vec::new();
    let mut expand_targets: Vec<Vec<u16>> = vec![Vec::new(); partition.owned_len(rank)];
    gen::for_each_entry(spec, |u, v| {
        let storer = partition.storer_of_entry(u, v);
        if storer == rank {
            entries.push((u, v));
        }
        // The registration exchange, replayed locally: any storer of a
        // non-empty list for an owned vertex is an expand target row.
        if owned.contains(&v) {
            let (i, _) = grid.position_of(storer);
            expand_targets[(v - owned.start) as usize].push(i as u16);
        }
    });
    for t in expand_targets.iter_mut() {
        t.sort_unstable();
        t.dedup();
    }
    RankGraph {
        rank,
        owned,
        edges: PartialEdgeLists::from_entries(entries),
        expand_targets,
    }
}

/// Sequential adjacency oracle: the same graph as `DistGraph::build`
/// on any grid, as plain sorted adjacency lists. Used by the reference
/// BFS for validation. Intended for small `n`.
pub fn adjacency(spec: &GraphSpec) -> Vec<Vec<Vertex>> {
    assert!(
        spec.n <= 50_000_000,
        "adjacency oracle is for validation-scale graphs"
    );
    let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); spec.n as usize];
    gen::for_each_entry(spec, |u, v| {
        // Entry (row u, col v): u is a neighbor in v's edge list, i.e.
        // edge {u, v}; record on the row side (symmetry covers both).
        adj[u as usize].push(v);
    });
    for list in adj.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec_small() -> GraphSpec {
        GraphSpec::poisson(200, 6.0, 11)
    }

    fn collect_all_entries(g: &DistGraph) -> Vec<(Vertex, Vertex)> {
        let mut all = Vec::new();
        for r in &g.ranks {
            for (c, list) in r.edges.iter_cols() {
                for &u in list {
                    all.push((u, c));
                }
            }
        }
        all.sort_unstable();
        all
    }

    #[test]
    fn grid_independence() {
        // The same spec distributed over different grids must hold the
        // same global entry set.
        let spec = spec_small();
        let g1 = DistGraph::build(spec, ProcessorGrid::new(1, 1));
        let g4 = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        let g6 = DistGraph::build(spec, ProcessorGrid::new(2, 3));
        let g8 = DistGraph::build(spec, ProcessorGrid::new(8, 1));
        let e1 = collect_all_entries(&g1);
        assert_eq!(e1, collect_all_entries(&g4));
        assert_eq!(e1, collect_all_entries(&g6));
        assert_eq!(e1, collect_all_entries(&g8));
        assert!(!e1.is_empty());
    }

    #[test]
    fn entries_stored_at_correct_rank() {
        let spec = spec_small();
        let g = DistGraph::build(spec, ProcessorGrid::new(3, 2));
        for r in &g.ranks {
            for (c, list) in r.edges.iter_cols() {
                for &u in list {
                    assert_eq!(g.partition.storer_of_entry(u, c), r.rank);
                }
            }
        }
    }

    #[test]
    fn matches_adjacency_oracle() {
        let spec = spec_small();
        let adj = adjacency(&spec);
        let g = DistGraph::build(spec, ProcessorGrid::new(2, 3));
        let entries = collect_all_entries(&g);
        let set: HashSet<(Vertex, Vertex)> = entries.into_iter().collect();
        let mut oracle = HashSet::new();
        for (v, list) in adj.iter().enumerate() {
            for &u in list {
                oracle.insert((u, v as Vertex));
            }
        }
        assert_eq!(set, oracle);
    }

    #[test]
    fn expand_targets_complete_and_correct() {
        let spec = spec_small();
        let grid = ProcessorGrid::new(4, 2);
        let g = DistGraph::build(spec, grid);
        for owner in &g.ranks {
            let (_, j) = grid.position_of(owner.rank);
            for (off, targets) in owner.expand_targets.iter().enumerate() {
                let v = owner.owned.start + off as Vertex;
                // Check against ground truth: peer (i', j) has v in cols
                // iff i' is in targets.
                for i2 in 0..grid.rows() {
                    let peer = grid.rank_of(i2, j);
                    let has = g.ranks[peer].edges.col_local(v).is_some();
                    let listed = targets.contains(&(i2 as u16));
                    assert_eq!(has, listed, "v={v} peer row {i2}");
                }
            }
        }
    }

    #[test]
    fn one_d_grid_stores_full_edge_lists_at_owner() {
        // R = 1: every vertex's complete edge list lives at its owner.
        let spec = spec_small();
        let g = DistGraph::build(spec, ProcessorGrid::one_d(4));
        let adj = adjacency(&spec);
        for r in &g.ranks {
            for v in r.owned.clone() {
                assert_eq!(
                    r.edges.neighbors_of(v),
                    adj[v as usize].as_slice(),
                    "vertex {v}"
                );
            }
        }
    }

    #[test]
    fn nonempty_lists_scale_like_n_over_p() {
        // §2.4.1: expected non-empty edge lists per rank is O(n/P), far
        // below the O(n/C) naive bound when R is large.
        let spec = GraphSpec::poisson(2000, 4.0, 3);
        let g = DistGraph::build(spec, ProcessorGrid::new(8, 2));
        let n_over_p = 2000.0 / 16.0;
        for r in &g.ranks {
            // Expected ~ min(nk/P, ...); assert a generous factor.
            assert!(
                (r.edges.num_cols() as f64) < 6.0 * n_over_p,
                "rank {} indexes {} lists",
                r.rank,
                r.edges.num_cols()
            );
        }
    }

    #[test]
    fn total_entries_close_to_nk() {
        let spec = GraphSpec::poisson(5000, 8.0, 5);
        let g = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        let expect = 5000.0 * 8.0;
        let got = g.total_entries() as f64;
        assert!((got - expect).abs() / expect < 0.1, "got {got}");
    }

    #[test]
    fn rmat_builds_and_balances_poorly() {
        // R-MAT's skew should be visible as imbalance across ranks —
        // a sanity check that the extension actually stresses balance.
        let spec = GraphSpec::rmat(1 << 11, 8.0, 9);
        let g = DistGraph::build(spec, ProcessorGrid::new(4, 4));
        let counts: Vec<usize> = g.ranks.iter().map(|r| r.edges.num_entries()).collect();
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(max > 1.5 * mean, "max={max} mean={mean}");
    }

    #[test]
    fn rebuild_rank_matches_build() {
        for spec in [
            GraphSpec::poisson(300, 5.0, 7),
            GraphSpec::rmat(1 << 8, 6.0, 3),
        ] {
            let grid = ProcessorGrid::new(3, 2);
            let g = DistGraph::build(spec, grid);
            for rank in 0..grid.len() {
                let rebuilt = rebuild_rank(&spec, grid, rank);
                assert_eq!(rebuilt, g.ranks[rank], "rank {rank}");
            }
        }
    }

    #[test]
    fn owned_local_offsets() {
        let spec = spec_small();
        let g = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        let r = &g.ranks[1];
        assert_eq!(r.owned_local(r.owned.start), Some(0));
        assert_eq!(r.owned_local(r.owned.end - 1), Some(r.owned_len() - 1));
        assert_eq!(r.owned_local(r.owned.end), None);
    }
}
