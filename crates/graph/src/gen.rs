//! Deterministic, partition-independent edge generation.
//!
//! The adjacency matrix of a Poisson random graph is sampled cell by
//! cell: the vertex space is cut into fixed-size chunks (independent of
//! any processor grid), and each *cell* — a chunk-row × chunk-column
//! rectangle of the matrix — draws its nonzeros with **geometric
//! skip-sampling** (expected cost proportional to the number of edges,
//! not matrix area) from a ChaCha8 stream seeded by `(graph seed,
//! canonical cell id)`. Only the lower triangle is sampled; the upper
//! triangle mirrors it, so the matrix is exactly symmetric and the graph
//! undirected.
//!
//! Because a cell's edges depend only on the spec, any subset of cells
//! can be regenerated anywhere, in any order, in parallel — this is what
//! lets the same graph be rebuilt identically under every `R × C`
//! partitioning (strong scaling, Table 1 topology comparisons) and lets
//! a distributed builder route each cell to the rank that stores it.
//!
//! The R-MAT extension draws a fixed number of directed edge samples by
//! recursive quadrant descent, also chunked into independently seeded
//! streams.

use crate::spec::{GraphFamily, GraphSpec};
use crate::Vertex;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Default chunk edge length (vertices per chunk): cells are at most
/// `16384 × 16384` slots, small enough for cheap parallel work items and
/// large enough that stream-setup cost is negligible.
pub const DEFAULT_CHUNK: u64 = 1 << 14;

/// The fixed chunking of the vertex space used by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkGrid {
    n: u64,
    chunk: u64,
}

impl ChunkGrid {
    /// Chunking for `n` vertices with the default chunk size.
    pub fn new(n: u64) -> Self {
        Self::with_chunk(n, DEFAULT_CHUNK)
    }

    /// Chunking with an explicit chunk size (tests use small chunks to
    /// exercise many cells on small graphs).
    pub fn with_chunk(n: u64, chunk: u64) -> Self {
        assert!(n >= 1 && chunk >= 1);
        Self { n, chunk }
    }

    /// Number of chunks.
    pub fn chunks(&self) -> u64 {
        self.n.div_ceil(self.chunk)
    }

    /// Vertex range of chunk `c`.
    pub fn range(&self, c: u64) -> std::ops::Range<Vertex> {
        debug_assert!(c < self.chunks());
        (c * self.chunk)..((c + 1) * self.chunk).min(self.n)
    }

    /// All cells of the lower triangle (including the diagonal), i.e.
    /// the independent generation work items: `(chunk_row, chunk_col)`
    /// with `chunk_row >= chunk_col`.
    pub fn lower_cells(&self) -> Vec<(u64, u64)> {
        let k = self.chunks();
        let mut cells = Vec::with_capacity((k * (k + 1) / 2) as usize);
        for cr in 0..k {
            for cc in 0..=cr {
                cells.push((cr, cc));
            }
        }
        cells
    }
}

/// SplitMix64 finalizer for deriving independent stream seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cell_seed(seed: u64, lo: u64, hi: u64) -> u64 {
    mix(mix(mix(seed) ^ lo) ^ hi)
}

/// Geometric skip sampler: visits each of `area` slots independently
/// with probability `p`, in expected `p·area` draws.
struct SkipSampler {
    rng: ChaCha8Rng,
    ln_q: f64, // ln(1 - p)
    all: bool, // p >= 1: every slot
}

impl SkipSampler {
    fn new(seed: u64, p: f64) -> Self {
        debug_assert!(p >= 0.0);
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            ln_q: (1.0 - p).ln(),
            all: p >= 1.0,
        }
    }

    /// Number of slots to skip before the next hit.
    fn skip(&mut self) -> u64 {
        if self.all {
            return 0;
        }
        let u: f64 = self.rng.gen();
        let s = ((1.0 - u).ln() / self.ln_q).floor();
        if s >= u64::MAX as f64 {
            u64::MAX
        } else {
            s as u64
        }
    }

    /// Iterate the hit positions in `0..area`.
    fn positions(mut self, area: u64) -> impl Iterator<Item = u64> {
        let mut cur = 0u64;
        std::iter::from_fn(move || {
            let (next, overflow) = cur.overflowing_add(self.skip());
            if overflow || next >= area {
                return None;
            }
            cur = next + 1;
            Some(next)
        })
    }
}

/// Map a linear slot index of a strict lower triangle (`u > v`, local
/// coordinates in `0..len`) back to `(u_local, v_local)`.
fn triangle_coords(t: u64) -> (u64, u64) {
    // u is the largest integer with u(u-1)/2 <= t.
    let mut u = ((1.0 + (1.0 + 8.0 * t as f64).sqrt()) / 2.0) as u64;
    while u * (u.saturating_sub(1)) / 2 > t {
        u -= 1;
    }
    while (u + 1) * u / 2 <= t {
        u += 1;
    }
    let v = t - u * (u - 1) / 2;
    debug_assert!(v < u);
    (u, v)
}

/// Generate every adjacency-matrix entry `(row u, col v)` of cell
/// `(chunk_row, chunk_col)` for a **Poisson** spec. Both triangle sides
/// are covered: ask for cell `(a, b)` and you get exactly the entries
/// whose row lies in chunk `a` and column in chunk `b`.
pub fn cell_entries(
    spec: &GraphSpec,
    grid: &ChunkGrid,
    chunk_row: u64,
    chunk_col: u64,
) -> Vec<(Vertex, Vertex)> {
    assert!(
        matches!(spec.family, GraphFamily::Poisson),
        "cell_entries applies to the Poisson family; use rmat_chunk_edges for R-MAT"
    );
    let p = spec.edge_probability();
    if p <= 0.0 {
        return Vec::new();
    }
    let (lo, hi) = (chunk_row.min(chunk_col), chunk_row.max(chunk_col));
    let seed = cell_seed(spec.seed, lo, hi);
    let mut out = Vec::new();

    if lo == hi {
        // Diagonal cell: strict lower triangle of the chunk, mirrored.
        let range = grid.range(lo);
        let len = range.end - range.start;
        if len < 2 {
            return out;
        }
        let area = len * (len - 1) / 2;
        for t in SkipSampler::new(seed, p).positions(area) {
            let (ul, vl) = triangle_coords(t);
            let (u, v) = (range.start + ul, range.start + vl);
            out.push((u, v));
            out.push((v, u));
        }
    } else {
        // Off-diagonal: canonical orientation is rows = hi, cols = lo.
        let rows = grid.range(hi);
        let cols = grid.range(lo);
        let width = cols.end - cols.start;
        let area = (rows.end - rows.start) * width;
        let transpose = chunk_row == lo;
        for t in SkipSampler::new(seed, p).positions(area) {
            let u = rows.start + t / width;
            let v = cols.start + t % width;
            if transpose {
                out.push((v, u));
            } else {
                out.push((u, v));
            }
        }
    }
    out
}

/// All cells whose entries land in rows of chunk `a` **or** need
/// mirroring there — for Poisson, simply every `(a, b)` pair: callers
/// iterate `(cr, cc)` over the full chunk grid. Provided for clarity in
/// builder code.
pub fn full_cells(grid: &ChunkGrid) -> Vec<(u64, u64)> {
    let k = grid.chunks();
    let mut cells = Vec::with_capacity((k * k) as usize);
    for cr in 0..k {
        for cc in 0..k {
            cells.push((cr, cc));
        }
    }
    cells
}

/// Number of directed R-MAT draws for a spec (`n·k / 2` undirected
/// samples, each emitted in both directions).
pub fn rmat_draws(spec: &GraphSpec) -> u64 {
    (spec.n as f64 * spec.avg_degree / 2.0).round() as u64
}

/// Draw chunk `chunk_idx` of the R-MAT edge stream (draw indices
/// `[chunk_idx·stride, min((chunk_idx+1)·stride, total))`), emitting
/// both directions of each sampled edge. Self-loops are skipped.
pub fn rmat_chunk_edges(spec: &GraphSpec, chunk_idx: u64, stride: u64) -> Vec<(Vertex, Vertex)> {
    let GraphFamily::RMat { a, b, c } = spec.family else {
        // bgl-lint: allow(r1, reason = "API contract: the builder dispatches on spec.family before calling the family-specific generator")
        panic!("rmat_chunk_edges requires an R-MAT spec");
    };
    let total = rmat_draws(spec);
    let start = chunk_idx * stride;
    if start >= total {
        return Vec::new();
    }
    let count = stride.min(total - start);
    let scale = 64 - (spec.n - 1).leading_zeros().min(63);
    let scale = scale.max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(cell_seed(spec.seed, R_MAT_SALT, chunk_idx));
    let mut out = Vec::with_capacity(2 * count as usize);
    for _ in 0..count {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u == v || u >= spec.n || v >= spec.n {
            continue;
        }
        out.push((u, v));
        out.push((v, u));
    }
    out
}

const R_MAT_SALT: u64 = 0x524D_4154; // "RMAT"
const SW_SALT: u64 = 0x5357_4154; // "SWAT"

/// Vertices per small-world generation chunk (shared by the distributed
/// builder and the sequential visitor so both see the same stream).
pub const SW_STRIDE: u64 = 1 << 14;

/// Generate the Watts–Strogatz edges whose *source lattice vertex* lies
/// in chunk `chunk_idx` (vertices `[chunk_idx·SW_STRIDE, …)`), emitting
/// both directions of each edge.
///
/// Each vertex `u` contributes lattice edges `(u, (u+j) mod n)` for
/// `j = 1..=k/2`; with probability `rewire` an edge is redirected to a
/// uniform random target (self-loops keep the lattice target instead).
/// Multi-edges can arise and are collapsed by the CSR layer, so the
/// realized degree is marginally below `k` at high rewiring.
pub fn small_world_chunk_edges(spec: &GraphSpec, chunk_idx: u64) -> Vec<(Vertex, Vertex)> {
    let GraphFamily::SmallWorld { rewire } = spec.family else {
        // bgl-lint: allow(r1, reason = "API contract: the builder dispatches on spec.family before calling the family-specific generator")
        panic!("small_world_chunk_edges requires a SmallWorld spec");
    };
    let n = spec.n;
    let half_k = (spec.avg_degree as u64) / 2;
    let start = chunk_idx * SW_STRIDE;
    if start >= n {
        return Vec::new();
    }
    let end = (start + SW_STRIDE).min(n);
    let mut rng = ChaCha8Rng::seed_from_u64(cell_seed(spec.seed, SW_SALT, chunk_idx));
    let mut out = Vec::with_capacity(((end - start) * half_k * 2) as usize);
    for u in start..end {
        for j in 1..=half_k {
            let lattice = (u + j) % n;
            if lattice == u {
                continue; // n <= k/2 degenerate wrap
            }
            let r: f64 = rng.gen();
            let target = if r < rewire {
                let w = rng.gen_range(0..n);
                if w == u {
                    lattice
                } else {
                    w
                }
            } else {
                lattice
            };
            out.push((u, target));
            out.push((target, u));
        }
    }
    out
}

/// Number of generation chunks for a small-world spec.
pub fn sw_chunks(spec: &GraphSpec) -> u64 {
    spec.n.div_ceil(SW_STRIDE).max(1)
}

/// Visit every adjacency entry `(row, col)` of the graph, sequentially.
/// Convenience for oracles and small tests; builders iterate cells in
/// parallel instead.
pub fn for_each_entry<F: FnMut(Vertex, Vertex)>(spec: &GraphSpec, mut f: F) {
    match spec.family {
        GraphFamily::Poisson => {
            let grid = ChunkGrid::new(spec.n);
            for (cr, cc) in grid.lower_cells() {
                for (u, v) in cell_entries(spec, &grid, cr, cc) {
                    f(u, v);
                }
                // Mirrors of off-diagonal cells (diagonal cells already
                // emit both directions).
                if cr != cc {
                    for (u, v) in cell_entries(spec, &grid, cc, cr) {
                        f(u, v);
                    }
                }
            }
        }
        GraphFamily::RMat { .. } => {
            let stride = 1 << 16;
            let chunks = rmat_draws(spec).div_ceil(stride).max(1);
            for ci in 0..chunks {
                for (u, v) in rmat_chunk_edges(spec, ci, stride) {
                    f(u, v);
                }
            }
        }
        GraphFamily::SmallWorld { .. } => {
            for ci in 0..sw_chunks(spec) {
                for (u, v) in small_world_chunk_edges(spec, ci) {
                    f(u, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn all_entries(spec: &GraphSpec) -> Vec<(Vertex, Vertex)> {
        let mut v = Vec::new();
        for_each_entry(spec, |a, b| v.push((a, b)));
        v
    }

    #[test]
    fn symmetric_and_loop_free() {
        let spec = GraphSpec::poisson(500, 8.0, 42);
        let entries = all_entries(&spec);
        let set: HashSet<_> = entries.iter().copied().collect();
        assert_eq!(set.len(), entries.len(), "no duplicate entries");
        for &(u, v) in &set {
            assert_ne!(u, v, "no self loops");
            assert!(set.contains(&(v, u)), "mirror of ({u},{v}) missing");
            assert!(u < 500 && v < 500);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = GraphSpec::poisson(300, 5.0, 7);
        assert_eq!(all_entries(&spec), all_entries(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = all_entries(&GraphSpec::poisson(300, 5.0, 1));
        let b = all_entries(&GraphSpec::poisson(300, 5.0, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn chunking_does_not_change_the_graph() {
        // The same spec sampled under different chunk sizes gives
        // *statistically identical* but not bit-identical graphs — the
        // chunk size is part of the generator definition, which is why it
        // is a crate constant rather than a parameter. What MUST hold is
        // that cell regeneration is order- and subset-independent:
        let spec = GraphSpec::poisson(400, 6.0, 99);
        let grid = ChunkGrid::with_chunk(400, 64);
        let mut forward = Vec::new();
        let mut backward = Vec::new();
        let cells = grid.lower_cells();
        for &(cr, cc) in &cells {
            forward.extend(cell_entries(&spec, &grid, cr, cc));
        }
        for &(cr, cc) in cells.iter().rev() {
            backward.extend(cell_entries(&spec, &grid, cr, cc));
        }
        let mut f = forward.clone();
        let mut b = backward.clone();
        f.sort_unstable();
        b.sort_unstable();
        assert_eq!(f, b);
    }

    #[test]
    fn mirror_cells_transpose_exactly() {
        let spec = GraphSpec::poisson(300, 6.0, 5);
        let grid = ChunkGrid::with_chunk(300, 50);
        for cr in 0..grid.chunks() {
            for cc in 0..cr {
                let mut fwd = cell_entries(&spec, &grid, cr, cc);
                let mut mir: Vec<_> = cell_entries(&spec, &grid, cc, cr)
                    .into_iter()
                    .map(|(u, v)| (v, u))
                    .collect();
                fwd.sort_unstable();
                mir.sort_unstable();
                assert_eq!(fwd, mir);
            }
        }
    }

    #[test]
    fn entries_stay_in_cell_bounds() {
        let spec = GraphSpec::poisson(250, 10.0, 3);
        let grid = ChunkGrid::with_chunk(250, 60);
        for cr in 0..grid.chunks() {
            for cc in 0..grid.chunks() {
                let rows = grid.range(cr);
                let cols = grid.range(cc);
                for (u, v) in cell_entries(&spec, &grid, cr, cc) {
                    assert!(rows.contains(&u), "row {u} outside chunk {cr}");
                    assert!(cols.contains(&v), "col {v} outside chunk {cc}");
                }
            }
        }
    }

    #[test]
    fn average_degree_close_to_k() {
        let n = 20_000u64;
        let k = 12.0;
        let spec = GraphSpec::poisson(n, k, 12345);
        let entries = all_entries(&spec);
        let measured = entries.len() as f64 / n as f64;
        // Binomial concentration: within 5% for nk = 240k entries.
        assert!(
            (measured - k).abs() / k < 0.05,
            "measured degree {measured}, expected ~{k}"
        );
    }

    #[test]
    fn zero_degree_graph_is_empty() {
        let spec = GraphSpec::poisson(100, 0.0, 1);
        assert!(all_entries(&spec).is_empty());
    }

    #[test]
    fn dense_probability_one() {
        // k = n-1 => p ~ 1: nearly complete graph. With p >= 1 the skip
        // sampler emits every slot.
        let n = 40u64;
        let spec = GraphSpec::poisson(n, (n - 1) as f64, 0);
        let entries = all_entries(&spec);
        // p = (n-1)/n < 1 so not exactly complete, but dense.
        assert!(entries.len() as u64 > n * (n - 1) * 9 / 10);
    }

    #[test]
    fn triangle_coords_roundtrip() {
        let mut t = 0u64;
        for u in 1..60u64 {
            for v in 0..u {
                assert_eq!(triangle_coords(t), (u, v), "t={t}");
                t += 1;
            }
        }
    }

    #[test]
    fn rmat_entries_symmetric_and_deterministic() {
        let spec = GraphSpec::rmat(1 << 10, 8.0, 21);
        let a = all_entries(&spec);
        let b = all_entries(&spec);
        assert_eq!(a, b);
        let set: HashSet<_> = a.iter().copied().collect();
        for &(u, v) in &set {
            assert!(set.contains(&(v, u)));
            assert_ne!(u, v);
            assert!(u < 1 << 10);
        }
        // Skew: R-MAT should concentrate degree on low vertex ids.
        let low: usize = a.iter().filter(|&&(u, _)| u < 128).count();
        let high: usize = a.iter().filter(|&&(u, _)| u >= 896).count();
        assert!(low > 3 * high, "low={low} high={high}");
    }

    #[test]
    fn small_world_symmetric_deterministic_and_local() {
        let spec = GraphSpec::small_world(2000, 8.0, 0.1, 33);
        let a = all_entries(&spec);
        let b = all_entries(&spec);
        assert_eq!(a, b, "deterministic");
        let set: HashSet<_> = a.iter().copied().collect();
        for &(u, v) in &set {
            assert_ne!(u, v, "no self loops");
            assert!(set.contains(&(v, u)), "mirror of ({u},{v}) missing");
            assert!(u < 2000 && v < 2000);
        }
        // ~90% of edges stay lattice-local (distance <= k/2 on the ring).
        let local = a
            .iter()
            .filter(|&&(u, v)| {
                let d = u.abs_diff(v);
                d.min(2000 - d) <= 4
            })
            .count();
        assert!(
            local as f64 > 0.8 * a.len() as f64,
            "local {} of {}",
            local,
            a.len()
        );
    }

    #[test]
    fn small_world_rewiring_shrinks_distances() {
        // The WS phenomenon: a little rewiring collapses the lattice's
        // O(n/k) distances. Compare reachability depth via a crude BFS.
        let bfs_depth = |spec: &GraphSpec| -> u32 {
            let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); spec.n as usize];
            for_each_entry(spec, |u, v| adj[u as usize].push(v));
            let mut level = vec![u32::MAX; spec.n as usize];
            let mut q = std::collections::VecDeque::new();
            level[0] = 0;
            q.push_back(0u64);
            let mut max = 0;
            while let Some(x) = q.pop_front() {
                for &y in &adj[x as usize] {
                    if level[y as usize] == u32::MAX {
                        level[y as usize] = level[x as usize] + 1;
                        max = max.max(level[y as usize]);
                        q.push_back(y);
                    }
                }
            }
            max
        };
        let lattice = bfs_depth(&GraphSpec::small_world(1000, 6.0, 0.0, 1));
        let rewired = bfs_depth(&GraphSpec::small_world(1000, 6.0, 0.2, 1));
        assert!(
            rewired * 3 < lattice,
            "lattice depth {lattice}, rewired depth {rewired}"
        );
    }

    #[test]
    fn small_world_degree_close_to_k() {
        let spec = GraphSpec::small_world(5000, 10.0, 0.3, 7);
        let mut deg = vec![0u32; 5000];
        let mut seen = HashSet::new();
        for_each_entry(&spec, |u, v| {
            if seen.insert((u, v)) {
                deg[u as usize] += 1;
            }
        });
        let mean = deg.iter().map(|&d| d as f64).sum::<f64>() / 5000.0;
        assert!((mean - 10.0).abs() < 0.5, "mean degree {mean}");
    }

    #[test]
    fn rmat_chunks_partition_the_stream() {
        let spec = GraphSpec::rmat(1 << 9, 6.0, 77);
        let total = rmat_draws(&spec);
        let stride = 100;
        let mut by_chunks = Vec::new();
        for ci in 0..total.div_ceil(stride) {
            by_chunks.extend(rmat_chunk_edges(&spec, ci, stride));
        }
        let mut whole = Vec::new();
        for_each_entry(&spec, |u, v| whole.push((u, v)));
        // Different stride chunking => different streams is allowed; but
        // the same stride must reproduce.
        let mut again = Vec::new();
        for ci in 0..total.div_ceil(stride) {
            again.extend(rmat_chunk_edges(&spec, ci, stride));
        }
        assert_eq!(by_chunks, again);
        assert!(!whole.is_empty());
    }
}
