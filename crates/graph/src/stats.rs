//! Graph statistics: degree distributions and connectivity.
//!
//! Used by the experiment harness for sanity panels (the Poisson
//! generator must actually produce Poisson degrees — mean ≈ variance ≈
//! k) and by tests that need to reason about the giant component the
//! paper's searches traverse.

use crate::dist::DistGraph;
use crate::Vertex;
use serde::{Deserialize, Serialize};

/// Summary of a degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub n: u64,
    /// Mean degree.
    pub mean: f64,
    /// Degree variance (population).
    pub variance: f64,
    /// Maximum degree.
    pub max: u32,
    /// Number of isolated (degree-0) vertices.
    pub isolated: u64,
    /// Histogram: `histogram[d]` = number of vertices with degree `d`
    /// (truncated at `max`).
    pub histogram: Vec<u64>,
}

impl DegreeStats {
    /// Compute from an explicit degree array.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        let n = degrees.len() as u64;
        let max = degrees.iter().copied().max().unwrap_or(0);
        let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / n.max(1) as f64;
        let variance = degrees
            .iter()
            .map(|&d| {
                let e = d as f64 - mean;
                e * e
            })
            .sum::<f64>()
            / n.max(1) as f64;
        let mut histogram = vec![0u64; max as usize + 1];
        for &d in degrees {
            histogram[d as usize] += 1;
        }
        Self {
            n,
            mean,
            variance,
            max,
            isolated: histogram.first().copied().unwrap_or(0),
            histogram,
        }
    }

    /// Dispersion index variance/mean — 1.0 for a Poisson distribution,
    /// ≫ 1 for heavy-tailed (R-MAT) degrees.
    pub fn dispersion(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.variance / self.mean
        }
    }
}

/// Compute every vertex's degree from a distributed graph: each rank
/// contributes the lengths of its partial edge lists, aggregated at the
/// vertex (this is how a real distributed degree census would run; the
/// builder's single address space just skips the message step).
pub fn degrees(graph: &DistGraph) -> Vec<u32> {
    let n = graph.spec.n as usize;
    let mut deg = vec![0u32; n];
    for rg in &graph.ranks {
        for (col, list) in rg.edges.iter_cols() {
            let partial = u32::try_from(list.len()).unwrap_or(u32::MAX);
            deg[col as usize] = deg[col as usize].saturating_add(partial);
        }
    }
    deg
}

/// Connected components of an adjacency-list graph (sequential oracle
/// utility). Returns per-vertex component ids and the component sizes,
/// largest first.
pub fn connected_components(adj: &[Vec<Vertex>]) -> (Vec<u32>, Vec<u64>) {
    let n = adj.len();
    let mut comp = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        let id = u32::try_from(sizes.len()).unwrap_or(u32::MAX - 1);
        let mut size = 0u64;
        comp[start] = id;
        queue.push_back(start as Vertex);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &u in &adj[v as usize] {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = id;
                    queue.push_back(u);
                }
            }
        }
        sizes.push(size);
    }
    // Sort sizes descending but keep ids stable in `comp`; report sorted
    // sizes separately.
    let mut sorted = sizes.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    (comp, sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist;
    use crate::spec::GraphSpec;
    use bgl_comm::ProcessorGrid;

    #[test]
    fn poisson_degrees_have_unit_dispersion() {
        let spec = GraphSpec::poisson(20_000, 10.0, 77);
        let graph = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        let stats = DegreeStats::from_degrees(&degrees(&graph));
        assert!((stats.mean - 10.0).abs() < 0.3, "mean {}", stats.mean);
        assert!(
            (stats.dispersion() - 1.0).abs() < 0.15,
            "dispersion {}",
            stats.dispersion()
        );
        assert_eq!(stats.n, 20_000);
        assert_eq!(
            stats.histogram.iter().sum::<u64>(),
            20_000,
            "histogram covers all vertices"
        );
    }

    #[test]
    fn rmat_degrees_are_overdispersed() {
        let spec = GraphSpec::rmat(1 << 13, 16.0, 5);
        let graph = DistGraph::build(spec, ProcessorGrid::new(2, 2));
        let stats = DegreeStats::from_degrees(&degrees(&graph));
        assert!(
            stats.dispersion() > 3.0,
            "R-MAT should be heavy-tailed, dispersion {}",
            stats.dispersion()
        );
    }

    #[test]
    fn degrees_match_oracle_adjacency() {
        let spec = GraphSpec::poisson(500, 7.0, 9);
        let graph = DistGraph::build(spec, ProcessorGrid::new(3, 2));
        let adj = dist::adjacency(&spec);
        let deg = degrees(&graph);
        for (v, list) in adj.iter().enumerate() {
            assert_eq!(deg[v] as usize, list.len(), "vertex {v}");
        }
    }

    #[test]
    fn degree_stats_of_empty_and_uniform() {
        let s = DegreeStats::from_degrees(&[0, 0, 0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.isolated, 3);
        assert_eq!(s.dispersion(), 0.0);
        let s = DegreeStats::from_degrees(&[4, 4, 4, 4]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.max, 4);
    }

    #[test]
    fn components_giant_at_k10() {
        // Random graph theory: at k = 10 almost everything is one giant
        // component.
        let spec = GraphSpec::poisson(5_000, 10.0, 31);
        let adj = dist::adjacency(&spec);
        let (comp, sizes) = connected_components(&adj);
        assert_eq!(comp.iter().filter(|&&c| c == u32::MAX).count(), 0);
        assert!(sizes[0] as f64 > 0.99 * 5_000.0, "giant {}", sizes[0]);
    }

    #[test]
    fn components_fragmented_below_threshold() {
        // Below the k = 1 percolation threshold the graph shatters.
        let spec = GraphSpec::poisson(5_000, 0.5, 31);
        let adj = dist::adjacency(&spec);
        let (_, sizes) = connected_components(&adj);
        assert!(sizes.len() > 1_000, "components {}", sizes.len());
        assert!((sizes[0] as f64) < 0.05 * 5_000.0, "largest {}", sizes[0]);
    }

    #[test]
    fn component_sizes_sum_to_n() {
        let spec = GraphSpec::poisson(1_000, 1.0, 3);
        let adj = dist::adjacency(&spec);
        let (comp, sizes) = connected_components(&adj);
        assert_eq!(sizes.iter().sum::<u64>(), 1_000);
        // Ids are dense 0..len.
        let max_id = comp.iter().max().unwrap();
        assert_eq!(*max_id as usize + 1, sizes.len());
    }
}
