//! The paper's 2D partition of the adjacency matrix (§2.2).
//!
//! For `P = R × C` processors the symmetric adjacency matrix is divided
//! into `R·C` **block rows** and `C` **block columns**. Processor
//! `(i, j)` owns the vertices of block row `j·R + i` and stores the `C`
//! blocks `(m·R + i, j)` for `m = 0..C` — i.e. the partial edge lists
//! (matrix columns) of every vertex in block column `j`, restricted to
//! its own block rows.
//!
//! Two facts the algorithms rely on (proved in the module tests):
//!
//! 1. a vertex owned by processor `(i, j)` has its matrix column inside
//!    block column `j`, so only the processor-column `j` can hold partial
//!    edge lists for it (this is why *expand* is a column operation);
//! 2. any matrix row stored by processor `(i, j)` belongs to a vertex
//!    owned by some processor `(i, m)` in the same processor-row (this is
//!    why *fold* is a row operation).
//!
//! The conventional 1D partition is the special case `R = 1`; `C = 1`
//! gives the transposed 1D variant of Table 1.
//!
//! Vertex ranges are balanced by rounding: block row `b` covers
//! `[⌊b·n/P⌋, ⌊(b+1)·n/P⌋)`, so `n` need not be a multiple of `P`.

use crate::Vertex;
use bgl_comm::ProcessorGrid;
use serde::{Deserialize, Serialize};

/// The 2D partition map for `n` vertices on an `R × C` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoDPartition {
    n: u64,
    r: usize,
    c: usize,
}

impl TwoDPartition {
    /// Create a partition; panics if the grid has more processors than
    /// there are vertices to own (every block row should be non-empty
    /// for meaningful experiments, though empty block rows are handled).
    pub fn new(n: u64, grid: ProcessorGrid) -> Self {
        assert!(n >= 1, "graph must have at least one vertex");
        Self {
            n,
            r: grid.rows(),
            c: grid.cols(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.r * self.c
    }

    /// Grid rows (R).
    pub fn rows(&self) -> usize {
        self.r
    }

    /// Grid columns (C).
    pub fn cols(&self) -> usize {
        self.c
    }

    /// The grid this partition is defined over.
    pub fn grid(&self) -> ProcessorGrid {
        ProcessorGrid::new(self.r, self.c)
    }

    /// Start of block row `b` (`b` ranges over `0..=P`; `start(P) = n`).
    pub fn block_row_start(&self, b: usize) -> Vertex {
        debug_assert!(b <= self.p());
        (b as u128 * self.n as u128 / self.p() as u128) as Vertex
    }

    /// Vertex range `[start, end)` of block row `b`.
    pub fn block_row_range(&self, b: usize) -> std::ops::Range<Vertex> {
        self.block_row_start(b)..self.block_row_start(b + 1)
    }

    /// Block row containing vertex `v`.
    pub fn block_row_of(&self, v: Vertex) -> usize {
        debug_assert!(v < self.n);
        let mut b = (v as u128 * self.p() as u128 / self.n as u128) as usize;
        // Rounding can land one off; correct against the true bounds.
        while v < self.block_row_start(b) {
            b -= 1;
        }
        while v >= self.block_row_start(b + 1) {
            b += 1;
        }
        b
    }

    /// The rank owning block row `b`: block row `j·R + i` belongs to
    /// processor `(i, j)`.
    pub fn owner_of_block_row(&self, b: usize) -> usize {
        debug_assert!(b < self.p());
        let i = b % self.r;
        let j = b / self.r;
        self.grid().rank_of(i, j)
    }

    /// The block row owned by `rank` (inverse of
    /// [`TwoDPartition::owner_of_block_row`]).
    pub fn block_row_of_rank(&self, rank: usize) -> usize {
        let (i, j) = self.grid().position_of(rank);
        j * self.r + i
    }

    /// The rank owning vertex `v`.
    pub fn owner_of(&self, v: Vertex) -> usize {
        self.owner_of_block_row(self.block_row_of(v))
    }

    /// The vertices owned by `rank`.
    pub fn owned_range(&self, rank: usize) -> std::ops::Range<Vertex> {
        self.block_row_range(self.block_row_of_rank(rank))
    }

    /// Number of vertices owned by `rank`.
    pub fn owned_len(&self, rank: usize) -> usize {
        let r = self.owned_range(rank);
        (r.end - r.start) as usize
    }

    /// Vertex range of block column `j` (the union of block rows
    /// `j·R .. (j+1)·R`, which are contiguous).
    pub fn block_col_range(&self, j: usize) -> std::ops::Range<Vertex> {
        debug_assert!(j < self.c);
        self.block_row_start(j * self.r)..self.block_row_start((j + 1) * self.r)
    }

    /// Block column containing vertex `v` — equals the grid column of
    /// `v`'s owner.
    pub fn block_col_of(&self, v: Vertex) -> usize {
        self.block_row_of(v) / self.r
    }

    /// The grid row of the rank storing matrix entry `(row u, col v)` is
    /// `block_row_of(u) % R`; its grid column is `block_col_of(v)`. This
    /// returns that rank.
    pub fn storer_of_entry(&self, u: Vertex, v: Vertex) -> usize {
        let i = self.block_row_of(u) % self.r;
        let j = self.block_col_of(v);
        self.grid().rank_of(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(n: u64, r: usize, c: usize) -> TwoDPartition {
        TwoDPartition::new(n, ProcessorGrid::new(r, c))
    }

    #[test]
    fn block_rows_tile_vertex_space() {
        for (n, r, c) in [(100, 3, 4), (17, 2, 2), (1000, 1, 8), (64, 8, 1)] {
            let pt = part(n, r, c);
            let mut covered = 0u64;
            for b in 0..pt.p() {
                let range = pt.block_row_range(b);
                assert_eq!(range.start, covered);
                covered = range.end;
                for v in range {
                    assert_eq!(pt.block_row_of(v), b);
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn balanced_within_one() {
        let pt = part(103, 4, 5);
        for rank in 0..20 {
            let len = pt.owned_len(rank);
            assert!(len == 5 || len == 6, "rank {rank} owns {len}");
        }
    }

    #[test]
    fn owner_roundtrip() {
        let pt = part(120, 3, 4);
        for b in 0..12 {
            let rank = pt.owner_of_block_row(b);
            assert_eq!(pt.block_row_of_rank(rank), b);
        }
        for v in 0..120 {
            let owner = pt.owner_of(v);
            assert!(pt.owned_range(owner).contains(&v));
        }
    }

    #[test]
    fn paper_fact_1_owner_column_matches_block_column() {
        // A vertex owned by (i, j) lies in block column j.
        let pt = part(240, 4, 6);
        let grid = pt.grid();
        for v in 0..240 {
            let owner = pt.owner_of(v);
            let (_, j) = grid.position_of(owner);
            assert_eq!(pt.block_col_of(v), j);
        }
    }

    #[test]
    fn paper_fact_2_stored_rows_owned_in_processor_row() {
        // The storer of entry (u, v) shares its grid row with u's owner.
        let pt = part(97, 3, 5);
        let grid = pt.grid();
        for u in (0..97).step_by(7) {
            for v in (0..97).step_by(11) {
                let storer = pt.storer_of_entry(u, v);
                let owner_u = pt.owner_of(u);
                assert_eq!(grid.row_of(storer), grid.row_of(owner_u));
                // And its grid column with v's owner.
                let owner_v = pt.owner_of(v);
                assert_eq!(grid.col_of(storer), grid.col_of(owner_v));
            }
        }
    }

    #[test]
    fn block_columns_are_contiguous_unions() {
        let pt = part(130, 4, 3);
        for j in 0..3 {
            let col = pt.block_col_range(j);
            let first = pt.block_row_range(j * 4);
            let last = pt.block_row_range(j * 4 + 3);
            assert_eq!(col.start, first.start);
            assert_eq!(col.end, last.end);
        }
    }

    #[test]
    fn one_d_degenerate() {
        // R = 1: each processor's block column is exactly its owned range.
        let pt = part(100, 1, 5);
        for rank in 0..5 {
            assert_eq!(pt.owned_range(rank), pt.block_col_range(rank));
        }
    }

    #[test]
    fn more_processors_than_vertices_allowed() {
        let pt = part(3, 2, 3);
        let total: usize = (0..6).map(|r| pt.owned_len(r)).sum();
        assert_eq!(total, 3);
        for v in 0..3 {
            let owner = pt.owner_of(v);
            assert!(pt.owned_range(owner).contains(&v));
        }
    }
}
