//! Graph specifications.

use serde::{Deserialize, Serialize};

/// Random-graph family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphFamily {
    /// Poisson random graph: every unordered vertex pair is an edge
    /// independently with probability `k / n` (the paper's model).
    Poisson,
    /// R-MAT recursive-matrix graph with the given quadrant weights
    /// (extension; skewed degrees stress the load-balance assumptions the
    /// paper's Poisson analysis makes).
    RMat {
        /// Probability mass of the top-left quadrant.
        a: f64,
        /// Probability mass of the top-right quadrant.
        b: f64,
        /// Probability mass of the bottom-left quadrant.
        c: f64,
    },
    /// Watts–Strogatz small-world graph (extension): a ring lattice with
    /// `k/2` neighbours on each side, each lattice edge rewired to a
    /// random target with probability `rewire`. Semantic graphs — the
    /// paper's motivating workload — are small-world networks; unlike
    /// the Poisson model this family has high clustering and strong
    /// locality in the vertex numbering.
    SmallWorld {
        /// Per-edge rewiring probability (0 = pure lattice, 1 ≈ random).
        rewire: f64,
    },
}

impl GraphFamily {
    /// The Graph500 reference R-MAT parameters (a=0.57, b=c=0.19).
    pub fn rmat_graph500() -> Self {
        GraphFamily::RMat {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Full description of a random graph instance: everything the
/// deterministic generator needs.
///
/// ```
/// use bgl_graph::GraphSpec;
/// let spec = GraphSpec::poisson(1_000_000, 10.0, 42);
/// assert!((spec.edge_probability() - 1e-5).abs() < 1e-18);
/// // ~ n·k adjacency entries, the paper's "edges":
/// assert!((spec.expected_nonzeros() - 1e7).abs() < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Number of vertices.
    pub n: u64,
    /// Target average degree `k`; edge probability is `k / n`.
    pub avg_degree: f64,
    /// Generator seed; same spec (including seed) ⇒ same graph,
    /// regardless of how many processors the graph is partitioned over.
    pub seed: u64,
    /// Graph family.
    pub family: GraphFamily,
}

impl GraphSpec {
    /// A Poisson random graph spec.
    pub fn poisson(n: u64, avg_degree: f64, seed: u64) -> Self {
        assert!(n >= 1, "graph must have at least one vertex");
        assert!(avg_degree >= 0.0, "average degree must be non-negative");
        assert!(
            avg_degree < n as f64,
            "average degree {avg_degree} infeasible for n={n}"
        );
        Self {
            n,
            avg_degree,
            seed,
            family: GraphFamily::Poisson,
        }
    }

    /// An R-MAT spec with Graph500 parameters.
    pub fn rmat(n: u64, avg_degree: f64, seed: u64) -> Self {
        let mut s = Self::poisson(n, avg_degree, seed);
        s.family = GraphFamily::rmat_graph500();
        s
    }

    /// A Watts–Strogatz small-world spec. `avg_degree` must be an even
    /// integer ≥ 2 (the lattice has `k/2` neighbours per side).
    pub fn small_world(n: u64, avg_degree: f64, rewire: f64, seed: u64) -> Self {
        assert!(
            avg_degree >= 2.0 && avg_degree.fract() == 0.0 && (avg_degree as u64).is_multiple_of(2),
            "small-world degree must be an even integer >= 2, got {avg_degree}"
        );
        assert!((0.0..=1.0).contains(&rewire), "rewire must be in [0, 1]");
        let mut s = Self::poisson(n, avg_degree, seed);
        s.family = GraphFamily::SmallWorld { rewire };
        s
    }

    /// The per-pair edge probability `k / n` (Poisson family).
    pub fn edge_probability(&self) -> f64 {
        self.avg_degree / self.n as f64
    }

    /// Expected number of adjacency-matrix nonzeros, `≈ n·k` (each
    /// undirected edge appears twice; this is how the paper counts
    /// "edges": 3.2 billion vertices with k = 10 ⇒ "32 billion edges").
    pub fn expected_nonzeros(&self) -> f64 {
        self.n as f64 * self.avg_degree * (self.n as f64 - 1.0) / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_spec_probability() {
        let s = GraphSpec::poisson(1000, 10.0, 42);
        assert!((s.edge_probability() - 0.01).abs() < 1e-12);
        // Expected nonzeros ~ n*k.
        assert!((s.expected_nonzeros() - 9990.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn infeasible_degree_rejected() {
        GraphSpec::poisson(10, 10.0, 0);
    }

    #[test]
    fn small_world_spec_validation() {
        let s = GraphSpec::small_world(1000, 8.0, 0.1, 3);
        assert!(matches!(s.family, GraphFamily::SmallWorld { rewire } if rewire == 0.1));
    }

    #[test]
    #[should_panic(expected = "even integer")]
    fn small_world_odd_degree_rejected() {
        GraphSpec::small_world(1000, 7.0, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "rewire")]
    fn small_world_bad_rewire_rejected() {
        GraphSpec::small_world(1000, 8.0, 1.5, 3);
    }

    #[test]
    fn rmat_uses_graph500_params() {
        let s = GraphSpec::rmat(1 << 10, 16.0, 7);
        match s.family {
            GraphFamily::RMat { a, b, c } => {
                assert!((a - 0.57).abs() < 1e-12);
                assert!((b - 0.19).abs() < 1e-12);
                assert!((c - 0.19).abs() < 1e-12);
            }
            _ => panic!("expected RMat"),
        }
    }
}
