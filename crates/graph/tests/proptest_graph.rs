//! Property-based invariants of the graph substrate: generator symmetry
//! and determinism, partition algebra, storage placement.

use bgl_comm::ProcessorGrid;
use bgl_graph::{dist, DistGraph, GraphSpec, TwoDPartition, Vertex};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_graph_is_symmetric_loop_free(
        n in 20u64..250,
        k in 0u32..12,
        seed in any::<u64>(),
    ) {
        let k = (k as f64).min(n as f64 - 1.0);
        let spec = GraphSpec::poisson(n, k, seed);
        let adj = dist::adjacency(&spec);
        for (v, list) in adj.iter().enumerate() {
            let v = v as Vertex;
            for &u in list {
                prop_assert_ne!(u, v, "self loop at {}", v);
                prop_assert!(adj[u as usize].contains(&v), "asymmetric edge ({},{})", u, v);
            }
            // Sorted and unique.
            prop_assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn build_is_grid_invariant(
        n in 30u64..200,
        k in 1u32..8,
        seed in any::<u64>(),
        r1 in 1usize..5, c1 in 1usize..5,
        r2 in 1usize..5, c2 in 1usize..5,
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let collect = |g: &DistGraph| {
            let mut all: Vec<(Vertex, Vertex)> = Vec::new();
            for rg in &g.ranks {
                for (c, list) in rg.edges.iter_cols() {
                    for &u in list {
                        all.push((u, c));
                    }
                }
            }
            all.sort_unstable();
            all
        };
        let a = DistGraph::build(spec, ProcessorGrid::new(r1, c1));
        let b = DistGraph::build(spec, ProcessorGrid::new(r2, c2));
        prop_assert_eq!(collect(&a), collect(&b));
    }

    #[test]
    fn partition_owner_and_ranges_consistent(
        n in 1u64..500,
        r in 1usize..8,
        c in 1usize..8,
    ) {
        let part = TwoDPartition::new(n, ProcessorGrid::new(r, c));
        // Owned ranges tile 0..n disjointly.
        let mut covered: HashSet<Vertex> = HashSet::new();
        for rank in 0..part.p() {
            for v in part.owned_range(rank) {
                prop_assert!(covered.insert(v), "vertex {} owned twice", v);
                prop_assert_eq!(part.owner_of(v), rank);
            }
        }
        prop_assert_eq!(covered.len() as u64, n);
        // Block columns tile 0..n as well.
        let mut col_covered = 0u64;
        for j in 0..c {
            let range = part.block_col_range(j);
            prop_assert_eq!(range.start, col_covered);
            col_covered = range.end;
            for v in range {
                prop_assert_eq!(part.block_col_of(v), j);
            }
        }
        prop_assert_eq!(col_covered, n);
    }

    #[test]
    fn storer_shares_row_with_row_owner_and_col_with_col_owner(
        n in 10u64..300,
        r in 1usize..6,
        c in 1usize..6,
        seed in any::<u64>(),
    ) {
        let part = TwoDPartition::new(n, ProcessorGrid::new(r, c));
        let grid = part.grid();
        let u = seed % n;
        let v = (seed >> 24) % n;
        let storer = part.storer_of_entry(u, v);
        prop_assert_eq!(grid.row_of(storer), grid.row_of(part.owner_of(u)));
        prop_assert_eq!(grid.col_of(storer), grid.col_of(part.owner_of(v)));
    }

    #[test]
    fn expand_targets_sound_and_complete(
        n in 30u64..150,
        k in 1u32..8,
        seed in any::<u64>(),
        r in 1usize..5,
        c in 1usize..4,
    ) {
        let spec = GraphSpec::poisson(n, k as f64, seed);
        let grid = ProcessorGrid::new(r, c);
        let g = DistGraph::build(spec, grid);
        for owner in &g.ranks {
            let (_, j) = grid.position_of(owner.rank);
            for (off, targets) in owner.expand_targets.iter().enumerate() {
                let v = owner.owned.start + off as Vertex;
                for i2 in 0..r {
                    let peer = grid.rank_of(i2, j);
                    let has = !g.ranks[peer].edges.neighbors_of(v).is_empty();
                    prop_assert_eq!(
                        targets.contains(&(i2 as u16)),
                        has,
                        "v={} peer={}", v, peer
                    );
                }
            }
        }
    }
}
