//! A lightweight Rust lexer for lint purposes.
//!
//! The workspace vendors no `syn`, so — like the trace crate's
//! hand-rolled JSON — the lexer is hand-rolled: it strips comments and
//! every string/char literal form (plain, raw, byte, raw-byte), tracks
//! line numbers, and emits a flat token stream of identifiers, numbers
//! and single-character punctuation. That is exactly enough signal for
//! the rule catalog, which matches short token sequences rather than a
//! full syntax tree.
//!
//! Two side channels ride along with the tokens:
//!
//! * **Allow pragmas.** A plain `//` comment whose trimmed text starts
//!   with `bgl-lint:` must parse as
//!   `bgl-lint: allow(<rule>, reason = "<why>")`; the reason is
//!   mandatory. Anything that starts the marker but fails to parse is
//!   reported as a malformed pragma rather than silently ignored.
//! * **`#[cfg(test)]` regions.** Token ranges covered by a
//!   `#[cfg(test)]` item (its attribute through the end of its body)
//!   are marked so the determinism/robustness rules can skip test code.

/// What a token is; rules mostly care about identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// One character of punctuation (`.`, `:`, `!`, brackets, …).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token's text, borrowed from the source.
    pub text: &'a str,
}

/// A parsed `bgl-lint: allow(rule, reason = "...")` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// The rule id being allowed (e.g. `r1`).
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// A comment that starts the `bgl-lint:` marker but does not parse as
/// a valid allow pragma (missing reason, bad syntax, unknown shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPragma {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// What was wrong, in plain words.
    pub what: String,
}

/// A lexed source file: tokens plus the pragma side channels.
#[derive(Debug, Default)]
pub struct LexedFile<'a> {
    /// The token stream, comments and literals stripped.
    pub toks: Vec<Tok<'a>>,
    /// Well-formed allow pragmas.
    pub allows: Vec<Allow>,
    /// Malformed pragma attempts.
    pub bad_pragmas: Vec<BadPragma>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Lex `src` into tokens and pragma side channels.
pub fn lex(src: &str) -> LexedFile<'_> {
    let b = src.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                scan_pragma(&src[start..j], line, &mut out);
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i = skip_block_comment(b, i, &mut line);
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
            }
            b'\'' => {
                i = skip_char_or_lifetime(b, i);
            }
            b'r' | b'b' if raw_prefix_len(b, i).is_some() => {
                // Safe: raw_prefix_len only matches when a quote follows.
                let (plen, hashes, byte_char) = match raw_prefix_len(b, i) {
                    Some(p) => p,
                    None => (1, 0, false),
                };
                if byte_char {
                    i = skip_char_body(b, i + plen);
                } else if hashes == usize::MAX {
                    i = skip_string(b, i + plen - 1, &mut line);
                } else {
                    i = skip_raw_string(b, i + plen, hashes, &mut line);
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    line,
                    text: &src[start..i],
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i = skip_number(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    line,
                    text: &src[start..i],
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    line,
                    text: &src[i..i + 1],
                });
                i += 1;
            }
        }
    }
    out
}

/// If position `i` starts a raw/byte literal prefix, return
/// `(prefix_len, hash_count, is_byte_char)`. `hash_count == usize::MAX`
/// encodes a plain (non-raw) byte string `b"…"`, which lexes like a
/// normal string.
fn raw_prefix_len(b: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    let rest = &b[i..];
    let (mut j, raw) = match rest {
        [b'r', ..] => (1, true),
        [b'b', b'r', ..] => (2, true),
        [b'b', b'\'', ..] => return Some((2, 0, true)),
        [b'b', b'"', ..] => return Some((2, usize::MAX, false)),
        _ => return None,
    };
    if !raw {
        return None;
    }
    let mut hashes = 0usize;
    while rest.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) == Some(&b'"') {
        Some((j + 1, hashes, false))
    } else {
        None
    }
}

fn skip_block_comment(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 2;
    let mut depth = 1usize;
    while i < b.len() && depth > 0 {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    i
}

/// `i` points at the opening `"`.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// `i` points just past `r##…"`; scan to `"##…` with `hashes` hashes.
fn skip_raw_string(b: &[u8], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// `i` points at the opening `'` of a char literal body.
fn skip_char_body(b: &[u8], mut i: usize) -> usize {
    // i is just past the quote already consumed by the caller's prefix.
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// `i` points at a `'` that is either a char literal or a lifetime.
fn skip_char_or_lifetime(b: &[u8], i: usize) -> usize {
    match b.get(i + 1) {
        Some(&b'\\') => skip_char_body(b, i + 1),
        Some(&c) if is_ident_start(c) => {
            let mut j = i + 2;
            while j < b.len() && is_ident_cont(b[j]) {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') {
                j + 1 // 'a' — a char literal
            } else {
                j // 'a — a lifetime; no closing quote
            }
        }
        Some(_) => skip_char_body(b, i + 1),
        None => i + 1,
    }
}

fn skip_number(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    // Fraction: `.` followed by a digit (so `1.max(2)` keeps its dot).
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
    }
    i
}

/// Parse a line comment's text as a pragma if it carries the marker.
fn scan_pragma(comment: &str, line: u32, out: &mut LexedFile<'_>) {
    let t = comment.trim();
    let Some(rest) = t.strip_prefix("bgl-lint:") else {
        return;
    };
    match parse_allow(rest.trim()) {
        Ok((rule, reason)) => out.allows.push(Allow { line, rule, reason }),
        Err(what) => out.bad_pragmas.push(BadPragma { line, what }),
    }
}

/// Parse `allow(<rule>, reason = "<text>")`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let body = s
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<rule>, reason = \"...\")`".to_string())?;
    let body = body
        .strip_suffix(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    let (rule, rest) = body
        .split_once(',')
        .ok_or_else(|| "missing `, reason = \"...\"` — a reason is mandatory".to_string())?;
    let rule = rule.trim();
    if rule.is_empty() || !rule.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'-') {
        return Err(format!("bad rule id {rule:?}"));
    }
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim_start)
        .ok_or_else(|| "expected `reason = \"...\"`".to_string())?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

/// Mark which tokens sit inside a `#[cfg(test)]` item (attribute
/// through end of body). Returns one flag per token.
pub fn test_region_flags(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut flags = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(end) = cfg_test_item_end(toks, i) {
            for f in flags.iter_mut().take(end).skip(i) {
                *f = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    flags
}

/// If token `i` opens a `#[cfg(test)]` (or `#[cfg(any/all(.. test ..))]`)
/// attribute, return the token index one past the end of the item it
/// decorates.
fn cfg_test_item_end(toks: &[Tok<'_>], i: usize) -> Option<usize> {
    if !(tok_is(toks, i, "#") && tok_is(toks, i + 1, "[") && tok_is(toks, i + 2, "cfg")) {
        return None;
    }
    // Find the attribute's closing `]`, checking for a `test` ident
    // anywhere inside the cfg predicate.
    let mut j = i + 3;
    let mut depth = 0usize;
    let mut saw_test = false;
    while j < toks.len() {
        match toks[j].text {
            "[" | "(" => depth += 1,
            ")" => depth = depth.saturating_sub(1),
            "]" if depth == 0 => break,
            "]" => depth -= 1,
            "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    if !saw_test || j >= toks.len() {
        return None;
    }
    j += 1; // past `]`
            // Skip any further attributes on the same item.
    while tok_is(toks, j, "#") && tok_is(toks, j + 1, "[") {
        let mut depth = 0usize;
        j += 2;
        while j < toks.len() {
            match toks[j].text {
                "[" | "(" => depth += 1,
                ")" => depth = depth.saturating_sub(1),
                "]" if depth == 0 => break,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        j += 1;
    }
    // The item body: everything to the matching `}` of its first brace,
    // or to a `;` that arrives before any brace (e.g. `use`, `mod x;`).
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            ";" if depth == 0 => return Some(j + 1),
            _ => {}
        }
        j += 1;
    }
    Some(toks.len())
}

fn tok_is(toks: &[Tok<'_>], i: usize, text: &str) -> bool {
    toks.get(i).map(|t| t.text) == Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r####"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let a = "HashMap in a string";
            let b = r#"raw HashMap "quoted" here"#;
            let c = b"byte HashMap";
            let d = 'x';
            let e: &'static str = "s";
            fn real_hash(m: &HashMap<u32, u32>) {}
        "####;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|t| **t == "HashMap").count(), 1);
        assert!(ids.contains(&"real_hash"));
        assert!(!ids.contains(&"static"), "lifetime idents are skipped");
    }

    #[test]
    fn tracks_lines() {
        let src = "let a = 1;\nlet b = 2;\n\nlet c = 3;";
        let lexed = lex(src);
        let line_of = |name: &str| {
            lexed
                .toks
                .iter()
                .find(|t| t.text == name)
                .map(|t| t.line)
                .unwrap_or(0)
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
    }

    #[test]
    fn numbers_lex_as_one_token() {
        let toks = lex("let x = 1.5e-3f64 + 0xff_u32; y.0.max(2)");
        let nums: Vec<&str> = toks
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert!(nums.contains(&"1.5e"), "{nums:?}"); // `-3f64` splits; fine for lint purposes
        assert!(nums.contains(&"0xff_u32"), "{nums:?}");
    }

    #[test]
    fn parses_allow_pragmas() {
        let src = "let x = m.get(&k); // bgl-lint: allow(d1, reason = \"lookup only\")\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.allows,
            vec![Allow {
                line: 1,
                rule: "d1".into(),
                reason: "lookup only".into()
            }]
        );
        assert!(lexed.bad_pragmas.is_empty());
    }

    #[test]
    fn rejects_malformed_pragmas() {
        for bad in [
            "// bgl-lint: allow(d1)",
            "// bgl-lint: allow(d1, reason = \"\")",
            "// bgl-lint: allow(d1, reason = unquoted)",
            "// bgl-lint: disable(d1)",
        ] {
            let lexed = lex(bad);
            assert!(lexed.allows.is_empty(), "{bad}");
            assert_eq!(lexed.bad_pragmas.len(), 1, "{bad}");
        }
        // Doc comments and prose never parse as pragmas.
        assert!(lex("//! the bgl-lint binary is documented here")
            .bad_pragmas
            .is_empty());
        assert!(lex("// run bgl-lint --check in CI").bad_pragmas.is_empty());
    }

    #[test]
    fn cfg_test_regions_cover_mod_bodies() {
        let src = "
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}
fn live_too() { z.unwrap(); }
";
        let lexed = lex(src);
        let flags = test_region_flags(&lexed.toks);
        let unwraps: Vec<bool> = lexed
            .toks
            .iter()
            .zip(&flags)
            .filter(|(t, _)| t.text == "unwrap")
            .map(|(_, f)| *f)
            .collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn cfg_test_handles_use_and_extra_attrs() {
        let src = "
#[cfg(test)]
use std::collections::HashMap;
#[cfg(test)]
#[derive(Debug)]
struct T { m: u32 }
fn live() {}
";
        let lexed = lex(src);
        let flags = test_region_flags(&lexed.toks);
        for (t, f) in lexed.toks.iter().zip(&flags) {
            if t.text == "HashMap" || t.text == "struct" {
                assert!(*f, "{} should be in a test region", t.text);
            }
            if t.text == "live" {
                assert!(!*f);
            }
        }
    }
}
