//! `bgl-lint` — workspace determinism & robustness lint.
//!
//! Every claim this reproduction makes (serial ≡ rayon clocks, sim ≡
//! threaded byte-identity, raw ≡ auto wire seeds, parity-recovery
//! bit-identity) rests on invariants that used to be enforced by
//! convention: seeded ChaCha only, ordered merges, no wall-clock in sim
//! paths, no hash-iteration-order leakage. This crate enforces them
//! mechanically, before they compile into the engines: a hand-rolled
//! lexer (no `syn` in `vendor/`) walks every non-vendored `.rs` file in
//! the workspace and applies the rule catalog in [`rules`].
//!
//! A violation is suppressed only by an inline pragma on the same line
//! or the line above, and the reason is mandatory:
//!
//! ```text
//! let m = HashMap::new(); // bgl-lint: allow(d1, reason = "lookup only; never iterated")
//! ```
//!
//! The `bgl-lint` binary prints `file:line: [rule] message` diagnostics,
//! writes a machine-readable `LINT_report.json`, and with `--check`
//! exits nonzero on any finding. See `DESIGN.md` §14 for the invariant
//! catalog and the allow policy.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::LintReport;
pub use rules::{Finding, Rule, RULES};
pub use walk::{FileScope, LintError, SourceFile};

use std::path::Path;

/// Lint everything under `root` (workspace or flat fixture directory).
pub fn lint_root(root: &Path) -> Result<LintReport, LintError> {
    let files = walk::discover(root)?;
    let mut rep = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for sf in &files {
        let src = std::fs::read_to_string(&sf.abs).map_err(|e| LintError::Io(sf.abs.clone(), e))?;
        let lexed = lexer::lex(&src);
        let r = rules::check_file(sf, &lexed);
        rep.findings.extend(r.findings);
        rep.allows.extend(r.allows_used);
        rep.suppressed += r.suppressed;
    }
    rep.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    rep.allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_the_enclosing_workspace_without_errors() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let rep = lint_root(&root).expect("lint runs");
        assert!(rep.files_scanned > 50, "found {} files", rep.files_scanned);
        // Cleanliness itself is asserted by tests/self_clean.rs; here we
        // only require that the run is deterministic.
        let again = lint_root(&root).expect("second run");
        assert_eq!(rep.to_json(), again.to_json());
    }
}
