//! `bgl-lint` — the workspace determinism & robustness lint binary.
//!
//! ```text
//! bgl-lint                 report findings, exit 0 (report-only mode)
//! bgl-lint --check         exit 1 on any finding (the CI gate)
//! bgl-lint --root <dir>    lint a different tree (default .)
//! bgl-lint --out <path>    where to write the JSON report
//!                          (default <root>/LINT_report.json)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bgl-lint [--check] [--root DIR] [--out PATH]";

fn main() -> ExitCode {
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a directory"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage_error("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let report = match bgl_lint::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bgl-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    let out = out.unwrap_or_else(|| root.join("LINT_report.json"));
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("bgl-lint: error: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    print!("{}", report.render_text());
    println!("{}", report.render_summary());
    if check && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("bgl-lint: error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
