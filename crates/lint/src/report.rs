//! The machine-readable `LINT_report.json` and the human diagnostics.
//!
//! The JSON writer is hand-rolled (the workspace vendors no serde_json;
//! same approach as `bgl-trace`'s exporters) and emits keys and entries
//! in a fixed sorted order, so a clean tree always produces the same
//! report bytes.

use crate::rules::{AllowRecord, Finding, RULES};
use std::fmt::Write as _;

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned (after skip rules).
    pub files_scanned: usize,
    /// Surviving findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Pragmas that suppressed at least one finding.
    pub allows: Vec<AllowRecord>,
    /// Findings suppressed by pragmas.
    pub suppressed: usize,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `file:line: [rule] message` diagnostics, one per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        out
    }

    /// One-line summary for the happy path.
    pub fn render_summary(&self) -> String {
        format!(
            "bgl-lint: {} files, {} findings, {} suppressed by {} allow pragmas",
            self.files_scanned,
            self.findings.len(),
            self.suppressed,
            self.allows.len()
        )
    }

    /// The machine-readable report document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"rules\": [\n");
        for (i, r) in RULES.iter().enumerate() {
            out.push_str("    {\"id\": ");
            push_str_lit(&mut out, r.id);
            out.push_str(", \"name\": ");
            push_str_lit(&mut out, r.name);
            out.push_str(", \"summary\": ");
            push_str_lit(&mut out, r.summary);
            out.push('}');
            out.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str("    {\"file\": ");
            push_str_lit(&mut out, &f.file);
            let _ = write!(out, ", \"line\": {}, \"rule\": ", f.line);
            push_str_lit(&mut out, f.rule);
            out.push_str(", \"message\": ");
            push_str_lit(&mut out, &f.message);
            out.push('}');
            out.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"allows\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            out.push_str("    {\"file\": ");
            push_str_lit(&mut out, &a.file);
            let _ = write!(out, ", \"line\": {}, \"rule\": ", a.line);
            push_str_lit(&mut out, &a.rule);
            out.push_str(", \"reason\": ");
            push_str_lit(&mut out, &a.reason);
            out.push('}');
            out.push_str(if i + 1 < self.allows.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Append a JSON string literal with escaping.
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_stable_and_parseable() {
        let mut rep = LintReport {
            files_scanned: 2,
            suppressed: 1,
            ..LintReport::default()
        };
        rep.findings.push(Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            rule: "r1",
            message: "a \"quoted\" message".into(),
        });
        rep.allows.push(AllowRecord {
            file: "crates/x/src/lib.rs".into(),
            line: 9,
            rule: "d1".into(),
            reason: "lookup only".into(),
        });
        let j1 = rep.to_json();
        let j2 = rep.to_json();
        assert_eq!(j1, j2);
        let v = bgl_trace::json::parse(&j1).expect("report JSON parses");
        assert_eq!(v.get("files_scanned").and_then(|x| x.as_f64()), Some(2.0));
        let findings = v
            .get("findings")
            .and_then(|x| x.as_arr())
            .expect("findings");
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("message").and_then(|m| m.as_str()),
            Some("a \"quoted\" message")
        );
        let rules = v.get("rules").and_then(|x| x.as_arr()).expect("rules");
        assert_eq!(rules.len(), RULES.len());
        assert!(rep.render_text().contains("crates/x/src/lib.rs:3: [r1]"));
        assert!(rep.render_summary().contains("2 files"));
    }
}
