//! Deterministic workspace file discovery.
//!
//! Two modes:
//!
//! * **Workspace mode** (root has both `crates/` and `src/`): scan the
//!   facade crate's `src/` and every `crates/<name>/src/` tree. Only
//!   shipped source is linted — `vendor/`, `target/`, integration
//!   `tests/`, `examples/` and `benches/` are never walked (test code
//!   inside `src/` is excluded later via `#[cfg(test)]` regions).
//! * **Flat mode** (anything else, e.g. a fixture directory): scan all
//!   `.rs` files under the root, crate name `fixtures`.
//!
//! Directory entries are sorted so findings and reports are themselves
//! byte-stable — the lint practices what it preaches.

use std::path::{Path, PathBuf};

/// Whether a file belongs to a library target or a binary target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileScope {
    /// Library code: every rule applies.
    Lib,
    /// Binary code (any path with a `bin` directory component): exempt
    /// from `d2`/`r1`/`r2` — front ends parse flags and measure
    /// wall-clock legitimately.
    Bin,
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (report key).
    pub rel: String,
    /// Absolute (or root-joined) path for reading.
    pub abs: PathBuf,
    /// Owning crate's directory name (`core`, `comm`, … or `bgl-bfs`
    /// for the facade, `fixtures` in flat mode).
    pub crate_name: String,
    /// Library or binary target.
    pub scope: FileScope,
}

/// Why discovery or reading failed.
#[derive(Debug)]
pub enum LintError {
    /// An I/O operation failed on a path.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// Discover every lintable `.rs` file under `root`.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, LintError> {
    let mut out = Vec::new();
    if root.join("crates").is_dir() && root.join("src").is_dir() {
        add_tree(root, Path::new("src"), "bgl-bfs", &mut out)?;
        let mut crates = list_dir(&root.join("crates"))?;
        crates.retain(|p| p.is_dir());
        for dir in crates {
            let name = file_name_of(&dir);
            let src = dir.join("src");
            if src.is_dir() {
                let rel = PathBuf::from("crates").join(&name).join("src");
                add_tree(root, &rel, &name, &mut out)?;
            }
        }
    } else {
        add_tree(root, Path::new(""), "fixtures", &mut out)?;
    }
    Ok(out)
}

fn file_name_of(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

const SKIP_DIRS: &[&str] = &["vendor", "target", "tests", "examples", "benches", ".git"];

fn add_tree(
    root: &Path,
    rel: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), LintError> {
    let abs = if rel.as_os_str().is_empty() {
        root.to_path_buf()
    } else {
        root.join(rel)
    };
    for path in list_dir(&abs)? {
        let name = file_name_of(&path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            add_tree(root, &rel.join(&name), crate_name, out)?;
        } else if name.ends_with(".rs") {
            let rel_file = rel.join(&name);
            let rel_str = rel_file
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let scope = if rel_file.components().any(|c| c.as_os_str() == "bin") {
                FileScope::Bin
            } else {
                FileScope::Lib
            };
            out.push(SourceFile {
                rel: rel_str,
                abs: path,
                crate_name: crate_name.to_string(),
                scope,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_mode_finds_this_crate_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("workspace discover");
        assert!(files.iter().any(|f| f.rel == "crates/lint/src/walk.rs"));
        assert!(files.iter().any(|f| f.rel == "src/lib.rs"));
        assert!(!files.iter().any(|f| f.rel.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.rel.contains("/tests/")));
        let cli = files
            .iter()
            .find(|f| f.rel == "src/bin/cli.rs")
            .expect("cli discovered");
        assert_eq!(cli.scope, FileScope::Bin);
        assert_eq!(cli.crate_name, "bgl-bfs");
        let lint = files
            .iter()
            .find(|f| f.rel == "crates/lint/src/lib.rs")
            .expect("lint lib discovered");
        assert_eq!(lint.scope, FileScope::Lib);
        assert_eq!(lint.crate_name, "lint");
        // Deterministic ordering.
        let again = discover(&root).expect("second discover");
        let a: Vec<_> = files.iter().map(|f| &f.rel).collect();
        let b: Vec<_> = again.iter().map(|f| &f.rel).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn flat_mode_scans_everything_as_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
        let files = discover(&root).expect("fixture discover");
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| f.crate_name == "fixtures"));
    }
}
