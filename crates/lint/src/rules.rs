//! The determinism & robustness rule catalog.
//!
//! Every equivalence claim the reproduction makes — serial ≡ rayon
//! clocks, sim ≡ threaded byte-identity, raw ≡ auto wire seeds,
//! parity-recovery bit-identity — rests on invariants these rules
//! mechanically enforce in non-test code:
//!
//! | id | name | hazard |
//! |----|------|--------|
//! | `d1` | hash-iteration | `std` `HashMap`/`HashSet` iteration order is randomized per process (`RandomState`), so anything exported from one differs run to run. Use `BTreeMap`/`BTreeSet`, sort on export, or (for lookup-only tables) `FxHashMap` with a pragma. |
//! | `d2` | wall-clock | `Instant::now`/`SystemTime`/`thread_rng`/`from_entropy` inject host entropy into library paths; the simulated clock and every seed must flow from explicit inputs. Threaded exchange deadlines carry pragmas. |
//! | `d3` | float-reduce | float `sum`/`reduce`/`fold` over a `par_iter` is non-associative, so the α–β–hop clock would depend on rayon's split points. |
//! | `r1` | no-panic | `unwrap`/`expect`/`panic!` in library crates turns operating conditions into aborts; hot paths thread `CommError` instead. Provably-infallible sites carry pragmas saying why. |
//! | `r2` | narrowing-cast | `.len()`/`.count()` `as` a narrower integer truncates silently once counters outgrow the type. |
//! | `p0` | malformed-pragma | a `bgl-lint:` marker that does not parse as `allow(rule, reason = "...")` — a reason is mandatory. |
//! | `p1` | unused-allow | an allow pragma that suppresses nothing; stale pragmas rot. |
//!
//! Scoping: `d2`, `r1` and `r2` apply to library code only (binaries
//! parse flags and measure wall-clock legitimately); `r1` additionally
//! exempts the `bench` crate, whose panics abort a bad measurement run
//! rather than a serving path. Test code (`#[cfg(test)]` regions,
//! `tests/`, `examples/`) is never linted.

use crate::lexer::{Allow, LexedFile, Tok, TokKind};
use crate::walk::{FileScope, SourceFile};

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Short id used in pragmas and reports (e.g. `r1`).
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// The shipped rule catalog.
pub const RULES: &[Rule] = &[
    Rule {
        id: "d1",
        name: "hash-iteration",
        summary: "std HashMap/HashSet iteration order is nondeterministic; \
                  use BTreeMap/BTreeSet, sort on export, or FxHashMap for lookup-only tables",
    },
    Rule {
        id: "d2",
        name: "wall-clock",
        summary: "Instant::now/SystemTime/thread_rng/from_entropy inject host \
                  entropy into sim-clock or engine paths",
    },
    Rule {
        id: "d3",
        name: "float-reduce",
        summary: "non-associative float sum/reduce/fold over par_iter makes the \
                  simulated clock depend on rayon split points",
    },
    Rule {
        id: "r1",
        name: "no-panic",
        summary: "unwrap/expect/panic! in library code aborts on operating \
                  conditions; thread CommError or justify with a pragma",
    },
    Rule {
        id: "r2",
        name: "narrowing-cast",
        summary: "len()/count() `as` a narrower integer truncates silently",
    },
    Rule {
        id: "p0",
        name: "malformed-pragma",
        summary: "bgl-lint marker that does not parse as allow(rule, reason = \"...\")",
    },
    Rule {
        id: "p1",
        name: "unused-allow",
        summary: "allow pragma that suppresses no finding",
    },
];

/// Look a rule up by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`d1` … `p1`).
    pub rule: &'static str,
    /// What was found, in plain words.
    pub message: String,
}

/// An allow pragma that fired, recorded for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRecord {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the pragma.
    pub line: u32,
    /// Rule id it suppresses.
    pub rule: String,
    /// The justification it carries.
    pub reason: String,
}

/// Per-file result: surviving findings plus the used-allow records.
#[derive(Debug, Default)]
pub struct FileLint {
    /// Findings that no pragma suppressed.
    pub findings: Vec<Finding>,
    /// Pragmas that suppressed at least one finding.
    pub allows_used: Vec<AllowRecord>,
    /// Number of findings suppressed by pragmas.
    pub suppressed: usize,
}

/// Run every applicable rule over one lexed file.
pub fn check_file(sf: &SourceFile, lexed: &LexedFile<'_>) -> FileLint {
    let test = crate::lexer::test_region_flags(&lexed.toks);
    let mut raw: Vec<Finding> = Vec::new();

    let lib = sf.scope == FileScope::Lib;
    rule_d1(sf, lexed, &test, &mut raw);
    if lib {
        rule_d2(sf, lexed, &test, &mut raw);
    }
    rule_d3(sf, lexed, &test, &mut raw);
    if lib && sf.crate_name != "bench" {
        rule_r1(sf, lexed, &test, &mut raw);
    }
    if lib {
        rule_r2(sf, lexed, &test, &mut raw);
    }

    // Malformed pragmas are findings in their own right and cannot be
    // suppressed — a broken suppression must never suppress itself.
    let mut out = FileLint::default();
    for bp in &lexed.bad_pragmas {
        out.findings.push(Finding {
            file: sf.rel.clone(),
            line: bp.line,
            rule: "p0",
            message: format!("malformed bgl-lint pragma: {}", bp.what),
        });
    }

    // Apply allows: a pragma covers findings of its rule on its own
    // line (trailing comment) or the line directly below (standalone
    // comment line).
    let mut used = vec![false; lexed.allows.len()];
    for f in raw {
        let hit = lexed
            .allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
        match hit {
            Some((idx, _)) => {
                used[idx] = true;
                out.suppressed += 1;
            }
            None => out.findings.push(f),
        }
    }
    for (a, u) in lexed.allows.iter().zip(&used) {
        if *u {
            out.allows_used.push(AllowRecord {
                file: sf.rel.clone(),
                line: a.line,
                rule: a.rule.clone(),
                reason: a.reason.clone(),
            });
        } else {
            out.findings.push(unused_allow(sf, a));
        }
    }
    out.findings
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn unused_allow(sf: &SourceFile, a: &Allow) -> Finding {
    let message = match rule_by_id(&a.rule) {
        Some(_) => format!(
            "allow({}) suppresses no finding; remove the stale pragma",
            a.rule
        ),
        None => format!("allow({}) names no rule in the catalog", a.rule),
    };
    Finding {
        file: sf.rel.clone(),
        line: a.line,
        rule: "p1",
        message,
    }
}

fn push(out: &mut Vec<Finding>, sf: &SourceFile, line: u32, rule: &'static str, message: String) {
    // One finding per (line, rule): several offending tokens on a line
    // are one fix and one pragma.
    if out.iter().any(|f| f.line == line && f.rule == rule) {
        return;
    }
    out.push(Finding {
        file: sf.rel.clone(),
        line,
        rule,
        message,
    });
}

fn ident_at<'a>(toks: &'a [Tok<'a>], i: usize) -> Option<&'a str> {
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
}

fn text_at<'a>(toks: &'a [Tok<'a>], i: usize) -> &'a str {
    toks.get(i).map(|t| t.text).unwrap_or("")
}

/// d1 — std HashMap/HashSet anywhere in non-test code.
fn rule_d1(sf: &SourceFile, lexed: &LexedFile<'_>, test: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in lexed.toks.iter().enumerate() {
        if test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                out,
                sf,
                t.line,
                "d1",
                format!(
                    "std {} has randomized iteration order; use BTreeMap/BTreeSet, \
                     sort on export, or FxHash* for lookup-only tables",
                    t.text
                ),
            );
        }
    }
}

/// d2 — wall-clock / host entropy in library code.
fn rule_d2(sf: &SourceFile, lexed: &LexedFile<'_>, test: &[bool], out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text {
            "Instant" => (text_at(toks, i + 1) == ":"
                && text_at(toks, i + 2) == ":"
                && ident_at(toks, i + 3) == Some("now"))
            .then_some("Instant::now() reads the host clock"),
            "SystemTime" => Some("SystemTime reads the host clock"),
            "thread_rng" => Some("thread_rng() draws host entropy"),
            "from_entropy" => Some("from_entropy() seeds from host entropy"),
            _ => None,
        };
        if let Some(why) = hit {
            push(
                out,
                sf,
                t.line,
                "d2",
                format!("{why}; sim paths must take explicit clocks/seeds"),
            );
        }
    }
}

/// d3 — float sum/reduce/fold inside a parallel-iterator statement.
fn rule_d3(sf: &SourceFile, lexed: &LexedFile<'_>, test: &[bool], out: &mut Vec<Finding>) {
    const PAR_SOURCES: &[&str] = &[
        "par_iter",
        "into_par_iter",
        "par_iter_mut",
        "par_chunks",
        "par_bridge",
    ];
    const REDUCERS: &[&str] = &["sum", "product", "reduce", "fold"];
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if test[i] || t.kind != TokKind::Ident || !PAR_SOURCES.contains(&t.text) {
            continue;
        }
        // Scan the rest of the statement (to the `;` at this nesting
        // depth) for a reducer and float evidence in the same chain.
        let mut depth = 0i64;
        let mut reducer: Option<(&str, u32)> = None;
        let mut float = false;
        for tt in toks.iter().skip(i + 1) {
            match tt.text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            if tt.kind == TokKind::Ident && REDUCERS.contains(&tt.text) && reducer.is_none() {
                reducer = Some((tt.text, tt.line));
            }
            if (tt.kind == TokKind::Ident && (tt.text == "f64" || tt.text == "f32"))
                || (tt.kind == TokKind::Num && tt.text.contains('.'))
            {
                float = true;
            }
        }
        if let (Some((name, line)), true) = (reducer, float) {
            push(
                out,
                sf,
                line,
                "d3",
                format!(
                    "float `{name}` over a parallel iterator is non-associative; \
                     collect per-item values and reduce sequentially in a fixed order"
                ),
            );
        }
    }
}

/// r1 — `.unwrap()` / `.expect(` / `panic!(` in library code.
fn rule_r1(sf: &SourceFile, lexed: &LexedFile<'_>, test: &[bool], out: &mut Vec<Finding>) {
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text {
            "unwrap" | "expect" => i > 0 && text_at(toks, i - 1) == ".",
            "panic" => text_at(toks, i + 1) == "!",
            _ => false,
        };
        if hit {
            push(
                out,
                sf,
                t.line,
                "r1",
                format!(
                    "`{}` in library code aborts on an operating condition; \
                     return a typed error (CommError) or justify why it cannot fire",
                    t.text
                ),
            );
        }
    }
}

/// r2 — `.len()`/`.count()` cast to a narrower integer.
fn rule_r2(sf: &SourceFile, lexed: &LexedFile<'_>, test: &[bool], out: &mut Vec<Finding>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if (t.text == "len" || t.text == "count")
            && text_at(toks, i + 1) == "("
            && text_at(toks, i + 2) == ")"
            && ident_at(toks, i + 3) == Some("as")
        {
            if let Some(ty) = ident_at(toks, i + 4) {
                if NARROW.contains(&ty) {
                    push(
                        out,
                        sf,
                        t.line,
                        "r2",
                        format!(
                            "`{}() as {ty}` truncates silently once the counter \
                             outgrows {ty}; use try_from or a checked helper",
                            t.text
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::walk::{FileScope, SourceFile};

    fn lib_file() -> SourceFile {
        SourceFile {
            rel: "crates/x/src/lib.rs".into(),
            abs: std::path::PathBuf::new(),
            crate_name: "x".into(),
            scope: FileScope::Lib,
        }
    }

    fn bin_file() -> SourceFile {
        SourceFile {
            rel: "src/bin/cli.rs".into(),
            abs: std::path::PathBuf::new(),
            crate_name: "bgl-bfs".into(),
            scope: FileScope::Bin,
        }
    }

    fn rules_hit(sf: &SourceFile, src: &str) -> Vec<&'static str> {
        let lexed = lex(src);
        check_file(sf, &lexed)
            .findings
            .iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn d1_fires_on_std_hash_collections() {
        assert_eq!(
            rules_hit(&lib_file(), "use std::collections::HashMap;\n"),
            vec!["d1"]
        );
        assert!(rules_hit(&lib_file(), "use std::collections::BTreeMap;\n").is_empty());
        assert!(rules_hit(&lib_file(), "use rustc_hash::FxHashMap;\n").is_empty());
        // Bins are not exempt from d1: exported artifacts must be stable.
        assert_eq!(
            rules_hit(&bin_file(), "let m = HashSet::new();\n"),
            vec!["d1"]
        );
    }

    #[test]
    fn d2_fires_in_lib_not_bin() {
        let src = "let t = Instant::now();\nlet r = thread_rng();\n";
        assert_eq!(rules_hit(&lib_file(), src), vec!["d2", "d2"]);
        assert!(rules_hit(&bin_file(), src).is_empty());
        assert!(rules_hit(&lib_file(), "let i: Instant = deadline;\n").is_empty());
    }

    #[test]
    fn d3_needs_par_source_reducer_and_float() {
        let pos = "let s = xs.par_iter().map(|x| x.cost).sum::<f64>();\n";
        assert_eq!(rules_hit(&lib_file(), pos), vec!["d3"]);
        let int_sum = "let s = xs.par_iter().map(|x| x.n).sum::<u64>();\n";
        assert!(rules_hit(&lib_file(), int_sum).is_empty());
        let serial = "let s = xs.iter().map(|x| x.cost).sum::<f64>();\n";
        assert!(rules_hit(&lib_file(), serial).is_empty());
        // The reducer must be in the same statement.
        let two = "let v: Vec<f64> = xs.par_iter().map(|x| x.c).collect();\nlet s: f64 = v.iter().sum();\n";
        assert!(rules_hit(&lib_file(), two).is_empty());
    }

    #[test]
    fn r1_fires_on_panicky_calls_in_libs() {
        assert_eq!(
            rules_hit(
                &lib_file(),
                "let x = o.unwrap();\nlet y = r.expect(\"m\");\npanic!(\"no\");\n"
            ),
            vec!["r1", "r1", "r1"]
        );
        assert!(rules_hit(
            &lib_file(),
            "let x = o.unwrap_or(0);\nlet y = o.unwrap_or_else(f);\n"
        )
        .is_empty());
        assert!(rules_hit(&bin_file(), "panic!(\"bins may abort\");\n").is_empty());
        let bench = SourceFile {
            crate_name: "bench".into(),
            ..lib_file()
        };
        assert!(rules_hit(&bench, "panic!(\"bad measurement config\");\n").is_empty());
    }

    #[test]
    fn r2_fires_on_narrowing_len_casts() {
        assert_eq!(
            rules_hit(&lib_file(), "let n = v.len() as u32;\n"),
            vec!["r2"]
        );
        assert_eq!(
            rules_hit(&lib_file(), "let n = it.count() as i16;\n"),
            vec!["r2"]
        );
        assert!(rules_hit(
            &lib_file(),
            "let n = v.len() as u64;\nlet m = v.len() as usize;\n"
        )
        .is_empty());
    }

    #[test]
    fn pragmas_suppress_and_go_stale() {
        let src = "let m = HashMap::new(); // bgl-lint: allow(d1, reason = \"lookup only\")\n";
        let lexed = lex(src);
        let r = check_file(&lib_file(), &lexed);
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.allows_used.len(), 1);

        // A pragma on the line above covers the next line.
        let above = "// bgl-lint: allow(r1, reason = \"slice nonempty by construction\")\nlet x = v.first().unwrap();\n";
        assert!(check_file(&lib_file(), &lex(above)).findings.is_empty());

        // An allow that matches nothing is itself a finding.
        let stale = "// bgl-lint: allow(r1, reason = \"nothing here\")\nlet x = 1;\n";
        assert_eq!(rules_hit(&lib_file(), stale), vec!["p1"]);

        // Wrong rule id does not suppress.
        let wrong = "let x = o.unwrap(); // bgl-lint: allow(d1, reason = \"wrong rule\")\n";
        let hits = rules_hit(&lib_file(), wrong);
        assert!(hits.contains(&"r1") && hits.contains(&"p1"), "{hits:?}");
    }

    #[test]
    fn malformed_pragma_is_a_finding() {
        let src = "let x = o.unwrap(); // bgl-lint: allow(r1)\n";
        let hits = rules_hit(&lib_file(), src);
        assert!(hits.contains(&"p0") && hits.contains(&"r1"), "{hits:?}");
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "
pub fn live(o: Option<u32>) -> u32 { o.unwrap_or(0) }
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let m: HashMap<u32, u32> = HashMap::new(); assert_eq!(m.len(), 0); Some(1).unwrap(); }
}
";
        assert!(rules_hit(&lib_file(), src).is_empty());
    }
}
