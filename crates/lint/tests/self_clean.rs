//! The shipped workspace must be lint-clean, and every allow pragma in
//! it must carry a reason (the parser already rejects reason-less
//! pragmas as malformed; this pins both properties as a test).

use std::path::Path;

#[test]
fn shipped_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let rep = bgl_lint::lint_root(&root).expect("lint the workspace");
    assert!(
        rep.is_clean(),
        "the shipped workspace has lint findings:\n{}",
        rep.render_text()
    );
    assert!(
        rep.files_scanned > 50,
        "only {} files scanned",
        rep.files_scanned
    );
    assert!(
        rep.allows.iter().all(|a| !a.reason.trim().is_empty()),
        "an allow pragma with an empty reason survived: {:?}",
        rep.allows
    );
}
