//! Golden-output tests for the rule catalog: every rule has at least
//! one positive, one negative, and one pragma-suppressed fixture under
//! `tests/fixtures/`, and the exact findings are pinned in
//! `expected_findings.txt`.

use std::path::Path;

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixtures_match_golden_findings() {
    let rep = bgl_lint::lint_root(&fixtures_dir()).expect("lint fixtures");
    let want = include_str!("fixtures/expected_findings.txt");
    assert_eq!(
        rep.render_text(),
        want,
        "fixture findings drifted from the golden file; if the change is \
         intentional, regenerate expected_findings.txt"
    );
}

#[test]
fn every_rule_has_positive_negative_and_suppressed_cases() {
    let rep = bgl_lint::lint_root(&fixtures_dir()).expect("lint fixtures");
    for rule in ["d1", "d2", "d3", "r1", "r2", "p0", "p1"] {
        assert!(
            rep.findings.iter().any(|f| f.rule == rule),
            "rule {rule} has no positive fixture finding"
        );
    }
    // Negative fixtures stay clean.
    assert!(
        rep.findings.iter().all(|f| !f.file.ends_with("_neg.rs")),
        "a *_neg.rs fixture produced findings:\n{}",
        rep.render_text()
    );
    // One suppressed case per enforced rule (d1 carries two pragmas).
    assert_eq!(rep.allows.len(), 6, "allows: {:?}", rep.allows);
    assert_eq!(rep.suppressed, 6);
    assert!(rep.allows.iter().all(|a| !a.reason.trim().is_empty()));
    for rule in ["d1", "d2", "d3", "r1", "r2"] {
        assert!(
            rep.allows.iter().any(|a| a.rule == rule),
            "rule {rule} has no pragma-suppressed fixture"
        );
    }
}

#[test]
fn check_mode_exits_nonzero_on_fixtures_with_file_line_diagnostics() {
    let out_json = std::env::temp_dir().join("bgl_lint_fixture_report.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_bgl-lint"))
        .arg("--check")
        .arg("--root")
        .arg(fixtures_dir())
        .arg("--out")
        .arg(&out_json)
        .output()
        .expect("run bgl-lint");
    assert!(
        !out.status.success(),
        "--check must exit nonzero on the fixtures"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "r1_pos.rs:4: [r1]",
        "d1_pos.rs:2: [d1]",
        "r2_pos.rs:4: [r2]",
        "pragma_pos.rs:4: [p0]",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    let report = std::fs::read_to_string(&out_json).expect("report written");
    let v = bgl_trace::json::parse(&report).expect("report parses as JSON");
    assert!(v
        .get("findings")
        .and_then(|f| f.as_arr())
        .is_some_and(|f| !f.is_empty()));
}
