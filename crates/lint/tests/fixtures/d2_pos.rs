//! d2 positive: wall-clock and host entropy in library code.
use std::time::{Instant, SystemTime};

pub fn bad_clock() -> f64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let mut rng = rand::thread_rng();
    let seeded = ChaCha8Rng::from_entropy();
    0.0
}
