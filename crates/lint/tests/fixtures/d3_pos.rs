//! d3 positive: float reduction over a parallel iterator.
use rayon::prelude::*;

pub fn bad_sum(costs: &[f64]) -> f64 {
    costs.par_iter().map(|c| c * 2.0).sum::<f64>()
}

pub fn bad_reduce(costs: &[f64]) -> f64 {
    costs
        .par_iter()
        .copied()
        .reduce(|| 0.0f64, |a, b| a + b)
}
