//! r1 suppressed: a provably-infallible unwrap with its proof attached.

pub fn allowed(xs: &[u32]) -> u32 {
    if xs.is_empty() {
        return 0;
    }
    // bgl-lint: allow(r1, reason = "guarded by the is_empty early return above")
    *xs.iter().max().unwrap()
}
