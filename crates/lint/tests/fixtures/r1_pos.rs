//! r1 positive: panicky calls in library code.

pub fn bad(levels: &[u32], target: Option<usize>) -> u32 {
    let t = target.unwrap();
    let l = levels.get(t).expect("target in range");
    if *l == u32::MAX {
        panic!("unreached target");
    }
    *l
}
