//! p0/p1 positives: a reason-less pragma and a stale allow.

pub fn broken(o: Option<u32>) -> u32 {
    o.unwrap() // bgl-lint: allow(r1)
}

// bgl-lint: allow(d1, reason = "nothing on the next line uses a hash map")
pub fn stale() -> u32 {
    7
}
