//! d3 negative: integer reductions parallelize associatively, and
//! float sums over *serial* iterators have a fixed order.
use rayon::prelude::*;

pub fn int_sum(counts: &[u64]) -> u64 {
    counts.par_iter().sum::<u64>()
}

pub fn serial_float_sum(costs: &[f64]) -> f64 {
    costs.iter().sum::<f64>()
}

pub fn par_then_sequential(costs: &[f64]) -> f64 {
    let per_item: Vec<f64> = costs.par_iter().map(|c| c * 2.0).collect();
    per_item.iter().sum::<f64>()
}
