//! r2 suppressed: a bounded counter with its bound stated.

pub fn allowed(lanes: &[u64]) -> u32 {
    // bgl-lint: allow(r2, reason = "lane count is capped at MAX_LANES = 64 by the batcher")
    lanes.len() as u32
}
