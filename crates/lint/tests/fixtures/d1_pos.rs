//! d1 positive: std hash collections in non-test code.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct Offender {
    per_link: HashMap<(u32, u32), u64>,
    seen: HashSet<u64>,
}
