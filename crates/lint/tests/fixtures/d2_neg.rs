//! d2 negative: explicit clocks and seeds only. Mentioning the type
//! `Instant` (for a deadline parameter) is fine; constructing one from
//! the host clock is not.
use std::time::Instant;

pub fn good_clock(sim_time: f64, seed: u64, deadline: Instant) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let _ = deadline;
    sim_time + 1.0
}
