//! d3 suppressed: a tolerance-checked diagnostic aggregate.
use rayon::prelude::*;

pub fn allowed_sum(costs: &[f64]) -> f64 {
    // bgl-lint: allow(d3, reason = "diagnostic aggregate compared under tolerance; never feeds the sim clock")
    costs.par_iter().map(|c| c * 2.0).sum::<f64>()
}
