//! r1 negative: fallible handling, and panics confined to test code.

pub fn good(levels: &[u32], target: Option<usize>) -> Result<u32, String> {
    let t = target.ok_or_else(|| "no target".to_string())?;
    let l = levels.get(t).copied().unwrap_or(u32::MAX);
    Ok(l.min(levels.len() as u64 as u32))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
        Option::<u32>::None.map(|_| panic!("fine in tests"));
    }
}
