//! r2 positive: counters truncated by narrowing casts.

pub fn bad(frontier: &[u64]) -> u32 {
    let lanes = frontier.len() as u32;
    let evens = frontier.iter().filter(|v| *v % 2 == 0).count() as u16;
    lanes + evens as u32
}
