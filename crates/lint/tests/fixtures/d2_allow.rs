//! d2 suppressed: a threaded-exchange deadline is allowed to read the
//! host clock, because it bounds real blocking, not simulated time.
use std::time::Instant;

pub fn exchange_deadline() -> Instant {
    // bgl-lint: allow(d2, reason = "threaded exchange deadline bounds real blocking; never feeds the sim clock")
    Instant::now() + std::time::Duration::from_secs(5)
}
