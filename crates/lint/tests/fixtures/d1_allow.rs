//! d1 suppressed: a justified lookup-only table.
use std::collections::HashMap; // bgl-lint: allow(d1, reason = "lookup-only table; never iterated or exported")

pub struct Allowed {
    // bgl-lint: allow(d1, reason = "lookup-only table; never iterated or exported")
    lookup: HashMap<u64, u32>,
}
