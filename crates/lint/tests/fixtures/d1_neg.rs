//! d1 negative: ordered or deterministic-hash collections, and std
//! hash collections that only appear in test code or comments.
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;

// A HashMap mentioned in prose is not a finding.
pub struct Clean {
    per_link: BTreeMap<(u32, u32), u64>,
    lookup: FxHashMap<u64, u32>,
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_hash() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
