//! r2 negative: widening casts and checked conversions.

pub fn good(frontier: &[u64]) -> u64 {
    let lanes = frontier.len() as u64;
    let also = u32::try_from(frontier.len()).unwrap_or(u32::MAX);
    lanes + u64::from(also)
}
