//! Communication cost model (α–β–hop) with per-link traffic accounting.
//!
//! The simulated times reported by the benchmark harness come from this
//! model. A point-to-point transfer of `b` bytes over `h` hops costs
//!
//! ```text
//! t = α + h·t_hop + b / β
//! ```
//!
//! (cut-through routing: per-hop latency is paid once per hop for the
//! header, the payload streams at link bandwidth). `α` is the per-message
//! software overhead, `β` the link bandwidth, `t_hop` the router+wire
//! latency per hop. This is the standard model for torus machines and is
//! sufficient to reproduce the *relative* communication behaviour the
//! paper reports (1D vs 2D, ring vs direct collectives).
//!
//! [`LinkTraffic`] additionally accumulates bytes per directed physical
//! link along dimension-ordered routes, so experiments can report a
//! contention-aware lower bound: the busiest link's drain time.

use crate::coord::Coord3;
use crate::machine::{MachineConfig, MachineKind};
use crate::routing::{hop_distance, route_dimension_ordered};
use std::collections::BTreeMap;

/// The result of costing a single transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCost {
    /// Modelled elapsed time in seconds.
    pub seconds: f64,
    /// Payload bytes.
    pub bytes: u64,
    /// Physical hops traversed.
    pub hops: usize,
}

/// Analytic α–β–hop cost model bound to a machine configuration.
///
/// ```
/// use bgl_torus::{Coord3, CostModel, MachineConfig};
/// let cm = CostModel::new(MachineConfig::bluegene_l_half());
/// let near = cm.point_to_point(Coord3::new(0, 0, 0), Coord3::new(1, 0, 0), 8_000);
/// let far = cm.point_to_point(Coord3::new(0, 0, 0), Coord3::new(16, 16, 16), 8_000);
/// assert!(far.seconds > near.seconds); // more hops, same payload
/// assert_eq!(far.hops, 48);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    machine: MachineConfig,
}

impl CostModel {
    /// Build a cost model for the given machine.
    pub fn new(machine: MachineConfig) -> Self {
        Self { machine }
    }

    /// The underlying machine configuration.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Hop distance between two physical coordinates under this machine's
    /// interconnect (1 for any distinct pair on a flat network).
    pub fn hops(&self, a: Coord3, b: Coord3) -> usize {
        if a == b {
            return 0;
        }
        match self.machine.kind {
            MachineKind::Torus3D => hop_distance(self.machine.dims, a, b),
            MachineKind::Flat => 1,
        }
    }

    /// Cost of one point-to-point message of `bytes` payload over `hops`.
    pub fn point_to_point_hops(&self, hops: usize, bytes: u64) -> TransferCost {
        let m = &self.machine;
        let seconds = if hops == 0 && bytes == 0 {
            0.0
        } else {
            m.software_overhead + hops as f64 * m.hop_latency + bytes as f64 / m.link_bandwidth
        };
        TransferCost {
            seconds,
            bytes,
            hops,
        }
    }

    /// Cost of one point-to-point message between physical coordinates.
    pub fn point_to_point(&self, from: Coord3, to: Coord3, bytes: u64) -> TransferCost {
        self.point_to_point_hops(self.hops(from, to), bytes)
    }

    /// Cost of one point-to-point message whose route runs at
    /// `bw_factor` of nominal link bandwidth (degraded-link faults; the
    /// slowest link on the route bounds the streaming rate).
    pub fn point_to_point_hops_degraded(
        &self,
        hops: usize,
        bytes: u64,
        bw_factor: f64,
    ) -> TransferCost {
        debug_assert!(bw_factor > 0.0 && bw_factor <= 1.0);
        let m = &self.machine;
        let seconds = if hops == 0 && bytes == 0 {
            0.0
        } else {
            m.software_overhead
                + hops as f64 * m.hop_latency
                + bytes as f64 / (m.link_bandwidth * bw_factor)
        };
        TransferCost {
            seconds,
            bytes,
            hops,
        }
    }

    /// Modelled time to perform `probes` vertex hash probes (the paper's
    /// dominant compute cost).
    pub fn hash_time(&self, probes: u64) -> f64 {
        probes as f64 / self.machine.hash_rate
    }

    /// Modelled time to copy `bytes` within local memory.
    pub fn memcpy_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.machine.memcpy_bandwidth
    }

    /// Modelled time to encode or decode `bytes` of message payload
    /// through the wire codec (delta/varint or bitmap packing). Free
    /// when the machine declares no codec bandwidth.
    pub fn codec_time(&self, bytes: u64) -> f64 {
        if self.machine.codec_bandwidth > 0.0 {
            bytes as f64 / self.machine.codec_bandwidth
        } else {
            0.0
        }
    }
}

/// Accumulates bytes per directed physical link.
///
/// A directed link is identified by `(from, to)` where the nodes are
/// nearest neighbours. Traffic is attributed along dimension-ordered
/// routes; on a flat network every transfer uses a synthetic dedicated
/// link, so congestion reduces to per-endpoint serialization.
///
/// The map is ordered by link coordinates so [`Self::rows`] (and every
/// export built on it) emits links in sorted-key order — byte-stable
/// across runs, unlike `HashMap`'s process-random iteration.
#[derive(Debug, Default, Clone)]
pub struct LinkTraffic {
    per_link: BTreeMap<(Coord3, Coord3), u64>,
    total_bytes: u64,
    transfers: u64,
}

impl LinkTraffic {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transfer from `a` to `b` of `bytes`, attributing traffic
    /// to every link of the dimension-ordered route.
    pub fn record(&mut self, machine: &MachineConfig, a: Coord3, b: Coord3, bytes: u64) {
        self.transfers += 1;
        self.total_bytes += bytes;
        if a == b {
            return;
        }
        match machine.kind {
            MachineKind::Torus3D => {
                for step in route_dimension_ordered(machine.dims, a, b) {
                    *self.per_link.entry((step.from, step.to)).or_insert(0) += bytes;
                }
            }
            MachineKind::Flat => {
                *self.per_link.entry((a, b)).or_insert(0) += bytes;
            }
        }
    }

    /// Record a transfer along an explicit route (e.g. a fault-detoured
    /// route from [`crate::fault::route_with_faults`]), attributing
    /// `bytes` to every link of the route.
    pub fn record_route(&mut self, route: &[crate::routing::RouteStep], bytes: u64) {
        self.transfers += 1;
        self.total_bytes += bytes;
        for step in route {
            *self.per_link.entry((step.from, step.to)).or_insert(0) += bytes;
        }
    }

    /// Total payload bytes recorded (counted once per transfer, not per hop).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of transfers recorded.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Bytes on the single busiest directed link.
    pub fn max_link_bytes(&self) -> u64 {
        self.per_link.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct directed links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.per_link.len()
    }

    /// Every link row in sorted-key order: `(from, to, bytes)`.
    pub fn rows(&self) -> impl Iterator<Item = (Coord3, Coord3, u64)> + '_ {
        self.per_link.iter().map(|(&(a, b), &bytes)| (a, b, bytes))
    }

    /// Total bytes summed over every directed link — i.e. Σ bytes × hops
    /// across all routed transfers (each transfer's bytes land once per
    /// link its route crosses). The trace subsystem's link heatmap must
    /// reproduce this number exactly from recorded send events.
    pub fn sum_link_bytes(&self) -> u64 {
        self.per_link.values().sum()
    }

    /// Contention-aware lower bound on drain time: the busiest link's
    /// bytes divided by link bandwidth.
    pub fn congestion_time(&self, machine: &MachineConfig) -> f64 {
        self.max_link_bytes() as f64 / machine.link_bandwidth
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &LinkTraffic) {
        for (k, v) in &other.per_link {
            *self.per_link.entry(*k).or_insert(0) += v;
        }
        self.total_bytes += other.total_bytes;
        self.transfers += other.transfers;
    }

    /// Clear all recorded traffic.
    pub fn clear(&mut self) {
        self.per_link.clear();
        self.total_bytes = 0;
        self.transfers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord::TorusDims;

    fn bgl() -> MachineConfig {
        MachineConfig::bluegene_l_partition(TorusDims::new(4, 4, 4))
    }

    #[test]
    fn p2p_cost_components() {
        let cm = CostModel::new(bgl());
        let c = cm.point_to_point_hops(4, 1000);
        let m = cm.machine();
        let expected = m.software_overhead + 4.0 * m.hop_latency + 1000.0 / m.link_bandwidth;
        assert!((c.seconds - expected).abs() < 1e-15);
        assert_eq!(c.bytes, 1000);
        assert_eq!(c.hops, 4);
    }

    #[test]
    fn zero_transfer_is_free() {
        let cm = CostModel::new(bgl());
        assert_eq!(cm.point_to_point_hops(0, 0).seconds, 0.0);
    }

    #[test]
    fn flat_network_single_hop() {
        let cm = CostModel::new(MachineConfig::mcr_cluster());
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(900, 0, 0);
        assert_eq!(cm.hops(a, b), 1);
        assert_eq!(cm.hops(a, a), 0);
    }

    #[test]
    fn longer_messages_cost_more() {
        let cm = CostModel::new(bgl());
        let a = cm.point_to_point_hops(2, 100).seconds;
        let b = cm.point_to_point_hops(2, 100_000).seconds;
        assert!(b > a);
    }

    #[test]
    fn traffic_accounting_route_attribution() {
        let m = bgl();
        let mut t = LinkTraffic::new();
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(2, 0, 0); // 2 hops
        t.record(&m, a, b, 500);
        assert_eq!(t.total_bytes(), 500);
        assert_eq!(t.transfers(), 1);
        assert_eq!(t.links_used(), 2);
        assert_eq!(t.max_link_bytes(), 500);
    }

    #[test]
    fn traffic_congestion_on_shared_link() {
        let m = bgl();
        let mut t = LinkTraffic::new();
        let a = Coord3::new(0, 0, 0);
        // Both routes start with link (0,0,0)->(1,0,0).
        t.record(&m, a, Coord3::new(1, 0, 0), 100);
        t.record(&m, a, Coord3::new(2, 0, 0), 100);
        assert_eq!(t.max_link_bytes(), 200);
        let drain = t.congestion_time(&m);
        assert!((drain - 200.0 / m.link_bandwidth).abs() < 1e-15);
    }

    #[test]
    fn merge_accumulates() {
        let m = bgl();
        let a = Coord3::new(0, 0, 0);
        let b = Coord3::new(1, 0, 0);
        let mut t1 = LinkTraffic::new();
        let mut t2 = LinkTraffic::new();
        t1.record(&m, a, b, 10);
        t2.record(&m, a, b, 32);
        t1.merge(&t2);
        assert_eq!(t1.total_bytes(), 42);
        assert_eq!(t1.max_link_bytes(), 42);
        assert_eq!(t1.transfers(), 2);
    }

    #[test]
    fn self_transfer_uses_no_links() {
        let m = bgl();
        let mut t = LinkTraffic::new();
        let a = Coord3::new(1, 1, 1);
        t.record(&m, a, a, 999);
        assert_eq!(t.links_used(), 0);
        assert_eq!(t.total_bytes(), 999);
    }
}
