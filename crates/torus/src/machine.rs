//! Machine presets.
//!
//! The paper evaluates on two platforms:
//!
//! * **BlueGene/L** (§4.1): 65,536 compute nodes as a 64×32×32 3D torus,
//!   two PowerPC 440 cores per node at 700 MHz, 512 MB memory per node,
//!   six bi-directional torus links per node at 1.4 Gbit/s per direction.
//!   The experiments use a 32,768-node partition.
//! * **MCR** (§4): an LLNL Linux cluster with a Quadrics interconnect,
//!   used as the "conventional platform" comparison. We model it as a
//!   flat (single-hop) network with QsNet-class latency and bandwidth.
//!
//! The compute-side parameter that matters for BFS is not FLOPs — the
//! paper observes the algorithm "spends most of its time in a hashing
//! function" — so the model carries a `hash_rate` (vertex hash-probes per
//! second per process) and a `memcpy_bandwidth` for buffer copying.

use crate::coord::TorusDims;
use serde::{Deserialize, Serialize};

/// Which interconnect style a machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineKind {
    /// 3D torus with nearest-neighbour links (BlueGene/L).
    Torus3D,
    /// Flat network: every pair of nodes is one hop apart (fat-tree /
    /// crossbar approximation, used for the MCR cluster).
    Flat,
}

/// A machine configuration: topology plus the rates the cost model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Interconnect style.
    pub kind: MachineKind,
    /// Torus dimensions. For [`MachineKind::Flat`] the dims are only used
    /// to size the machine (node count); hop distances are 1.
    pub dims: TorusDims,
    /// Main memory per node, in bytes.
    pub memory_per_node: u64,
    /// Per-link uni-directional bandwidth in bytes/second.
    pub link_bandwidth: f64,
    /// Per-hop latency in seconds (wire + router).
    pub hop_latency: f64,
    /// Fixed per-message software overhead in seconds (MPI-style α).
    pub software_overhead: f64,
    /// Vertex hash-probe throughput per process, probes/second. This is
    /// the dominant compute cost in the paper's profile.
    pub hash_rate: f64,
    /// Local memory copy bandwidth in bytes/second (message buffer
    /// copying during union-fold, §4.2).
    pub memcpy_bandwidth: f64,
    /// Wire-codec throughput in bytes/second: the rate at which a node
    /// encodes or decodes compressed message payloads (delta/varint or
    /// bitmap packing is a streaming integer kernel — faster than the
    /// hash loop, slower than a straight memcpy). A zero (e.g. from a
    /// config written before this field existed) means "free".
    #[serde(default)]
    pub codec_bandwidth: f64,
}

impl MachineConfig {
    /// Full 65,536-node BlueGene/L system (64×32×32 torus).
    pub fn bluegene_l_full() -> Self {
        Self {
            kind: MachineKind::Torus3D,
            dims: TorusDims::new(64, 32, 32),
            memory_per_node: 512 * 1024 * 1024,
            // 1.4 Gbit/s per direction = 175 MB/s.
            link_bandwidth: 175.0e6,
            // ~100ns router + wire per hop.
            hop_latency: 100.0e-9,
            // A few microseconds of software stack per message.
            software_overhead: 3.0e-6,
            // 700 MHz PPC440, ~35 cycles per hash probe (cache-miss bound).
            hash_rate: 20.0e6,
            memcpy_bandwidth: 1.0e9,
            // Streaming varint/bitmap pack-unpack on the PPC440:
            // between the hash loop and raw memcpy.
            codec_bandwidth: 400.0e6,
        }
    }

    /// The 32,768-node partition used for the paper's experiments
    /// (32×32×32 torus).
    pub fn bluegene_l_half() -> Self {
        Self {
            dims: TorusDims::new(32, 32, 32),
            ..Self::bluegene_l_full()
        }
    }

    /// A small BlueGene/L-like partition with the given torus dims —
    /// used by experiments that sweep P, keeping per-node rates fixed.
    pub fn bluegene_l_partition(dims: TorusDims) -> Self {
        Self {
            dims,
            ..Self::bluegene_l_full()
        }
    }

    /// The MCR Linux cluster (1,152 dual-Xeon nodes, Quadrics QsNet).
    /// Modelled as a flat network: higher per-message latency than the
    /// torus but no hop-distance dependence.
    pub fn mcr_cluster() -> Self {
        Self {
            kind: MachineKind::Flat,
            dims: TorusDims::new(1152, 1, 1),
            memory_per_node: 4 * 1024 * 1024 * 1024,
            // QsNet ~ 300 MB/s.
            link_bandwidth: 300.0e6,
            hop_latency: 0.0,
            // ~5 µs MPI latency.
            software_overhead: 5.0e-6,
            // 2.4 GHz Xeon, faster hashing than PPC440.
            hash_rate: 60.0e6,
            memcpy_bandwidth: 2.0e9,
            codec_bandwidth: 1.2e9,
        }
    }

    /// Number of nodes in the machine.
    pub fn node_count(&self) -> usize {
        self.dims.node_count()
    }

    /// Choose a reasonable torus partition for `p` processes: the smallest
    /// preset-shaped torus with at least `p` nodes, preferring balanced
    /// dims. Panics if `p` is 0.
    pub fn fit_partition(p: usize) -> TorusDims {
        assert!(p > 0, "cannot fit a partition for 0 processes");
        // Grow dims in x, then y, then z, doubling round-robin, which
        // mirrors how BG/L partitions come in power-of-two bricks.
        let mut d = [1usize; 3];
        let mut i = 0;
        while d[0] * d[1] * d[2] < p {
            d[i % 3] *= 2;
            i += 1;
        }
        TorusDims::new(d[0], d[1], d[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes() {
        assert_eq!(MachineConfig::bluegene_l_full().node_count(), 65536);
        assert_eq!(MachineConfig::bluegene_l_half().node_count(), 32768);
        assert_eq!(MachineConfig::mcr_cluster().node_count(), 1152);
    }

    #[test]
    fn fit_partition_covers_p() {
        for p in [1, 2, 3, 7, 8, 100, 1024, 32768] {
            let dims = MachineConfig::fit_partition(p);
            assert!(dims.node_count() >= p, "p={p} dims={dims:?}");
            // Never more than 2x over-provisioned (power-of-two bricks).
            assert!(dims.node_count() < 2 * p.next_power_of_two().max(2));
        }
    }

    #[test]
    fn fit_partition_balanced() {
        let dims = MachineConfig::fit_partition(32768);
        assert_eq!(dims.node_count(), 32768);
        // 32768 = 2^15 -> 32x32x32.
        assert_eq!((dims.x, dims.y, dims.z), (32, 32, 32));
    }

    #[test]
    #[should_panic]
    fn fit_partition_zero_panics() {
        MachineConfig::fit_partition(0);
    }

    #[test]
    fn bgl_memory_is_512mb() {
        assert_eq!(
            MachineConfig::bluegene_l_half().memory_per_node,
            512 * 1024 * 1024
        );
    }
}
